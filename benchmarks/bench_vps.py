"""VP selection + ingest dedup: Table 4 survives at 20% of the volume.

The paper's observations recur — across vantage points (VPs in one
catchment see the same site) and across time (most rounds repeat the
previous round). ``repro.vps`` exploits both: ``select_vps`` keeps the
~20% most-informative VPs with catchment-population weight rescaling,
and the serve tier's dedup ingest mode journals recurring identical
rounds as compact reference records. This bench demonstrates the
end-to-end claim on the ground-truth study (docs/vps.md):

* **Fidelity**: the Table 4 confusion matrix computed from the kept
  20% of VPs (plan weights, err-repair interpolation — see
  ``interpolate_series(repair_errors=True)``) equals the full-volume
  matrix, and the ``OnlineFenrir`` mode timeline over the reduced
  series is segment-for-segment identical to the full one. Full mode
  asserts the exact paper tuple (TP=19 FN=0 TN=29 FP=8, 10 unmatched);
  quick mode asserts TP/FN/TN/FP and timeline equality (at 150 VPs the
  unmatched count legitimately differs — tiny third-party changes
  move fewer networks than one reduced-VP granule).
* **Volume**: the study stream replayed through ``DurableMonitor`` —
  full volume without dedup (the before) vs the plan's 20% with dedup
  (the after) — with acked rounds/s, journal bytes, and the speedup.
* **Micro-bench**: a fixed synthetic workload (identical in quick and
  full modes, so CI's bench-delta can compare across them) timing the
  journal encode path with dedup off, on, and on-at-20%-width; the
  ``ingest_rounds_per_second`` section feeds ``check_regression.py``.

Human-readable results go to ``benchmarks/out/vps.txt``; the
machine-readable trajectory goes to ``BENCH_vps.json`` at the repo
root (uploaded as a CI artifact).

Run directly: ``PYTHONPATH=src python benchmarks/bench_vps.py``
(``--quick`` for the CI smoke variant).
"""

from __future__ import annotations

import argparse
import tempfile
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.core.cleaning import interpolate_series
from repro.core.detect import detect_events, group_entries, validate_events
from repro.core.online import OnlineFenrir
from repro.datasets import groundtruth
from repro.serve.monitor import DurableMonitor
from repro.vps import SelectionConfig, select_vps

from common import emit, write_bench_json

# The Table 4 protocol (bench_tab4_validation.py) and the serve tier's
# streaming thresholds, unchanged — the point is that *only the volume*
# changes.
THRESHOLD = 0.02
MERGE_GAP = 3
MODE_THRESHOLD = 0.95
INTERP_LIMIT = 3
FRACTION = 0.2
BATCH_SIZE = 256

# Full-mode paper tuple: (TP, FN, TN, FP, unmatched detections).
PAPER_CONFUSION = (19, 0, 29, 8, 10)

# Ingest floors. Observed on laptop-class hardware: the reduced+dedup
# stream ingests ~8.6x the full-volume stream and journals ~5% of the
# bytes; the floors are generous so a noisy CI runner cannot flake.
MIN_STUDY_SPEEDUP = 3.0
QUICK_MIN_STUDY_SPEEDUP = 2.0
MAX_JOURNAL_RATIO = 0.15

# Fixed synthetic micro-bench workload — identical in quick and full
# modes so BENCH_vps.json's ingest_rounds_per_second is comparable
# across CI (quick) and local (full) refreshes.
SYNTH_NETWORKS = 200
SYNTH_ROUNDS = 2000
SYNTH_SHIFT_EVERY = 97
SYNTH_SITES = ["LAX", "AMS", "FRA", "NRT", "GRU"]
T0 = datetime(2025, 1, 1)


def confusion(report) -> tuple[int, int, int, int, int]:
    return (
        report.true_positive,
        report.false_negative,
        report.true_negative,
        report.false_positive,
        report.unmatched_detections,
    )


def timeline_of(series, weights) -> tuple[list, int]:
    """Mode timeline (as comparable tuples) + mode count for a series."""
    tracker = OnlineFenrir(
        networks=series.networks,
        event_threshold=THRESHOLD,
        mode_threshold=MODE_THRESHOLD,
        weights=None if weights is None else np.asarray(weights),
    )
    tracker.ingest_many([(v.to_mapping(), v.time) for v in series])
    timeline = [
        (mode, start.isoformat(), end.isoformat())
        for mode, start, end in tracker.mode_timeline()
    ]
    return timeline, tracker.num_modes


def series_rounds(series) -> list:
    """``[(states, time)]`` for ingest, sharing one dict per recurrence run.

    Consecutive identical rounds reuse the same mapping object — the
    study is ~40% recurring, and building 14k distinct 450-key dicts
    would dominate setup time without changing what is measured.
    """
    matrix = series.matrix
    rounds = []
    previous_row = None
    previous_map = None
    for index, when in enumerate(series.times):
        row = matrix[index]
        if previous_row is not None and np.array_equal(row, previous_row):
            rounds.append((previous_map, when))
            continue
        mapping = {
            network: series.catalog.label(code)
            for network, code in zip(series.networks, row)
        }
        rounds.append((mapping, when))
        previous_row = row
        previous_map = mapping
    return rounds


def stream_monitor(rounds, networks, weights, dedup: bool) -> dict:
    """Ingest ``rounds`` into a fresh DurableMonitor; timing + journal size."""
    directory = Path(tempfile.mkdtemp(prefix="bench_vps_"))
    monitor = DurableMonitor.create(
        directory,
        "bench",
        networks=list(networks),
        event_threshold=THRESHOLD,
        mode_threshold=MODE_THRESHOLD,
        weights=None if weights is None else list(weights),
        dedup=dedup,
    )
    started = time.perf_counter()
    for start in range(0, len(rounds), BATCH_SIZE):
        result = monitor.ingest_batch(rounds[start : start + BATCH_SIZE])
        assert result.error_index is None, result
    elapsed = time.perf_counter() - started
    journal_bytes = (directory / "bench" / "journal.jsonl").stat().st_size
    stats = monitor.dedup_stats()
    monitor.close()
    return {
        "rounds": len(rounds),
        "networks": len(networks),
        "dedup": dedup,
        "throughput": round(len(rounds) / elapsed, 1),
        "journal_bytes": journal_bytes,
        "deduped_records": stats["deduped_records"],
        "bytes_saved": stats["bytes_saved"],
    }


def synth_rounds(num_networks: int) -> list:
    """The fixed micro-bench stream: stable with periodic shifts."""
    networks = [f"n{i}" for i in range(num_networks)]
    rounds = []
    previous_epoch = -1
    states: dict = {}
    for index in range(SYNTH_ROUNDS):
        epoch = index // SYNTH_SHIFT_EVERY
        if epoch != previous_epoch:
            states = {
                network: SYNTH_SITES[(epoch + i % 7) % len(SYNTH_SITES)]
                for i, network in enumerate(networks)
            }
            previous_epoch = epoch
        rounds.append((states, T0 + timedelta(seconds=index)))
    return rounds


def run_micro_bench() -> dict:
    """Journal-encode throughput: dedup off/on, and on at 20% width."""
    full = synth_rounds(SYNTH_NETWORKS)
    reduced = synth_rounds(int(SYNTH_NETWORKS * FRACTION))
    networks = [f"n{i}" for i in range(SYNTH_NETWORKS)]
    narrow = [f"n{i}" for i in range(int(SYNTH_NETWORKS * FRACTION))]
    return {
        "full": stream_monitor(full, networks, None, dedup=False),
        "dedup": stream_monitor(full, networks, None, dedup=True),
        "dedup_reduced": stream_monitor(reduced, narrow, None, dedup=True),
    }


def run(quick: bool = False) -> dict:
    generate_started = time.perf_counter()
    if quick:
        # A 150-VP/30-day study with the same structure: ~1.5 s to
        # generate vs ~60 s for the paper-scale one.
        study = groundtruth.generate(
            num_vps=150,
            days=30,
            num_drains=6,
            num_te=1,
            num_internal=10,
            num_coinciding=2,
            num_standalone=3,
            extra_log_entries=10,
        )
    else:
        study = groundtruth.generate()
    generate_seconds = time.perf_counter() - generate_started

    select_started = time.perf_counter()
    plan = select_vps(study.series, SelectionConfig(fraction=FRACTION, jobs=4))
    select_seconds = time.perf_counter() - select_started
    reduced, weights = plan.apply(study.series)
    assert plan.volume_fraction <= FRACTION + 1e-9

    # -- Table 4 at both volumes ------------------------------------------
    groups = group_entries(study.log)
    full_report = validate_events(
        detect_events(study.series, threshold=THRESHOLD, merge_gap=MERGE_GAP),
        groups,
    )
    repaired = interpolate_series(
        reduced, limit=INTERP_LIMIT, repair_errors=True
    )
    reduced_report = validate_events(
        detect_events(
            repaired, weights=weights, threshold=THRESHOLD, merge_gap=MERGE_GAP
        ),
        groups,
    )
    full_confusion = confusion(full_report)
    reduced_confusion = confusion(reduced_report)

    # -- mode timelines at both volumes -----------------------------------
    full_repaired = interpolate_series(
        study.series, limit=INTERP_LIMIT, repair_errors=True
    )
    full_timeline, full_modes = timeline_of(full_repaired, None)
    reduced_timeline, reduced_modes = timeline_of(repaired, weights)
    timeline_equal = full_timeline == reduced_timeline

    # -- study-stream ingest: full/no-dedup vs reduced/dedup ---------------
    full_rounds = series_rounds(study.series)
    reduced_rounds = series_rounds(reduced)
    ingest_full = stream_monitor(
        full_rounds, study.series.networks, None, dedup=False
    )
    ingest_reduced = stream_monitor(
        reduced_rounds, reduced.networks, weights, dedup=True
    )
    study_speedup = ingest_reduced["throughput"] / ingest_full["throughput"]
    journal_ratio = (
        ingest_reduced["journal_bytes"] / ingest_full["journal_bytes"]
    )

    micro = run_micro_bench()

    lines = [
        f"mode={'quick' if quick else 'full'} "
        f"vps={len(study.series.networks)} rounds={len(study.series)} "
        f"(generate {generate_seconds:.1f} s)",
        "",
        f"plan: kept {plan.budget}/{plan.total_networks} VPs "
        f"({plan.volume_fraction:.0%} of probe volume), "
        f"selected in {select_seconds:.2f} s",
        "",
        "Table 4 confusion (TP, FN, TN, FP, unmatched):",
        f"  full volume    {full_confusion}  "
        f"recall={full_report.recall:.2f} "
        f"precision={full_report.precision:.2f} "
        f"accuracy={full_report.accuracy:.2f}",
        f"  kept {plan.volume_fraction:.0%}       {reduced_confusion}  "
        f"recall={reduced_report.recall:.2f} "
        f"precision={reduced_report.precision:.2f} "
        f"accuracy={reduced_report.accuracy:.2f}",
        "",
        "mode timeline (OnlineFenrir, err-repaired series):",
        f"  full volume    {len(full_timeline)} segments, "
        f"{full_modes} modes",
        f"  kept {plan.volume_fraction:.0%}       {len(reduced_timeline)} segments, "
        f"{reduced_modes} modes  "
        f"({'identical' if timeline_equal else 'DIVERGED'})",
        "",
        "study-stream ingest (DurableMonitor, batch "
        f"{BATCH_SIZE}, fsync off):",
        f"  full, no dedup   {ingest_full['throughput']:10.0f} rounds/s  "
        f"journal {ingest_full['journal_bytes']:>11,} B",
        f"  kept, dedup      {ingest_reduced['throughput']:10.0f} rounds/s  "
        f"journal {ingest_reduced['journal_bytes']:>11,} B  "
        f"({ingest_reduced['deduped_records']} refs, "
        f"{ingest_reduced['bytes_saved']:,} B saved)",
        f"  speedup {study_speedup:.1f}x, journal ratio {journal_ratio:.3f}",
        "",
        f"micro-bench (fixed {SYNTH_NETWORKS}-network synthetic, "
        f"{SYNTH_ROUNDS} rounds):",
    ]
    for label, entry in micro.items():
        lines.append(
            f"  {label:>13}: {entry['throughput']:10.0f} rounds/s  "
            f"journal {entry['journal_bytes']:>9,} B"
        )
    emit("vps", "\n".join(lines))

    metrics = {
        "mode": "quick" if quick else "full",
        "vps": len(study.series.networks),
        "rounds": len(study.series),
        "kept": plan.budget,
        "volume_fraction": round(plan.volume_fraction, 4),
        "select_seconds": round(select_seconds, 3),
        "table4": {
            "full": full_confusion,
            "reduced": reduced_confusion,
            "core_equal": full_confusion[:4] == reduced_confusion[:4],
            "equal": full_confusion == reduced_confusion,
        },
        "timeline": {
            "segments_full": len(full_timeline),
            "segments_reduced": len(reduced_timeline),
            "modes_full": full_modes,
            "modes_reduced": reduced_modes,
            "equal": timeline_equal,
        },
        "study_ingest": {
            "full": ingest_full,
            "reduced_dedup": ingest_reduced,
            "speedup": round(study_speedup, 2),
            "journal_ratio": round(journal_ratio, 4),
        },
        "micro": micro,
        # The check_regression section: identical workload in both
        # modes, so quick CI runs compare against full local refreshes.
        "ingest_rounds_per_second": {
            label: entry["throughput"] for label, entry in micro.items()
        },
    }
    write_bench_json("vps", metrics)

    # -- acceptance --------------------------------------------------------
    assert full_confusion[:4] == reduced_confusion[:4], (
        f"reduced-volume confusion {reduced_confusion} diverges from "
        f"full-volume {full_confusion} on TP/FN/TN/FP"
    )
    assert timeline_equal, (
        f"reduced-volume mode timeline ({len(reduced_timeline)} segments) "
        f"diverges from full-volume ({len(full_timeline)} segments)"
    )
    assert journal_ratio <= MAX_JOURNAL_RATIO, (
        f"reduced+dedup journal is {journal_ratio:.1%} of full volume; "
        f"budget {MAX_JOURNAL_RATIO:.0%}"
    )
    assert ingest_reduced["deduped_records"] > 0, "dedup never fired"
    if quick:
        assert study_speedup >= QUICK_MIN_STUDY_SPEEDUP, (
            f"reduced+dedup ingest speedup {study_speedup:.1f}x below the "
            f"{QUICK_MIN_STUDY_SPEEDUP:.1f}x quick floor"
        )
    else:
        # Paper-scale exactness: the full tuple including unmatched
        # detections, for both volumes, plus the paper's headline rates.
        assert full_confusion == PAPER_CONFUSION
        assert reduced_confusion == PAPER_CONFUSION
        assert full_report.recall == 1.0 and reduced_report.recall == 1.0
        assert abs(reduced_report.precision - 0.70) < 0.03
        assert abs(reduced_report.accuracy - 0.86) < 0.03
        assert study_speedup >= MIN_STUDY_SPEEDUP, (
            f"reduced+dedup ingest speedup {study_speedup:.1f}x below the "
            f"{MIN_STUDY_SPEEDUP:.1f}x floor"
        )
    return metrics


def test_vps_fidelity() -> None:
    run(quick=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: 150-VP study, core-equality asserts only",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick)
