"""Figure 1: G-Root anycast catchment sizes over ten days.

Paper shape: STR (the largest site) drains almost completely into NAP
around 2020-03-03, reverts ~4.5h later, drains again on 2020-03-05,
and drains a third time on 2020-03-07 through the end of observation;
a smaller CMH shift (toward SAT) lasts two days from 2020-03-06.
"""

from __future__ import annotations

import pytest

from repro.core.compare import similarity_matrix
from repro.core.viz import render_stackplot
from repro.datasets import groot

from common import emit


@pytest.fixture(scope="module")
def study():
    return groot.generate()


def test_fig1_groot_catchment_sizes(study, benchmark):
    aggregates = study.series.aggregate_over_time()
    labels = [f"{t:%m-%d %H:%M}" for t in study.series.times]

    lines = ["Figure 1: G-Root catchment sizes (counts of Atlas-style VPs)", ""]
    lines.append(render_stackplot(aggregates, width=48, labels=labels))
    str_counts = aggregates["STR"]
    nap_counts = aggregates["NAP"]
    drained = str_counts < 10
    lines.append("")
    lines.append(f"STR peak catchment: {int(str_counts.max())} VPs")
    lines.append(f"STR drained rounds: {int(drained.sum())}/{len(str_counts)}")
    lines.append(
        f"NAP mean while STR drained: {nap_counts[drained].mean():.0f} "
        f"vs while up: {nap_counts[~drained].mean():.0f}"
    )
    emit("fig1_groot", "\n".join(lines))

    # Paper shape: STR is dominant when up; NAP inherits when drained;
    # the final state has STR drained (third drain persists).
    assert str_counts.max() > nap_counts[~drained].mean()
    assert drained[-1]
    assert nap_counts[drained].mean() > 1.5 * nap_counts[~drained].mean()

    benchmark(similarity_matrix, study.series)
