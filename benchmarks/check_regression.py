"""Compare two BENCH_serve.json files and fail on throughput regression.

Usage::

    python benchmarks/check_regression.py baseline.json candidate.json \
        [--max-drop 0.40]

Reads ``throughput_by_batch`` from both files and exits non-zero if any
batch size present in both dropped by more than ``--max-drop`` (a
fraction: 0.40 means a 40% drop fails). Improvements and new batch
sizes never fail; a batch size that vanished from the candidate does,
because silently losing a measurement is how regressions hide.

The generous default threshold is deliberate: CI runners are noisy
shared machines, and this gate exists to catch "someone serialized the
hot path", not a 5% wobble. Tighten it locally on quiet hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

UPDATE_HINT = """\
If this slowdown is expected (e.g. the batch path deliberately trades
throughput for a new guarantee), refresh the committed baseline:

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    git add BENCH_serve.json

and explain the trade-off in the commit message. Otherwise, profile the
serve ingest path before merging — `repro client metrics` exposes
per-command latency histograms and journal fsync timings."""


def load_throughput(path: Path) -> dict[str, float]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    throughput = document.get("throughput_by_batch")
    if not isinstance(throughput, dict) or not throughput:
        sys.exit(f"error: {path} has no throughput_by_batch section")
    return {str(key): float(value) for key, value in throughput.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_serve.json")
    parser.add_argument("candidate", type=Path, help="freshly measured BENCH_serve.json")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.40,
        help="fractional throughput drop that fails (default 0.40 = 40%%)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_drop < 1.0:
        parser.error("--max-drop must be a fraction in (0, 1)")

    baseline = load_throughput(args.baseline)
    candidate = load_throughput(args.candidate)

    failures: list[str] = []
    for batch in sorted(baseline, key=lambda key: int(key)):
        before = baseline[batch]
        after = candidate.get(batch)
        if after is None:
            failures.append(
                f"batch {batch}: present in baseline ({before:.1f} rounds/s) "
                "but missing from candidate"
            )
            continue
        change = (after - before) / before if before else 0.0
        marker = "OK"
        if change < -args.max_drop:
            marker = "FAIL"
            failures.append(
                f"batch {batch}: {before:.1f} -> {after:.1f} rounds/s "
                f"({change:+.1%}, limit -{args.max_drop:.0%})"
            )
        print(
            f"[{marker:>4}] batch {batch:>4}: baseline {before:>9.1f}  "
            f"candidate {after:>9.1f}  ({change:+.1%})"
        )

    if failures:
        print("\nthroughput regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        print(f"\n{UPDATE_HINT}", file=sys.stderr)
        return 1
    print("no throughput regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
