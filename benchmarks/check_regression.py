"""Compare committed vs fresh bench JSON and fail on throughput regression.

Usage::

    python benchmarks/check_regression.py baseline.json candidate.json \
        [--vps-baseline BENCH_vps.json --vps-candidate fresh_vps.json] \
        [--max-drop 0.40]

Reads ``throughput_by_batch`` from both serve files and exits non-zero
if any batch size present in both dropped by more than ``--max-drop``
(a fraction: 0.40 means a 40% drop fails). Improvements and new batch
sizes never fail; a batch size that vanished from the candidate does,
because silently losing a measurement is how regressions hide. When
the baseline carries a ``throughput_by_shards`` section (from a
``--shards N`` run), the same rules apply shard-count by shard-count —
likewise ``throughput_by_concurrency`` (the async load generator vs
the blocking client) and ``throughput_router_vs_direct`` (the
ring-aware path vs the proxy hop).

``latency_p99_ms_by_concurrency`` gates the opposite direction: p99
request latency under load, where an *increase* beyond
``--max-latency-rise`` is the regression. Its threshold is far more
generous than the throughput one because tail latency on a shared
runner is the noisiest number this suite records; the gate exists to
catch "the pipelined server now convoys requests", a multiple, not a
wobble.

``--vps-baseline``/``--vps-candidate`` add the same comparison for
``BENCH_vps.json``'s ``ingest_rounds_per_second`` section (the fixed
micro-bench workload, identical across quick and full runs). A missing
vps *baseline* is tolerated with a notice — the first PR that ships
``bench_vps.py`` has no committed baseline to compare against — but
once a baseline exists, a missing or section-less candidate fails.

The generous default threshold is deliberate: CI runners are noisy
shared machines, and this gate exists to catch "someone serialized the
hot path", not a 5% wobble. Tighten it locally on quiet hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

UPDATE_HINT = """\
If this slowdown is expected (e.g. the batch path deliberately trades
throughput for a new guarantee), refresh the committed baseline:

    PYTHONPATH=src python benchmarks/bench_serve.py --quick --shards 4
    git add BENCH_serve.json

and explain the trade-off in the commit message. Otherwise, profile the
serve ingest path before merging — `repro client metrics` exposes
per-command latency histograms and journal fsync timings."""

VPS_UPDATE_HINT = """\
If the vps baseline is missing or stale, refresh it:

    PYTHONPATH=src python benchmarks/bench_vps.py --quick
    git add BENCH_vps.json"""


def load_document(path: Path, optional: bool = False) -> dict | None:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        if optional:
            print(
                f"notice: {path} does not exist; skipping its comparison.\n"
                f"{VPS_UPDATE_HINT}"
            )
            return None
        sys.exit(f"error: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    return document


def extract_section(document: dict, path: Path, section: str, required: bool):
    throughput = document.get(section)
    if not isinstance(throughput, dict) or not throughput:
        if required:
            sys.exit(f"error: {path} has no {section} section")
        return None
    return {str(key): float(value) for key, value in throughput.items()}


def compare_section(
    label: str,
    baseline: dict[str, float],
    candidate: dict[str, float] | None,
    limit: float,
    failures: list[str],
    higher_is_better: bool = True,
    unit: str = "rounds/s",
) -> None:
    """Row-by-row delta check; direction of "worse" is configurable.

    Throughput sections fail on a drop beyond ``limit``; latency
    sections (``higher_is_better=False``) fail on a *rise* beyond it.
    """
    if candidate is None:
        failures.append(
            f"{label}: section present in baseline but missing from candidate"
        )
        return
    # Serve sections key by batch/shard counts, vps by workload names;
    # sort numerically when possible, lexically otherwise.
    def sort_key(value: str) -> tuple:
        return (0, int(value), "") if value.isdigit() else (1, 0, value)

    for key in sorted(baseline, key=sort_key):
        before = baseline[key]
        after = candidate.get(key)
        if after is None:
            failures.append(
                f"{label} {key}: present in baseline ({before:.1f} {unit}) "
                "but missing from candidate"
            )
            continue
        change = (after - before) / before if before else 0.0
        worse = change < -limit if higher_is_better else change > limit
        marker = "OK"
        if worse:
            marker = "FAIL"
            sign = "-" if higher_is_better else "+"
            failures.append(
                f"{label} {key}: {before:.1f} -> {after:.1f} {unit} "
                f"({change:+.1%}, limit {sign}{limit:.0%})"
            )
        print(
            f"[{marker:>4}] {label} {key:>12}: baseline {before:>9.1f}  "
            f"candidate {after:>9.1f}  ({change:+.1%})"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_serve.json")
    parser.add_argument("candidate", type=Path, help="freshly measured BENCH_serve.json")
    parser.add_argument(
        "--vps-baseline",
        type=Path,
        default=None,
        help="committed BENCH_vps.json (missing file tolerated)",
    )
    parser.add_argument(
        "--vps-candidate",
        type=Path,
        default=None,
        help="freshly measured BENCH_vps.json",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.40,
        help="fractional throughput drop that fails (default 0.40 = 40%%)",
    )
    parser.add_argument(
        "--max-latency-rise",
        type=float,
        default=2.0,
        help=(
            "fractional p99 latency rise that fails (default 2.0 = a "
            "tripling); tail latency is the suite's noisiest number"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_drop < 1.0:
        parser.error("--max-drop must be a fraction in (0, 1)")
    if args.max_latency_rise <= 0.0:
        parser.error("--max-latency-rise must be positive")

    baseline_doc = load_document(args.baseline)
    candidate_doc = load_document(args.candidate)
    baseline = extract_section(
        baseline_doc, args.baseline, "throughput_by_batch", required=True
    )
    candidate = extract_section(
        candidate_doc, args.candidate, "throughput_by_batch", required=True
    )

    failures: list[str] = []
    compare_section("batch", baseline, candidate, args.max_drop, failures)
    for label, section in (
        ("shards", "throughput_by_shards"),
        ("concurrency", "throughput_by_concurrency"),
        ("route", "throughput_router_vs_direct"),
    ):
        section_baseline = extract_section(
            baseline_doc, args.baseline, section, required=False
        )
        if section_baseline is not None:
            section_candidate = extract_section(
                candidate_doc, args.candidate, section, required=False
            )
            compare_section(
                label,
                section_baseline,
                section_candidate,
                args.max_drop,
                failures,
            )
    baseline_p99 = extract_section(
        baseline_doc,
        args.baseline,
        "latency_p99_ms_by_concurrency",
        required=False,
    )
    if baseline_p99 is not None:
        candidate_p99 = extract_section(
            candidate_doc,
            args.candidate,
            "latency_p99_ms_by_concurrency",
            required=False,
        )
        compare_section(
            "p99",
            baseline_p99,
            candidate_p99,
            args.max_latency_rise,
            failures,
            higher_is_better=False,
            unit="ms",
        )

    if args.vps_baseline is not None:
        vps_baseline_doc = load_document(args.vps_baseline, optional=True)
        if vps_baseline_doc is not None:
            if args.vps_candidate is None:
                sys.exit("error: --vps-baseline given without --vps-candidate")
            vps_candidate_doc = load_document(args.vps_candidate)
            vps_baseline = extract_section(
                vps_baseline_doc,
                args.vps_baseline,
                "ingest_rounds_per_second",
                required=True,
            )
            vps_candidate = extract_section(
                vps_candidate_doc,
                args.vps_candidate,
                "ingest_rounds_per_second",
                required=False,
            )
            compare_section(
                "vps", vps_baseline, vps_candidate, args.max_drop, failures
            )

    if failures:
        print("\nthroughput regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        print(f"\n{UPDATE_HINT}", file=sys.stderr)
        return 1
    print("no throughput regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
