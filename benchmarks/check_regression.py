"""Compare committed vs fresh bench JSON and fail on regression.

Usage::

    python benchmarks/check_regression.py baseline.json candidate.json \
        [--vps-baseline BENCH_vps.json --vps-candidate fresh_vps.json] \
        [--classify-baseline BENCH_classify.json \
         --classify-candidate fresh_classify.json] \
        [--max-drop 0.40] [--max-latency-rise 2.0]

Each benchmark is a *suite*: a baseline/candidate document pair plus
the sections to compare row by row. The serve suite (the positional
arguments) gates ``throughput_by_batch`` (required) and, when the
baseline recorded them, ``throughput_by_shards``,
``throughput_by_concurrency``, ``throughput_router_vs_direct`` and
``latency_p99_ms_by_concurrency``. The vps suite gates the fixed
``ingest_rounds_per_second`` micro-bench; the classify suite gates
held-out ``macro_f1`` (a drop is the regression) and
``classify_latency_ms`` (a p99 rise is the regression).

Shared rules: improvements and new rows never fail; a row that
vanished from the candidate does, because silently losing a
measurement is how regressions hide. Throughput/score sections fail on
a drop beyond ``--max-drop``; latency sections fail on a *rise* beyond
``--max-latency-rise`` (far more generous, because tail latency on a
shared runner is the noisiest number this harness records).

The vps and classify suites tolerate a missing *baseline* file with a
notice and a refresh hint — the first PR that ships a bench has no
committed baseline to compare against — but once a baseline exists, a
missing or section-less candidate fails.

The generous default threshold is deliberate: CI runners are noisy
shared machines, and this gate exists to catch "someone serialized the
hot path", not a 5% wobble. Tighten it locally on quiet hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

UPDATE_HINT = """\
If this slowdown is expected (e.g. the batch path deliberately trades
throughput for a new guarantee), refresh the committed baseline:

    PYTHONPATH=src python benchmarks/bench_serve.py --quick --shards 4
    git add BENCH_serve.json

and explain the trade-off in the commit message. Otherwise, profile the
serve ingest path before merging — `repro client metrics` exposes
per-command latency histograms and journal fsync timings."""

VPS_UPDATE_HINT = """\
If the vps baseline is missing or stale, refresh it:

    PYTHONPATH=src python benchmarks/bench_vps.py --quick
    git add BENCH_vps.json"""

CLASSIFY_UPDATE_HINT = """\
If the classify baseline is missing or stale, refresh it:

    PYTHONPATH=src python benchmarks/bench_classify.py --quick
    git add BENCH_classify.json"""


def load_document(
    path: Path, optional: bool = False, hint: str = VPS_UPDATE_HINT
) -> dict | None:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        if optional:
            print(
                f"notice: {path} does not exist; skipping its comparison.\n"
                f"{hint}"
            )
            return None
        sys.exit(f"error: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    return document


def extract_section(document: dict, path: Path, section: str, required: bool):
    throughput = document.get(section)
    if not isinstance(throughput, dict) or not throughput:
        if required:
            sys.exit(f"error: {path} has no {section} section")
        return None
    return {str(key): float(value) for key, value in throughput.items()}


def compare_section(
    label: str,
    baseline: dict[str, float],
    candidate: dict[str, float] | None,
    limit: float,
    failures: list[str],
    higher_is_better: bool = True,
    unit: str = "rounds/s",
) -> None:
    """Row-by-row delta check; direction of "worse" is configurable.

    Throughput sections fail on a drop beyond ``limit``; latency
    sections (``higher_is_better=False``) fail on a *rise* beyond it.
    """
    if candidate is None:
        failures.append(
            f"{label}: section present in baseline but missing from candidate"
        )
        return
    # Serve sections key by batch/shard counts, vps by workload names;
    # sort numerically when possible, lexically otherwise.
    def sort_key(value: str) -> tuple:
        return (0, int(value), "") if value.isdigit() else (1, 0, value)

    for key in sorted(baseline, key=sort_key):
        before = baseline[key]
        after = candidate.get(key)
        if after is None:
            failures.append(
                f"{label} {key}: present in baseline ({before:.1f} {unit}) "
                "but missing from candidate"
            )
            continue
        change = (after - before) / before if before else 0.0
        worse = change < -limit if higher_is_better else change > limit
        marker = "OK"
        if worse:
            marker = "FAIL"
            sign = "-" if higher_is_better else "+"
            failures.append(
                f"{label} {key}: {before:.1f} -> {after:.1f} {unit} "
                f"({change:+.1%}, limit {sign}{limit:.0%})"
            )
        print(
            f"[{marker:>4}] {label} {key:>12}: baseline {before:>9.1f}  "
            f"candidate {after:>9.1f}  ({change:+.1%})"
        )


@dataclass(frozen=True)
class SectionSpec:
    """One comparable section of a bench document."""

    label: str
    section: str
    required: bool = False  # hard-exit if the baseline lacks it
    higher_is_better: bool = True
    unit: str = "rounds/s"
    gate: str = "drop"  # "drop" -> --max-drop, "rise" -> --max-latency-rise


#: What each bench suite compares. The serve suite is the positional
#: pair; vps and classify are opt-in flag pairs with a tolerated
#: missing baseline (their first PR has nothing committed to compare
#: against) and a suite-specific refresh hint.
SERVE_SECTIONS = (
    SectionSpec("batch", "throughput_by_batch", required=True),
    SectionSpec("shards", "throughput_by_shards"),
    SectionSpec("concurrency", "throughput_by_concurrency"),
    SectionSpec("route", "throughput_router_vs_direct"),
    SectionSpec(
        "p99",
        "latency_p99_ms_by_concurrency",
        higher_is_better=False,
        unit="ms",
        gate="rise",
    ),
)
VPS_SECTIONS = (
    SectionSpec("vps", "ingest_rounds_per_second", required=True),
)
CLASSIFY_SECTIONS = (
    SectionSpec(
        "classify-f1", "macro_f1", required=True, unit="macro-F1"
    ),
    SectionSpec(
        "classify-latency",
        "classify_latency_ms",
        higher_is_better=False,
        unit="ms",
        gate="rise",
    ),
)


def compare_suite(
    name: str,
    baseline_path: Path,
    candidate_path: Path | None,
    sections: tuple[SectionSpec, ...],
    limits: dict[str, float],
    failures: list[str],
    optional_baseline: bool = False,
    hint: str = VPS_UPDATE_HINT,
) -> None:
    """Load one baseline/candidate pair and compare its sections.

    With ``optional_baseline`` a missing baseline file prints the
    suite's refresh hint and skips the comparison entirely; once the
    baseline loads, the candidate is mandatory.
    """
    baseline_doc = load_document(baseline_path, optional=optional_baseline, hint=hint)
    if baseline_doc is None:
        return
    if candidate_path is None:
        sys.exit(f"error: --{name}-baseline given without --{name}-candidate")
    candidate_doc = load_document(candidate_path)
    for spec in sections:
        baseline = extract_section(
            baseline_doc, baseline_path, spec.section, required=spec.required
        )
        if baseline is None:
            continue
        candidate = extract_section(
            candidate_doc, candidate_path, spec.section, required=spec.required
        )
        compare_section(
            spec.label,
            baseline,
            candidate,
            limits[spec.gate],
            failures,
            higher_is_better=spec.higher_is_better,
            unit=spec.unit,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_serve.json")
    parser.add_argument("candidate", type=Path, help="freshly measured BENCH_serve.json")
    parser.add_argument(
        "--vps-baseline",
        type=Path,
        default=None,
        help="committed BENCH_vps.json (missing file tolerated)",
    )
    parser.add_argument(
        "--vps-candidate",
        type=Path,
        default=None,
        help="freshly measured BENCH_vps.json",
    )
    parser.add_argument(
        "--classify-baseline",
        type=Path,
        default=None,
        help="committed BENCH_classify.json (missing file tolerated)",
    )
    parser.add_argument(
        "--classify-candidate",
        type=Path,
        default=None,
        help="freshly measured BENCH_classify.json",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.40,
        help="fractional throughput/score drop that fails (default 0.40 = 40%%)",
    )
    parser.add_argument(
        "--max-latency-rise",
        type=float,
        default=2.0,
        help=(
            "fractional p99 latency rise that fails (default 2.0 = a "
            "tripling); tail latency is the suite's noisiest number"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_drop < 1.0:
        parser.error("--max-drop must be a fraction in (0, 1)")
    if args.max_latency_rise <= 0.0:
        parser.error("--max-latency-rise must be positive")
    limits = {"drop": args.max_drop, "rise": args.max_latency_rise}

    failures: list[str] = []
    compare_suite(
        "serve", args.baseline, args.candidate, SERVE_SECTIONS, limits, failures
    )
    if args.vps_baseline is not None:
        compare_suite(
            "vps",
            args.vps_baseline,
            args.vps_candidate,
            VPS_SECTIONS,
            limits,
            failures,
            optional_baseline=True,
            hint=VPS_UPDATE_HINT,
        )
    if args.classify_baseline is not None:
        compare_suite(
            "classify",
            args.classify_baseline,
            args.classify_candidate,
            CLASSIFY_SECTIONS,
            limits,
            failures,
            optional_baseline=True,
            hint=CLASSIFY_UPDATE_HINT,
        )

    if failures:
        print("\nbench regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        print(f"\n{UPDATE_HINT}", file=sys.stderr)
        return 1
    print("no bench regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
