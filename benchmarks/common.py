"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it builds the scenario, runs the Fenrir analysis, prints the
paper-shaped rows (also archived under ``benchmarks/out/``), asserts
the qualitative shape, and benchmarks the core computation involved.
"""

from __future__ import annotations

import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent


def emit(experiment: str, text: str) -> None:
    """Print a reproduction block and archive it to benchmarks/out/."""
    banner = f"\n=== {experiment} " + "=" * max(1, 70 - len(experiment)) + "\n"
    print(banner + text + "\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{experiment}.txt").write_text(text + "\n")


def write_bench_json(name: str, metrics: dict) -> Path:
    """Archive machine-readable results as ``BENCH_<name>.json``.

    Written at the repo root so the perf trajectory is a first-class,
    diffable artifact across PRs (and uploadable from CI), not just a
    human-readable block under ``benchmarks/out/``.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"bench json: {path}")
    return path


def fmt_range(pair: tuple[float, float]) -> str:
    return f"[{pair[0]:.2f}, {pair[1]:.2f}]"
