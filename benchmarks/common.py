"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it builds the scenario, runs the Fenrir analysis, prints the
paper-shaped rows (also archived under ``benchmarks/out/``), asserts
the qualitative shape, and benchmarks the core computation involved.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(experiment: str, text: str) -> None:
    """Print a reproduction block and archive it to benchmarks/out/."""
    banner = f"\n=== {experiment} " + "=" * max(1, 70 - len(experiment)) + "\n"
    print(banner + text + "\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{experiment}.txt").write_text(text + "\n")


def fmt_range(pair: tuple[float, float]) -> str:
    return f"[{pair[0]:.2f}, {pair[1]:.2f}]"
