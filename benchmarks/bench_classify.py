"""Route-change cause classification: macro-F1 and latency envelope.

``repro.classify`` labels detected mode transitions — ``drain``,
``traffic-engineering``, ``third-party-flap``, ``cable-cut`` — from a
byte-deterministic feature vector and a dependency-free seeded
decision forest (docs/classification.md). This bench demonstrates the
full contract:

* **Determinism**: training twice from the same dataset and seed
  yields byte-identical model artifacts (``canonical_json``), and two
  builds of the same study yield the same dataset digest.
* **Accuracy**: the model trained on the train study (seed 1103)
  scores macro-F1 >= 0.9 on the *held-out* eval study (seed 2207 — a
  different topology, fleet, and event placement), against the
  ground-truth labels the generator scripted.
* **Latency**: the serve tier's wire-shaped classify path — raw
  ``{network: state}`` rounds through ``featurize_mappings`` plus a
  forest ``predict`` — timed per call; p50/p99 land in
  ``BENCH_classify.json`` and CI's bench-delta gate fails the PR if
  p99 regresses past ``--max-latency-rise``.

Human-readable results go to ``benchmarks/out/classify.txt``; the
machine-readable trajectory goes to ``BENCH_classify.json`` at the
repo root (uploaded as a CI artifact).

Run directly: ``PYTHONPATH=src python benchmarks/bench_classify.py``
(``--quick`` for the CI smoke variant).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.classify import (
    FULL_EVAL,
    FULL_TRAIN,
    QUICK_EVAL,
    QUICK_TRAIN,
    build_dataset,
    evaluate,
    featurize_mappings,
    train_forest,
)

from common import emit, write_bench_json

SEED = 7

#: Acceptance floor on the held-out study (the PR's headline claim).
MIN_MACRO_F1 = 0.9

#: Wire-path latency sample size: enough calls that p99 is a real
#: tail, small enough that the quick CI variant stays in seconds.
LATENCY_CALLS = 2000


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def run(quick: bool = False) -> dict:
    train_config = QUICK_TRAIN if quick else FULL_TRAIN
    eval_config = QUICK_EVAL if quick else FULL_EVAL

    t0 = time.perf_counter()
    train = build_dataset(train_config)
    eval_set = build_dataset(eval_config)
    build_seconds = time.perf_counter() - t0

    # Determinism: same config -> same dataset bytes; same dataset +
    # seed -> same model bytes. Both are what make the CI gate and the
    # committed artifact meaningful.
    assert train.digest() == build_dataset(train_config).digest(), (
        "dataset build is not deterministic"
    )
    t0 = time.perf_counter()
    model = train_forest(train.features, list(train.labels), seed=SEED)
    train_seconds = time.perf_counter() - t0
    retrained = train_forest(train.features, list(train.labels), seed=SEED)
    assert model.canonical_json() == retrained.canonical_json(), (
        "training is not byte-deterministic"
    )

    report = evaluate(model, eval_set.features, list(eval_set.labels))
    macro = report["macro_f1"]

    # Wire-shaped classify path: raw state mappings -> features ->
    # label, exactly what the serve tier does per request/transition.
    samples = eval_set.sample_transitions or train.sample_transitions
    assert samples, "dataset carried no sample transitions"
    durations_ms: list[float] = []
    for index in range(LATENCY_CALLS):
        before, after = samples[index % len(samples)]
        started = time.perf_counter()
        features = featurize_mappings(before, after)
        model.predict(features)
        durations_ms.append((time.perf_counter() - started) * 1000.0)
    p50 = _percentile(durations_ms, 50)
    p99 = _percentile(durations_ms, 99)

    lines = [
        f"mode: {'quick' if quick else 'full'}",
        f"train study: seed {train_config.seed}, {len(train.labels)} events "
        f"({', '.join(f'{k}={v}' for k, v in train.counts().items())})",
        f"eval study:  seed {eval_config.seed}, {len(eval_set.labels)} events",
        f"dataset build: {build_seconds:.1f}s  train: {train_seconds:.2f}s",
        f"model: {len(model.trees)} trees, sha256 {model.content_digest()[:16]}",
        "",
        f"held-out macro-F1: {macro:.3f}  accuracy: {report['accuracy']:.3f}",
    ]
    for label, stats in report["per_label"].items():
        lines.append(
            f"  {label:<22} precision {stats['precision']:.3f}  "
            f"recall {stats['recall']:.3f}  f1 {stats['f1']:.3f}"
        )
    lines += [
        "",
        f"classify latency ({LATENCY_CALLS} wire-shaped calls, "
        f"{len(samples[0][0])} networks):",
        f"  p50 {p50:.3f} ms   p99 {p99:.3f} ms",
    ]
    emit("classify", "\n".join(lines))

    metrics = {
        "mode": "quick" if quick else "full",
        "macro_f1": {"holdout": round(macro, 6)},
        "accuracy": {"holdout": round(report["accuracy"], 6)},
        "classify_latency_ms": {"p50": round(p50, 4), "p99": round(p99, 4)},
        "train_events": len(train.labels),
        "eval_events": len(eval_set.labels),
        "model_sha256": model.content_digest(),
        "dataset_sha256": {"train": train.digest(), "eval": eval_set.digest()},
    }
    write_bench_json("classify", metrics)

    assert macro >= MIN_MACRO_F1, (
        f"held-out macro-F1 {macro:.3f} below the {MIN_MACRO_F1} floor"
    )
    return metrics


def test_classify_accuracy() -> None:
    run(quick=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: smaller train/eval studies",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick)
