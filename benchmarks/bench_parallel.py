"""Parallel similarity engine: serial vs tiled-parallel vs warm cache.

Not a paper table — this documents the speedup envelope of
``repro.parallel`` (docs/performance.md) on a long daily series in the
many-states regime (Google-style thousands of front ends), where the
serial reference must fall back to per-pair row comparison:

* the tiled sparse-factorization kernel dispatched over a process pool
  must beat the serial reference by ≥2× at ``n_jobs=4``;
* a warm content-addressed cache hit must beat recomputation by ≥10×.

Archived in ``benchmarks/out/parallel.txt``.
"""

from __future__ import annotations

import random
import time
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.compare import similarity_matrix
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog, UNKNOWN
from repro.parallel import SimilarityEngine

from common import emit, write_bench_json

NUM_ROUNDS = 1000  # T ≥ 200 required; the paper's studies run to 1.9k rounds
NUM_NETWORKS = 300
NUM_STATES = 5000  # >> 2T so the serial oracle uses its pairwise fallback
REPEATS = 3


def synthetic_series(seed: int = 7) -> VectorSeries:
    rng = random.Random(seed)
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    series = VectorSeries(networks, StateCatalog())
    t0 = datetime(2024, 1, 1)

    def draw() -> str:
        if rng.random() < 0.05:
            return UNKNOWN
        return f"s{rng.randrange(NUM_STATES)}"

    assignment = {network: draw() for network in networks}
    for round_index in range(NUM_ROUNDS):
        if round_index:
            for network in networks:
                if rng.random() < 0.3:
                    assignment[network] = draw()
        series.append_mapping(dict(assignment), t0 + timedelta(hours=round_index))
    return series


def best_of(callable_, repeats: int = REPEATS) -> tuple[float, np.ndarray]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def series() -> VectorSeries:
    return synthetic_series()


def test_parallel_speedup_and_cache(series, tmp_path_factory):
    t_serial, reference = best_of(lambda: similarity_matrix(series))

    rows = [
        "Parallel similarity engine "
        f"(T={NUM_ROUNDS}, N={NUM_NETWORKS}, |S|~{NUM_STATES}, best of {REPEATS})",
        f"  serial reference:       {t_serial * 1e3:9.1f} ms",
    ]
    speedups = {}
    for n_jobs in (2, 4):
        engine = SimilarityEngine(n_jobs=n_jobs, tile_size=100)
        t_parallel, result = best_of(
            lambda engine=engine: engine.similarity_matrix(series)
        )
        assert np.allclose(reference, result, atol=1e-12, equal_nan=True)
        speedups[n_jobs] = t_serial / t_parallel
        rows.append(
            f"  tiled engine n_jobs={n_jobs}:  {t_parallel * 1e3:9.1f} ms"
            f"  ({speedups[n_jobs]:.1f}x vs serial)"
        )

    cache_dir = tmp_path_factory.mktemp("phi-cache")
    cached_engine = SimilarityEngine(n_jobs=4, tile_size=100, cache_dir=cache_dir)
    start = time.perf_counter()
    first = cached_engine.similarity_matrix(series)
    t_cold = time.perf_counter() - start
    t_warm, warm = best_of(lambda: cached_engine.similarity_matrix(series))
    assert np.array_equal(first, warm)
    assert cached_engine.stats.cache_misses == 1
    assert cached_engine.stats.cache_hits >= 1
    cache_speedup = t_serial / t_warm
    rows += [
        f"  cold cache (compute+store): {t_cold * 1e3:5.1f} ms",
        f"  warm cache hit:         {t_warm * 1e3:9.1f} ms"
        f"  ({cache_speedup:.0f}x vs serial)",
        f"  cache hits/misses:      {cached_engine.stats.cache_hits}"
        f"/{cached_engine.stats.cache_misses}",
    ]
    emit("parallel", "\n".join(rows))
    write_bench_json(
        "parallel",
        {
            "rounds": NUM_ROUNDS,
            "networks": NUM_NETWORKS,
            "states": NUM_STATES,
            "serial_ms": round(t_serial * 1e3, 3),
            "speedup_by_jobs": {
                str(n_jobs): round(value, 3) for n_jobs, value in speedups.items()
            },
            "cold_cache_ms": round(t_cold * 1e3, 3),
            "warm_cache_ms": round(t_warm * 1e3, 3),
            "cache_speedup": round(cache_speedup, 3),
        },
    )

    # Acceptance: ≥2x parallel at n_jobs=4, ≥10x warm-cache rerun.
    assert speedups[4] >= 2.0, f"n_jobs=4 speedup {speedups[4]:.2f}x < 2x"
    assert cache_speedup >= 10.0, f"warm cache {cache_speedup:.2f}x < 10x"


def test_engine_benchmark_parallel(series, benchmark):
    engine = SimilarityEngine(n_jobs=4, tile_size=100)
    result = benchmark(engine.similarity_matrix, series)
    assert result.shape == (NUM_ROUNDS, NUM_ROUNDS)
