"""Figure 2: USC enterprise catchments at hop 3 over eight months.

Paper shape: two strong routing modes separated by 2025-01-16; the
cross-mode Φ(Mi,Mii) range tops out around 0.1 ("at most 90% of
catchments changed"); before the change the hop-3 catchment is
dominated by ARN-A with ANN present; after, NTT and HE take over and
ANN vanishes.
"""

from __future__ import annotations

from collections import Counter
from datetime import datetime

import pytest

from repro.core import Fenrir
from repro.datasets import usc

from common import emit, fmt_range


@pytest.fixture(scope="module")
def study():
    return usc.generate()


def test_fig2_enterprise_modes(study, benchmark):
    fenrir = Fenrir()
    report = fenrir.run(study.series)
    modes = report.modes

    before_index = study.series.index_at(datetime(2024, 10, 1))
    after_index = study.series.index_at(datetime(2025, 3, 1))
    before = Counter(study.series[before_index].to_mapping().values())
    after = Counter(study.series[after_index].to_mapping().values())
    total = len(study.series.networks)

    lines = ["Figure 2: enterprise catchments at hop 3 (USC-like)", ""]
    lines.append(report.mode_timeline())
    lines.append("")
    lines.append(f"modes found: {len(modes)} (paper: 2, split at 2025-01-16)")
    if len(modes) >= 2:
        lines.append(
            f"Φ(Mi,Mii) = {fmt_range(modes.phi_between(0, 1))} "
            "(paper: [0.11, 0.48]; 'at most 90% changed')"
        )
    lines.append("")
    lines.append("hop-3 shares before (2024-10) and after (2025-03):")
    for name in ["ARN-A", "ARN-B", "ANN", "NTT", "HE"]:
        lines.append(
            f"  {name:>6}: {before.get(name, 0) / total:6.1%}  ->  "
            f"{after.get(name, 0) / total:6.1%}"
        )
    lines.append("")
    lines.append(report.heatmap(max_size=40))
    emit("fig2_enterprise", "\n".join(lines))

    assert len(modes) == 2
    assert modes.phi_between(0, 1)[1] <= 0.35
    assert before["ARN-A"] > 0.5 * total  # ARN-A dominates before
    assert after.get("ARN-A", 0) < 0.1 * total  # and collapses after
    assert after["NTT"] + after["HE"] > 0.4 * total
    assert after.get("ANN", 0) < 0.02 * total

    benchmark.pedantic(
        lambda: fenrir.run(study.series), rounds=2, iterations=1
    )
