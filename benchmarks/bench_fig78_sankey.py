"""Figures 7/8: Sankey flow diagrams of USC egress before/after the change.

Paper shape (appendix): before 2025-01-16 the dominant transit at the
early hops is ARN-A (AS 2152, ~80% at hop 3) feeding ANN; after the
reconfiguration ARN-A drops to ~13% and the flows shift onto NTT
(AS 2914), HE (AS 6939) and ARN-B (AS 226).
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.core.viz import render_sankey, sankey_flows
from repro.datasets import usc

from common import emit


@pytest.fixture(scope="module")
def study():
    return usc.generate(num_blocks=800)


def _paths(study, when):
    records = study.enterprise.sweep(when)
    return [
        [study.enterprise.name_of(asn) or "private" for asn in record.as_path()]
        for record in records.values()
    ]


def _share(flows, level, node):
    level_flows = [f for f in flows if f[0] == level]
    total = sum(f[3] for f in level_flows)
    onto = sum(f[3] for f in level_flows if f[2] == node)
    return onto / total if total else 0.0


def test_fig78_sankey_flows(study, benchmark):
    before_when = datetime(2024, 10, 1)
    after_when = datetime(2025, 2, 15)
    before_paths = _paths(study, before_when)
    after_paths = _paths(study, after_when)
    before_flows = sankey_flows(before_paths, max_hops=4)
    after_flows = sankey_flows(after_paths, max_hops=4)

    lines = ["Figure 7: flow topology before the change (2024-10)", ""]
    lines.append(render_sankey(before_flows, top_per_level=5))
    lines += ["", "Figure 8: flow topology after the change (2025-02)", ""]
    lines.append(render_sankey(after_flows, top_per_level=5))
    lines += [
        "",
        "share into ARN-A at the second transit hop: "
        f"{_share(before_flows, 0, 'ARN-A'):.0%} -> {_share(after_flows, 0, 'ARN-A'):.0%} "
        "(paper: 80% -> 13% at hop 3)",
        f"share into NTT:  {_share(before_flows, 1, 'NTT'):.0%} -> "
        f"{_share(after_flows, 0, 'NTT'):.0%} (paper: rises to ~31%)",
        f"share into HE:   {_share(before_flows, 1, 'HE'):.0%} -> "
        f"{_share(after_flows, 0, 'HE'):.0%} (paper: rises to ~29%)",
    ]
    emit("fig78_sankey", "\n".join(lines))

    assert _share(before_flows, 0, "ARN-A") > 0.6
    assert _share(after_flows, 0, "ARN-A") < 0.2
    assert _share(after_flows, 0, "NTT") > 0.2
    assert _share(after_flows, 0, "HE") > 0.15

    benchmark(sankey_flows, before_paths, 4)
