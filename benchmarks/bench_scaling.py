"""Scaling benchmarks: Fenrir's core computations vs study size.

Not a paper table — these document the computational envelope of the
implementation: the all-pairs Φ matrix in networks (N) and rounds (T),
HAC in T, and the routing oracle in topology size. The paper's
full-scale studies (5M blocks, 1.9k daily rounds) stay tractable
because Φ is O(|S|·T²·N) in BLAS and everything downstream is
T-sized.
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.bgp.policy import Announcement
from repro.bgp.routing import compute_routes
from repro.bgp.topology import generate_internet_like
from repro.core.cluster import hac_linkage
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.parallel import SimilarityEngine

T0 = datetime(2024, 1, 1)


def synthetic_series(num_networks: int, num_rounds: int, num_states: int = 8) -> VectorSeries:
    rng = random.Random(7)
    networks = [f"n{i}" for i in range(num_networks)]
    series = VectorSeries(networks, StateCatalog())
    assignment = {n: f"s{rng.randrange(num_states)}" for n in networks}
    for round_index in range(num_rounds):
        # 2% churn per round keeps the data realistic.
        for n in rng.sample(networks, max(1, num_networks // 50)):
            assignment[n] = f"s{rng.randrange(num_states)}"
        series.append_mapping(dict(assignment), T0 + timedelta(hours=round_index))
    return series


@pytest.mark.parametrize("num_networks", [1000, 5000, 20000])
@pytest.mark.parametrize("n_jobs", [1, 4])
def test_scaling_similarity_in_networks(benchmark, num_networks, n_jobs):
    # Routed through the similarity engine: n_jobs=1 is the serial
    # reference path, n_jobs=4 the tiled process pool.
    series = synthetic_series(num_networks, 50)
    engine = SimilarityEngine(n_jobs=n_jobs)
    result = benchmark(engine.similarity_matrix, series)
    assert result.shape == (50, 50)


@pytest.mark.parametrize("num_rounds", [50, 150, 300])
@pytest.mark.parametrize("n_jobs", [1, 4])
def test_scaling_similarity_in_rounds(benchmark, num_rounds, n_jobs):
    series = synthetic_series(2000, num_rounds)
    engine = SimilarityEngine(n_jobs=n_jobs)
    result = benchmark(engine.similarity_matrix, series)
    assert result.shape == (num_rounds, num_rounds)


@pytest.mark.parametrize("num_points", [100, 300, 600])
def test_scaling_hac_in_rounds(benchmark, num_points):
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 1, num_points)
    distance = np.abs(points[:, None] - points[None, :])
    result = benchmark(hac_linkage, distance, "single")
    assert result.num_points == num_points


@pytest.mark.parametrize("num_stubs", [200, 800, 2000])
def test_scaling_routing_oracle(benchmark, num_stubs):
    rng = random.Random(1)
    topo = generate_internet_like(
        rng, num_tier1=6, num_tier2=max(20, num_stubs // 20), num_stubs=num_stubs
    )
    stubs = [asn for asn, node in topo.nodes.items() if node.tier == 3]
    announcements = [
        Announcement(origin=stubs[0], label="A"),
        Announcement(origin=stubs[1], label="B"),
        Announcement(origin=stubs[2], label="C"),
    ]
    outcome = benchmark(compute_routes, topo, announcements)
    assert len(outcome) == len(topo)
