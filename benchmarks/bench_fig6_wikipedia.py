"""Figure 6: Wikipedia catchments and the codfw drain.

Paper shape: three modes with within-mode Φ in [0.93, 0.95]; the drain
week (mode ii) sits at Φ(Mi,Mii) ≈ [0.79, 0.94] — about 20% of
networks shift, ~75% of codfw's clients to eqiad and ~25% to ulsfo;
after codfw returns (mode iii) only ~30% of its original clients come
back, leaving Φ(Mi,Miii) ≈ 0.8.
"""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.core import Fenrir
from repro.core.transition import transition_matrix
from repro.datasets import wikipedia

from common import emit, fmt_range


@pytest.fixture(scope="module")
def study():
    return wikipedia.generate()


def test_fig6_wikipedia_drain(study, benchmark):
    fenrir = Fenrir()
    report = fenrir.run(study.series)
    modes = report.modes

    series = study.series
    pre = series.index_at(wikipedia.DRAIN_START - timedelta(days=1))
    during = series.index_at(wikipedia.DRAIN_START + timedelta(days=1))
    tm = transition_matrix(series[pre], series[during])
    departures = tm.departures_from("codfw")
    departures.pop("unknown", None)
    moved = sum(departures.values())

    aggregates = report.cleaned.aggregate_over_time()
    codfw_before = aggregates["codfw"][0]
    codfw_after = aggregates["codfw"][-1]

    # §2.5: a user-weighted Φ tells the operator how much the drain
    # mattered in *users*, not just prefixes.
    from repro.core import phi
    from repro.core.weighting import table_weights

    user_weights = table_weights(series.networks, study.users, default=0.0)
    drop_unweighted = phi(series[pre], series[during])
    drop_weighted = phi(series[pre], series[during], weights=user_weights)

    lines = ["Figure 6: Wikipedia catchments, 2025-03-15 .. 2025-04-26", ""]
    lines.append(report.mode_timeline())
    lines += [
        "",
        f"modes found: {len(modes)} (paper: 3)",
        f"Φ(Mi,Mii)  = {fmt_range(modes.phi_between(0, 1))} (paper: [0.79, 0.94])"
        if len(modes) > 1
        else "",
        f"Φ(Mi,Miii) = {fmt_range(modes.phi_between(0, 2))} (paper: ~[0.8, 0.94])"
        if len(modes) > 2
        else "",
        "",
        "codfw drain destination split "
        "(paper: ~75% eqiad / ~25% ulsfo): "
        + ", ".join(
            f"{site} {count / moved:.0%}" for site, count in sorted(departures.items())
        ),
        f"codfw clients before: {codfw_before:.0f}, after return: {codfw_after:.0f} "
        f"({codfw_after / codfw_before:.0%} returned; paper: ~30%)",
        f"drain-step Φ: {drop_unweighted:.2f} by prefixes, "
        f"{drop_weighted:.2f} weighted by users (§2.5)",
    ]
    emit("fig6_wikipedia", "\n".join(lines))

    assert len(modes) == 3
    low_ii, high_ii = modes.phi_between(0, 1)
    assert 0.6 < low_ii < high_ii < 0.95
    low_iii, high_iii = modes.phi_between(0, 2)
    assert low_iii > low_ii  # the return mode is closer to the original
    assert departures["eqiad"] > departures["ulsfo"] > 0
    assert 0.15 < codfw_after / codfw_before < 0.55

    within = modes.phi_within(2)
    assert within[0] > 0.90  # stable modes, as in the paper

    benchmark.pedantic(lambda: fenrir.run(study.series), rounds=2, iterations=1)
