"""Ablations of Fenrir's design choices (DESIGN.md §5).

Not a paper table — these quantify the knobs the paper fixes:

1. unknown policy: pessimistic (paper) vs exclude (paper's ongoing work);
2. interpolation limit: 0..5 (paper uses 3);
3. HAC linkage: single (paper's SLINK) vs complete vs average;
4. adaptive distance threshold vs fixed cuts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fenrir, UnknownPolicy
from repro.core.cleaning import interpolate_series
from repro.core.compare import similarity_matrix
from repro.core.cluster import adaptive_clusters, cut_linkage, hac_linkage
from repro.datasets import broot

from common import emit


@pytest.fixture(scope="module")
def study():
    return broot.generate(num_blocks=1200)


def test_ablation_unknown_policy(study, benchmark):
    cleaned, _ = Fenrir().clean(study.series)
    pessimistic = similarity_matrix(cleaned, policy=UnknownPolicy.PESSIMISTIC)
    excluding = similarity_matrix(cleaned, policy=UnknownPolicy.EXCLUDE)
    adjacent_p = np.nanmean(np.diag(pessimistic, k=1))
    adjacent_e = np.nanmean(np.diag(excluding, k=1))
    lines = [
        "Ablation 1: unknown policy",
        f"  mean adjacent-Φ pessimistic: {adjacent_p:.2f} (capped by unknowns)",
        f"  mean adjacent-Φ exclude:     {adjacent_e:.2f} (near 1 when stable)",
    ]
    emit("ablation_unknown_policy", "\n".join(lines))
    # Excluding unknowns lifts the similarity ceiling, as the paper
    # anticipates for its ongoing work.
    assert adjacent_e > adjacent_p + 0.2
    assert adjacent_e > 0.9

    benchmark(similarity_matrix, cleaned, None, UnknownPolicy.EXCLUDE)


def test_ablation_interpolation_limit(study, benchmark):
    rows = ["Ablation 2: interpolation limit vs residual unknowns"]
    fractions = {}
    for limit in [0, 1, 2, 3, 4, 5]:
        cleaned = interpolate_series(study.series, limit=limit)
        fraction = float(
            np.mean([cleaned[i].fraction_unknown() for i in range(len(cleaned))])
        )
        fractions[limit] = fraction
        rows.append(f"  limit={limit}: mean unknown fraction {fraction:.3f}")
    emit("ablation_interpolation", "\n".join(rows))
    assert fractions[0] > fractions[3] > fractions[5] - 1e-9
    # Diminishing returns: each extra step of reach recovers less than
    # the first step did.
    gain_01 = fractions[0] - fractions[1]
    gain_45 = fractions[4] - fractions[5]
    assert gain_01 > gain_45

    benchmark(interpolate_series, study.series, 3)


def test_ablation_linkage(study, benchmark):
    report = Fenrir().run(study.series)
    distance = np.where(np.isnan(report.similarity), 1.0, 1.0 - report.similarity)
    np.fill_diagonal(distance, 0.0)
    rows = ["Ablation 3: HAC linkage vs number of modes (adaptive threshold)"]
    counts = {}
    for method in ("single", "complete", "average"):
        result = adaptive_clusters(distance, method=method)
        counts[method] = result.num_clusters
        rows.append(
            f"  {method:>8}: {result.num_clusters} modes at threshold {result.threshold:.2f}"
        )
    emit("ablation_linkage", "\n".join(rows))
    # SLINK (paper) yields the cleanest segmentation on this study.
    assert counts["single"] <= counts["complete"]
    assert all(1 <= count < 15 for count in counts.values())

    benchmark(hac_linkage, distance, "single")


def test_ablation_threshold_rule(study, benchmark):
    report = Fenrir().run(study.series)
    distance = np.where(np.isnan(report.similarity), 1.0, 1.0 - report.similarity)
    np.fill_diagonal(distance, 0.0)
    linkage = hac_linkage(distance, "single")
    rows = ["Ablation 4: fixed thresholds vs the adaptive rule"]
    for threshold in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6):
        labels = cut_linkage(linkage, threshold)
        rows.append(f"  fixed t={threshold:.1f}: {labels.max() + 1} clusters")
    adaptive = adaptive_clusters(distance, method="single", linkage=linkage)
    rows.append(
        f"  adaptive: {adaptive.num_clusters} clusters at t={adaptive.threshold:.2f}"
    )
    emit("ablation_threshold", "\n".join(rows))
    assert 2 <= adaptive.num_clusters < 15

    benchmark(cut_linkage, linkage, 0.4)


def test_ablation_weighting(study, benchmark):
    from repro.core.weighting import address_weights, uniform_weights

    cleaned, _ = Fenrir().clean(study.series)
    uniform = similarity_matrix(cleaned, weights=uniform_weights(cleaned.networks))
    addressed = similarity_matrix(cleaned, weights=address_weights(cleaned.networks))
    delta = float(np.nanmax(np.abs(uniform - addressed)))
    lines = [
        "Ablation 5: weighting scheme",
        "  all networks are /24 blocks here, so address weights equal uniform:",
        f"  max |Φ_uniform - Φ_addr| = {delta:.3g}",
    ]
    emit("ablation_weighting", "\n".join(lines))
    assert delta < 1e-12

    benchmark(address_weights, cleaned.networks)


def test_ablation_detection_threshold(benchmark):
    """Detection-threshold ROC on the ground-truth scenario.

    Sweeps the fixed step-change threshold and reports precision,
    recall and accuracy against the scripted operator log — showing the
    knee where the paper-matching operating point (0.02) sits.
    """
    from repro.core import detect_events, group_entries, validate_events
    from repro.datasets import groundtruth

    study = groundtruth.generate(
        num_vps=300,
        days=40,
        num_drains=6,
        num_te=1,
        num_internal=12,
        num_coinciding=3,
        num_standalone=4,
        extra_log_entries=14,
    )
    groups = group_entries(study.log)
    rows = ["Ablation 6: detection threshold vs precision/recall"]
    curve = {}
    for threshold in (0.005, 0.01, 0.02, 0.04, 0.08, 0.15):
        events = detect_events(study.series, threshold=threshold, merge_gap=3)
        report = validate_events(events, groups)
        curve[threshold] = report
        rows.append(
            f"  t={threshold:<5}: events={len(events):>3}  "
            f"recall={report.recall:.2f}  precision={report.precision:.2f}  "
            f"accuracy={report.accuracy:.2f}  extra={report.unmatched_detections}"
        )
    emit("ablation_detection_threshold", "\n".join(rows))

    assert curve[0.02].recall == 1.0
    # Too-low thresholds flood detections with noise (extras explode);
    # too-high thresholds lose recall.
    assert curve[0.005].unmatched_detections > curve[0.02].unmatched_detections
    assert curve[0.15].recall < 1.0

    benchmark(detect_events, study.series, threshold=0.02, merge_gap=3)
