"""Figure 3 (and §4.2.1): five years of B-Root modes via Verfploeter.

Paper shape: about six modes; roughly half the networks unknown in any
round, capping stable within-mode Φ at ~0.5-0.6; mode (v) — after the
TE withdrawal in mid-2023 — resembles the original mode (i) more than
it resembles its temporal neighbours (Φ(Mi,Mv) > Φ(Miv,Mv), Φ(Mv,Mvi)).
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.core import Fenrir
from repro.core.compare import similarity_matrix
from repro.datasets import broot

from common import emit


@pytest.fixture(scope="module")
def study():
    return broot.generate()


def test_fig3_broot_modes(study, benchmark):
    report = Fenrir().run(study.series)
    modes = report.modes

    unknown = study.series[0].fraction_unknown()
    v_index = study.series.index_at(datetime(2024, 2, 1))
    v_mode = modes.mode_at(v_index).mode_id
    iv_mode = modes.mode_at(study.series.index_at(datetime(2023, 5, 1))).mode_id
    vi_mode = modes.mode_at(study.series.index_at(datetime(2024, 10, 1))).mode_id

    phi_i_v = modes.phi_between_mean(0, v_mode)
    phi_iv_v = modes.phi_between_mean(iv_mode, v_mode)
    phi_v_vi = modes.phi_between_mean(v_mode, vi_mode)

    lines = ["Figure 3: B-Root catchments 2019-09 .. 2024-12 (Verfploeter style)", ""]
    lines.append(report.mode_timeline())
    lines.append("")
    lines.append(f"fraction unknown per round: {unknown:.2f} (paper: ~0.5)")
    lines.append(f"modes found: {len(modes)} (paper: 6)")
    lines.append(
        f"Φ(Mi,Mv) = {phi_i_v:.2f}  vs  Φ(Miv,Mv) = {phi_iv_v:.2f}, "
        f"Φ(Mv,Mvi) = {phi_v_vi:.2f}"
    )
    lines.append("(paper: 0.31 vs 0.22 and 0.17 — the old mode recurs)")
    prior = modes.closest_prior_mode(v_mode)
    lines.append(f"closest prior mode of (v): mode {prior[0]} at mean Φ {prior[1]:.2f}")

    # Abstract/§4.2.1: "around 30% of networks fall back to previous
    # routing mode" comparing end-2019 against end-2024.
    from repro.core import phi

    end_2019 = report.cleaned[report.cleaned.index_at(datetime(2019, 12, 29))]
    end_2024 = report.cleaned[len(report.cleaned) - 1]
    fallback = phi(end_2019, end_2024)
    lines.append(
        f"Φ(end-2019, end-2024) = {fallback:.2f} (paper: ~0.31 — about a "
        "third of catchments match across five years)"
    )

    # Load concentration per era: the 2020 TE was exactly a
    # de-concentration move (LAX stops serving most clients).
    pre_te = report.cleaned[report.cleaned.index_at(datetime(2020, 1, 1))]
    post_te = report.cleaned[report.cleaned.index_at(datetime(2021, 1, 1))]
    lines.append(
        f"effective site count: {pre_te.effective_sites():.1f} before the "
        f"2020-04 TE, {post_te.effective_sites():.1f} after"
    )
    lines.append("")
    lines.append(report.heatmap(max_size=52))
    emit("fig3_broot", "\n".join(lines))

    assert 0.15 < fallback < 0.45

    assert 0.35 < unknown < 0.6
    assert 4 <= len(modes) <= 8
    assert phi_i_v > phi_iv_v
    assert phi_i_v > phi_v_vi
    assert prior[0] == 0
    within = modes.phi_within(0)
    assert 0.45 < within[0] < 0.7  # the unknown cap

    benchmark(similarity_matrix, study.series)
