"""Extension: Fenrir on control-plane (RouteViews-style) data.

The paper names control-plane input as future work (§5). This bench
feeds Fenrir from a simulated route collector instead of active
probing and checks two things:

1. control-plane catchments agree with the data-plane oracle, and the
   mode structure over the B-Root timeline matches the scripted events
   without measurement noise (no unknowns, so within-mode Φ ≈ 1);
2. AS-hegemony (Fontugne et al., the metric behind RIPE's country
   reports) quantifies the USC reconfiguration: ARN-A's hegemony
   collapses while NTT's and HE's rise.
"""

from __future__ import annotations

import random
from datetime import datetime

import pytest

import numpy as np

from repro.core import Fenrir
from repro.controlplane import (
    RouteCollector,
    country_crossings,
    hegemony_scores,
    origin_series,
    transit_diversity,
)
from repro.datasets import baltic, broot, usc
from repro.latency.model import path_rtt_ms

from common import emit


@pytest.fixture(scope="module")
def broot_study():
    return broot.generate(num_blocks=1200)


@pytest.fixture(scope="module")
def usc_study():
    return usc.generate(num_blocks=500)


def test_ext_controlplane_fenrir(broot_study, benchmark):
    scenario = broot_study.service.scenario
    rng = random.Random(7)
    vantages = rng.sample(sorted(scenario.topology.nodes), 300)
    collector = RouteCollector(scenario, vantages)

    series = origin_series(collector, broot_study.sample_times)
    report = Fenrir().run(series)

    # Oracle agreement at one instant.
    when = broot_study.sample_times[10]
    outcome = scenario.outcome_at(when)
    vector = series[10]
    agreement = sum(
        1
        for asn in vantages
        if vector.state_of(f"as{asn}") == outcome.label_of(asn)
    ) / len(vantages)

    within = report.modes.phi_within(0)
    lines = [
        "Extension: Fenrir on control-plane collector data (B-Root timeline)",
        "",
        report.mode_timeline(),
        "",
        f"vantage/oracle agreement: {agreement:.1%}",
        f"modes found: {len(report.modes)} (data-plane Verfploeter run finds ~6-8)",
        f"within-mode Φ of mode (i): [{within[0]:.2f}, {within[1]:.2f}] "
        "(≈1: no measurement noise on the control plane)",
    ]
    emit("ext_controlplane", "\n".join(lines))

    assert agreement == 1.0
    assert 4 <= len(report.modes) <= 10
    assert within[0] > 0.95

    benchmark(origin_series, collector, broot_study.sample_times[:40])


def test_ext_hegemony_shift(usc_study, benchmark):
    scenario = usc_study.enterprise.scenario
    stubs = [
        asn
        for asn, node in scenario.topology.nodes.items()
        if node.tier == 3 and asn != usc.USC
    ]
    vantages = random.Random(3).sample(stubs, 150)
    collector = RouteCollector(scenario, vantages)

    before = collector.paths_at(datetime(2024, 10, 1))
    after = collector.paths_at(datetime(2025, 2, 15))
    hegemony_before = hegemony_scores(before)
    hegemony_after = hegemony_scores(after)

    names = {usc.ARN_A: "ARN-A", usc.ARN_B: "ARN-B", usc.ANN: "ANN",
             usc.NTT: "NTT", usc.HE: "HE"}
    lines = [
        "Extension: AS hegemony toward the enterprise, before/after 2025-01-16",
        "",
        f"{'AS':>8} {'before':>8} {'after':>8}",
    ]
    for asn, name in names.items():
        lines.append(
            f"{name:>8} {hegemony_before.get(asn, 0.0):8.2f} "
            f"{hegemony_after.get(asn, 0.0):8.2f}"
        )
    emit("ext_hegemony", "\n".join(lines))

    assert hegemony_before.get(usc.ARN_A, 0) > 0.8  # everyone relied on ARN-A
    assert hegemony_after.get(usc.ARN_A, 0) < 0.3
    assert hegemony_after.get(usc.NTT, 0) > hegemony_before.get(usc.NTT, 0)
    assert hegemony_after.get(usc.HE, 0) > hegemony_before.get(usc.HE, 0)
    # ARN-B remains the first hop for everything: hegemony stays high.
    assert hegemony_after.get(usc.ARN_B, 0) > 0.8

    benchmark(hegemony_scores, before)


def test_ext_baltic_cable_cut(benchmark):
    """The paper's motivating example, detected and quantified.

    A country reached through two submarine cables loses one on
    2024-11-18 (the real Baltic cuts). Fenrir's country-ingress vectors
    flag the event; transit diversity collapses to a single point of
    failure; and path-length latency shows the detour cost for the
    networks that moved.
    """
    study = baltic.generate()
    report = Fenrir().run(study.series)

    from datetime import datetime

    before_when = datetime(2024, 11, 10)
    after_when = datetime(2024, 11, 25)
    before = country_crossings(
        study.collector.paths_at(before_when), study.country_ases
    )
    after = country_crossings(
        study.collector.paths_at(after_when), study.country_ases
    )
    diversity_before = transit_diversity(before)
    diversity_after = transit_diversity(after)

    # Latency detour: per-vantage path RTT before vs after, for the
    # vantages that changed transit.
    moved = {
        crossing.vantage_asn
        for crossing in before
        if crossing.outside_asn == baltic.CABLE_WEST
    }
    paths_before = study.collector.paths_at(before_when)
    paths_after = study.collector.paths_at(after_when)
    deltas = [
        path_rtt_ms(study.topology, paths_after[asn])
        - path_rtt_ms(study.topology, paths_before[asn])
        for asn in moved
        if asn in paths_before and asn in paths_after
    ]
    median_delta = float(np.median(deltas))

    lines = [
        "Extension: the Baltic cable-cut scenario (paper §1/§4.1 motivation)",
        "",
        report.mode_timeline(),
        "",
        f"events detected: {len(report.events)} (cut on {baltic.CABLE_CUT:%Y-%m-%d})",
        f"transit diversity: {diversity_before:.2f} -> {diversity_after:.2f} "
        "(single point of failure after the cut)",
        f"median path-RTT change for rerouted networks: +{median_delta:.1f} ms "
        "(the detour the paper's example saw as European latency shifts)",
    ]
    emit("ext_baltic", "\n".join(lines))

    assert len(report.events) == 1
    assert report.events[0].start.date() <= baltic.CABLE_CUT.date()
    assert diversity_before > 1.3
    assert diversity_after == pytest.approx(1.0)
    assert median_delta > 0  # the detour costs latency

    benchmark(study.collector.paths_at, before_when)
