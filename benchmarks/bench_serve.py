"""Load benchmark for the ``repro.serve`` monitoring service.

Not a paper table — this documents the serving envelope of the durable
streaming subsystem (docs/serving.md, docs/performance.md) on one
laptop-class machine:

* **Ingest throughput sweep** over wire batch sizes {1, 16, 128}: N
  concurrent clients, each feeding its own monitor (a monitor's stream
  is totally ordered in time, so it has exactly one writer) over real
  TCP. Batch 1 is the PR 2 single-record baseline (~2.5k acked
  rounds/s); batch 128 must beat it ≥10× (full mode) and must stay
  above a generous absolute floor (quick mode, CI smoke).
* **Mode-matching micro-benchmark** at {1, 16, 256} known modes:
  the vectorized ``_match_mode`` (one ``phi_one_to_many`` pass over
  the exemplar matrix) vs the retained scalar per-exemplar loop, with
  oracle equivalence asserted on every probe. ≥5× at 256 modes.
* **Cold-start replay**: wall time for a restarted server to rebuild
  every monitor's exact mode state from snapshot + deltas + journal.
* **Shard sweep** (``--shards N``): the same batch-128 fleet against
  ``repro serve --shards {1,2,N}`` clusters vs the single-process
  server. On a box with >= 4 cores the 4-shard tier must ingest >= 3x
  the single process (each shard is its own process and GIL); on
  fewer cores that is physically impossible — everything timeshares
  one core — so the assertion degrades to an overhead floor: the
  sharded tier must retain a documented fraction of single-process
  throughput. The JSON records ``cpus`` and which gate applied.
* **Concurrency sweep** (the async-client load generator): C
  concurrent monitor streams from ONE process through
  :class:`~repro.serve.AsyncServeClient` — each stream serial within
  itself (a monitor's timestamps are ordered), so C single-record
  requests are in flight at any instant over a handful of pipelined
  sockets — vs the blocking :class:`~repro.serve.ServeClient` feeding
  the same rounds one request-response at a time. Records p50/p99
  request latency under load. Loopback is compute-bound (the server's
  per-request work dwarfs a ~30 us RTT), so here the sweep asserts
  only a bounded-overhead floor; the **WAN profile** re-runs blocking
  vs async (C=256) through an in-process delay relay adding a fixed
  2 ms round trip — the regime the async client exists for — where
  pipelining must clear >= 3x the blocking loop.
* **Router vs direct** (with ``--shards N``): the same async load with
  ``ring_aware=True`` (topology fetched once, monitor commands sent
  straight to the owning shard) vs routed through the proxy hop. The
  direct path must not lose to the routed one.

Human-readable results go to ``benchmarks/out/serve.txt``; the
machine-readable trajectory goes to ``BENCH_serve.json`` at the repo
root (uploaded as a CI artifact).

Run directly: ``PYTHONPATH=src python benchmarks/bench_serve.py``
(``--quick`` for the CI smoke variant, ``--shards 4`` to add the
cluster sweep).
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timedelta

import numpy as np

from repro.core.online import OnlineFenrir
from repro.core.vector import RoutingVector
from repro.serve import AsyncServeClient, ServeClient, protocol

from common import REPO_ROOT, emit, write_bench_json

NUM_CLIENTS = 4  # one monitor each
ROUNDS_PER_CLIENT = 500
SWEEP_REPEATS = 3  # best-of; the box is shared, single runs are noisy
NUM_NETWORKS = 50
BATCH_SIZES = (1, 16, 128)
MODE_COUNTS = (1, 16, 256)
MATCH_PROBES = 200

# Full-mode targets (the tentpole's acceptance criteria).
PR2_BASELINE = 2500.0  # acked rounds/s, single-record path before this PR
MIN_BATCH128_SPEEDUP = 10.0  # vs PR2_BASELINE
MIN_MATCH_SPEEDUP_256 = 5.0  # vectorized vs scalar loop at 256 modes
MAX_OBS_OVERHEAD = 0.03  # span-enabled ingest may cost at most 3%

# Quick-mode (CI smoke) floor: generous and flake-proof. The PR 2
# single-record path already sustained ~2.5k rounds/s on laptop-class
# hardware; batched ingest on a CI runner must clear that baseline.
QUICK_MIN_THROUGHPUT_128 = 2500.0

# Shard-sweep targets. The >= 3x claim needs real parallel hardware:
# each shard is its own process, so with >= 4 cores four shards ingest
# on four GILs. On a 1-core box the same processes timeshare one core
# and the only honest assertion is bounded overhead: the tier (router
# hop + supervisor + consistent-hash fan-out) must keep at least this
# fraction of single-process throughput.
MIN_SHARD4_SPEEDUP = 3.0
SINGLE_CORE_RETENTION = 0.35

# Concurrency-sweep targets, split by regime. On loopback the RTT is
# tens of microseconds and the server's per-request compute is the
# cap; a pipelined client cannot multiply a compute-bound server, so
# the loopback sweep records throughput and tail latency and asserts
# only that multiplexing overhead stays bounded (the async generator
# must keep a documented fraction of the blocking loop's rate). The
# multiplexing claim itself — >= 3x the blocking client at C >= 256 —
# is about *hiding request latency*, so it is asserted where latency
# exists: the WAN profile replays the same workload through an
# in-process delay relay adding a fixed round trip, which pins the
# blocking client to ~1/RTT while the pipelined client keeps the
# server busy. Being latency-bound, that gate is cpu-count-independent
# and flake-proof.
CONCURRENCY_LEVELS = (1, 64, 256)
FULL_CONCURRENCY_LEVELS = (1, 64, 256, 1024)
MIN_ASYNC_SPEEDUP = 3.0  # async at C >= 256 vs blocking, WAN profile
LOOPBACK_ASYNC_FLOOR = 0.75  # async at C >= 256 vs blocking, loopback
WAN_RTT_MS = 2.0  # LAN-adjacent; real vantage points see far worse
BLOCKING_STREAMS = 4  # monitors in the blocking baseline fleet

# Router-vs-direct target: skipping the proxy hop must never lose.
# "Beats" on quiet hardware reads as >= 1.1x; the asserted floor is
# parity so one noisy CI run cannot flake the gate.
MIN_DIRECT_SPEEDUP = 1.0
DIRECT_STREAMS = 16

T0 = datetime(2025, 1, 1)
SITES = ["LAX", "AMS", "FRA", "NRT", "GRU"]


def start_server(data_dir: str, snapshot_every: int = 1000, obs: bool = False):
    """The server under test, in its own process (its own GIL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # ``obs`` turns tracing spans on in the server process; the metrics
    # registry itself is always live. The overhead check below compares
    # the two, holding everything else constant.
    env["REPRO_OBS"] = "1" if obs else "0"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            data_dir,
            "--snapshot-every",
            str(snapshot_every),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    line = process.stdout.readline().decode()
    assert line.startswith("listening on "), f"unexpected readiness: {line!r}"
    host, _, port = line.split()[-1].rpartition(":")
    return process, host, int(port)


def stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    process.wait(timeout=30)


def start_cluster(data_dir: str, num_shards: int):
    """A sharded tier under test: supervisor + N shards + router."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_OBS"] = "0"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--shards",
            str(num_shards),
            "--port",
            "0",
            "--data-dir",
            data_dir,
            "--exit-on-stdin-close",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    while True:
        line = process.stdout.readline().decode()
        assert line, "cluster exited during startup"
        if line.startswith("listening on "):
            break
    host, _, port = line.split()[-1].rpartition(":")
    return process, host, int(port)


def stop_cluster(process: subprocess.Popen) -> None:
    # Closing stdin retires the supervisor and, through the stdin-EOF
    # pipes it holds, every shard — even if it were SIGKILLed instead.
    process.stdin.close()
    process.wait(timeout=30)


def run_cluster_throughput(
    num_shards: int, rounds_per_client: int, num_clients: int, batch_size: int = 128
) -> dict:
    """One fresh cluster + fleet run at a given shard count.

    ``num_shards == 0`` measures the single-process server with the
    identical workload — the sweep's baseline.
    """
    data_dir = tempfile.mkdtemp(prefix=f"bench_serve_s{num_shards}_")
    if num_shards == 0:
        server, host, port = start_server(data_dir)
    else:
        server, host, port = start_cluster(data_dir, num_shards)
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    with ServeClient(host=host, port=port) as admin:
        for client_index in range(num_clients):
            admin.create(f"svc{client_index}", networks)

    barrier = multiprocessing.Barrier(num_clients + 1)
    workers = [
        multiprocessing.Process(
            target=feeder,
            args=(host, port, index, rounds_per_client, batch_size, barrier),
        )
        for index in range(num_clients)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    with ServeClient(host=host, port=port) as admin:
        stats = admin.stats()
    if num_shards == 0:
        stop_server(server)
        shard_load = None
    else:
        stop_cluster(server)
        shard_load = {
            shard: status.get("monitors")
            for shard, status in stats["cluster"]["shard_status"].items()
        }
    failed = [worker.exitcode for worker in workers if worker.exitcode != 0]
    assert not failed, f"feeders failed at {num_shards} shards: {failed}"
    total_rounds = num_clients * rounds_per_client
    # The router sums shard counters; acked == applied across the tier.
    assert stats["counters"]["rounds_ingested"] == total_rounds

    return {
        "shards": num_shards,
        "rounds": total_rounds,
        "wall_seconds": round(elapsed, 4),
        "throughput": round(total_rounds / elapsed, 1),
        "monitors_per_shard": shard_load,
    }


def monitor_rounds(monitor_index: int, count: int):
    """One monitor's deterministic stream: stable with periodic shifts."""
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    for round_index in range(count):
        epoch = round_index // 97  # a routing shift every ~97 rounds
        states = {
            network: SITES[(monitor_index + epoch + (i % 7)) % len(SITES)]
            for i, network in enumerate(networks)
        }
        yield states, T0 + timedelta(seconds=round_index)


def feeder(
    host: str,
    port: int,
    client_index: int,
    rounds_per_client: int,
    batch_size: int,
    barrier,
) -> None:
    """One monitor's full stream, as a thin load generator.

    Runs in its own process and pre-encodes every request frame (the
    exact bytes :class:`ServeClient` would send) before the stream
    starts, so the measurement is the server's ingest capacity, not
    the generator's JSON serialization speed — this whole benchmark
    shares one machine with the server.
    """
    monitor = f"svc{client_index}"
    stream = list(monitor_rounds(client_index, rounds_per_client))
    frames = []
    if batch_size == 1:
        # The PR 2 baseline: one `ingest` request per round.
        for request_id, (states, when) in enumerate(stream):
            frames.append(
                protocol.encode_frame(
                    {
                        "cmd": "ingest",
                        "id": request_id,
                        "monitor": monitor,
                        "states": states,
                        "time": when.isoformat(),
                    }
                )
            )
    else:
        for request_id, start in enumerate(range(0, len(stream), batch_size)):
            rounds = [
                {"time": when.isoformat(), "states": states}
                for states, when in stream[start : start + batch_size]
            ]
            frames.append(
                protocol.encode_frame(
                    {
                        "cmd": "ingest_batch",
                        "id": request_id,
                        "monitor": monitor,
                        "rounds": rounds,
                    }
                )
            )
    with socket.create_connection((host, port)) as sock:
        barrier.wait()  # every feeder encoded its frames; start the clock
        for frame in frames:
            sock.sendall(frame)
            response = protocol.recv_frame(sock)
            assert response["ok"], response


def run_throughput(
    batch_size: int, rounds_per_client: int, num_clients: int, obs: bool = False
) -> dict:
    """One fresh server + fleet run; returns throughput and replay data."""
    data_dir = tempfile.mkdtemp(prefix=f"bench_serve_b{batch_size}_")
    server, host, port = start_server(data_dir, obs=obs)
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    with ServeClient(host=host, port=port) as admin:
        for client_index in range(num_clients):
            admin.create(f"svc{client_index}", networks)

    barrier = multiprocessing.Barrier(num_clients + 1)
    workers = [
        multiprocessing.Process(
            target=feeder,
            args=(host, port, index, rounds_per_client, batch_size, barrier),
        )
        for index in range(num_clients)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()  # released once every feeder has its frames encoded
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    with ServeClient(host=host, port=port) as admin:
        stats = admin.stats()
    stop_server(server)
    failed = [worker.exitcode for worker in workers if worker.exitcode != 0]
    assert not failed, f"feeder processes failed at batch {batch_size}: {failed}"

    total_rounds = num_clients * rounds_per_client
    assert stats["counters"]["rounds_ingested"] == total_rounds

    # Cold start: a fresh process reopens the same data dir.
    restart_started = time.perf_counter()
    restarted, host2, port2 = start_server(data_dir, obs=obs)
    cold_start = time.perf_counter() - restart_started
    with ServeClient(host=host2, port=port2) as admin:
        after = admin.stats()
        recovered_rounds = sum(
            doc["rounds"] for doc in after["monitors"].values()
        )
        replay_seconds = sum(
            doc["replay"]["elapsed_seconds"]
            for doc in after["monitors"].values()
            if doc["replay"]
        )
    stop_server(restarted)
    assert recovered_rounds == total_rounds, "replay lost acknowledged rounds"

    return {
        "batch_size": batch_size,
        "rounds": total_rounds,
        "wall_seconds": round(elapsed, 4),
        "throughput": round(total_rounds / elapsed, 1),
        "server_ingest_p50_ms": stats["latency"]
        .get("ingest", {})
        .get("p50_ms"),
        "server_batch_p50_ms": stats["latency"]
        .get("ingest_batch", {})
        .get("p50_ms"),
        "cold_start_seconds": round(cold_start, 4),
        "replay_seconds": round(replay_seconds, 4),
    }


def drive_async_load(
    host: str,
    port: int,
    concurrency: int,
    rounds_per_stream: int,
    ring_aware: bool = False,
) -> dict:
    """C concurrent monitor streams through one :class:`AsyncServeClient`.

    Each stream is serial within itself — a monitor's timestamps must
    arrive in order — so exactly ``concurrency`` single-record ingests
    are in flight at any moment, multiplexed by correlation id over a
    handful of pipelined sockets. Monitor creation happens before the
    clock starts; every request's send-to-response latency is recorded
    for the percentile columns.
    """
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    connections = min(8, max(2, concurrency // 64))
    inflight = max(32, -(-concurrency // connections))
    latencies: list[float] = []

    async def drive() -> float:
        async with AsyncServeClient(
            host,
            port,
            timeout=120.0,
            max_connections=connections,
            max_inflight=inflight,
            ring_aware=ring_aware,
        ) as client:
            await asyncio.gather(
                *(
                    client.create(f"load{index}", networks)
                    for index in range(concurrency)
                )
            )

            async def stream(index: int) -> None:
                monitor = f"load{index}"
                for states, when in monitor_rounds(index, rounds_per_stream):
                    started = time.perf_counter()
                    await client.ingest(monitor, states, when)
                    latencies.append(time.perf_counter() - started)

            started = time.perf_counter()
            await asyncio.gather(
                *(stream(index) for index in range(concurrency))
            )
            return time.perf_counter() - started

    elapsed = asyncio.run(drive())
    total_rounds = concurrency * rounds_per_stream
    samples = np.asarray(latencies) * 1000.0
    return {
        "concurrency": concurrency,
        "rounds": total_rounds,
        "wall_seconds": round(elapsed, 4),
        "throughput": round(total_rounds / elapsed, 1),
        "p50_ms": round(float(np.percentile(samples, 50)), 3),
        "p99_ms": round(float(np.percentile(samples, 99)), 3),
    }


def run_async_level(concurrency: int, rounds_per_stream: int) -> dict:
    """One fresh single-process server under the async load generator."""
    data_dir = tempfile.mkdtemp(prefix=f"bench_serve_c{concurrency}_")
    server, host, port = start_server(data_dir)
    try:
        entry = drive_async_load(host, port, concurrency, rounds_per_stream)
        with ServeClient(host=host, port=port) as admin:
            stats = admin.stats()
    finally:
        stop_server(server)
    assert stats["counters"]["rounds_ingested"] == entry["rounds"]
    return entry


def run_blocking_load(rounds_total: int) -> dict:
    """The baseline the sweep is measured against: one blocking client.

    Same single-record ``ingest`` command, same monitor streams — but
    one request in flight, ever. Every round pays a full round trip
    (send, server turnaround, receive) before the next may start, which
    is exactly the stall the pipelined client exists to remove.
    """
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    rounds_per_stream = rounds_total // BLOCKING_STREAMS
    data_dir = tempfile.mkdtemp(prefix="bench_serve_blocking_")
    server, host, port = start_server(data_dir)
    latencies: list[float] = []
    try:
        with ServeClient(host=host, port=port, timeout=120.0) as client:
            for index in range(BLOCKING_STREAMS):
                client.create(f"load{index}", networks)
            started = time.perf_counter()
            for index in range(BLOCKING_STREAMS):
                monitor = f"load{index}"
                for states, when in monitor_rounds(index, rounds_per_stream):
                    sent = time.perf_counter()
                    client.ingest(monitor, states, when)
                    latencies.append(time.perf_counter() - sent)
            elapsed = time.perf_counter() - started
            stats = client.stats()
    finally:
        stop_server(server)
    total_rounds = BLOCKING_STREAMS * rounds_per_stream
    assert stats["counters"]["rounds_ingested"] == total_rounds
    samples = np.asarray(latencies) * 1000.0
    return {
        "concurrency": 1,
        "rounds": total_rounds,
        "wall_seconds": round(elapsed, 4),
        "throughput": round(total_rounds / elapsed, 1),
        "p50_ms": round(float(np.percentile(samples, 50)), 3),
        "p99_ms": round(float(np.percentile(samples, 99)), 3),
    }


class DelayProxy:
    """A TCP relay adding a fixed one-way delay: a WAN in a thread.

    Each chunk is delivered in arrival order at ``arrival + delay``;
    the delays *overlap* (a queue per direction, one deliverer), so the
    relay adds latency without throttling throughput — exactly what a
    long pipe does, and exactly the asymmetry the benchmark needs: the
    blocking client pays the full round trip per request, the
    pipelined client keeps frames in the pipe.
    """

    def __init__(self, target_host: str, target_port: int, delay: float) -> None:
        self.target = (target_host, target_port)
        self.delay = delay
        self.port = 0
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10)
        assert self.port, "delay proxy failed to bind"

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)
        server = self._loop.run_until_complete(
            asyncio.start_server(self._handle, "127.0.0.1", 0)
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            server.close()
            self._loop.run_until_complete(server.wait_closed())
            # Relay tasks for connections still open at shutdown: cancel
            # and reap them before closing the loop, or their teardown
            # callbacks fire into a closed loop and spray tracebacks.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
            self._loop.close()

    async def _pipe(self, reader, writer) -> None:
        queue: asyncio.Queue = asyncio.Queue()

        async def deliver() -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                deliver_at, chunk = item
                remaining = deliver_at - self._loop.time()
                if remaining > 0:
                    await asyncio.sleep(remaining)
                writer.write(chunk)
                await writer.drain()

        delivery = asyncio.ensure_future(deliver())
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                queue.put_nowait((self._loop.time() + self.delay, chunk))
        except (ConnectionError, OSError):
            pass
        finally:
            queue.put_nowait(None)
            try:
                await delivery
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            writer.close()

    async def _handle(self, client_reader, client_writer) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self.target
            )
        except OSError:
            client_writer.close()
            return
        try:
            await asyncio.gather(
                self._pipe(client_reader, upstream_writer),
                self._pipe(upstream_reader, client_writer),
            )
        except asyncio.CancelledError:
            # Shutdown reaps handler tasks; asyncio's own done-callback
            # then calls task.exception(), which re-raises a propagated
            # cancellation as a spurious "Exception in callback". The
            # relay has nothing to clean up, so absorb it.
            pass

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


def run_wan_profile(
    concurrency: int, rounds_total: int, blocking_rounds: int
) -> dict:
    """Blocking vs pipelined through a fixed simulated round trip.

    One server, one :class:`DelayProxy` in front of it. The blocking
    client's ceiling is ~1/RTT regardless of hardware; the pipelined
    client's is the server itself. The resulting ratio is what the
    async client buys operators feeding monitors from real vantage
    points, where RTTs are milliseconds, not loopback microseconds.
    """
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    data_dir = tempfile.mkdtemp(prefix="bench_serve_wan_")
    server, host, port = start_server(data_dir)
    proxy = DelayProxy(host, port, WAN_RTT_MS / 2000.0)
    try:
        blocking_latencies: list[float] = []
        per_stream = blocking_rounds // 2
        with ServeClient(
            host="127.0.0.1", port=proxy.port, timeout=120.0
        ) as client:
            for index in range(2):
                client.create(f"wan{index}", networks)
            started = time.perf_counter()
            for index in range(2):
                for states, when in monitor_rounds(index, per_stream):
                    sent = time.perf_counter()
                    client.ingest(f"wan{index}", states, when)
                    blocking_latencies.append(time.perf_counter() - sent)
            blocking_elapsed = time.perf_counter() - started
        async_entry = drive_async_load(
            "127.0.0.1",
            proxy.port,
            concurrency,
            max(2, rounds_total // concurrency),
        )
    finally:
        proxy.close()
        stop_server(server)
    blocking_total = 2 * per_stream
    samples = np.asarray(blocking_latencies) * 1000.0
    blocking_entry = {
        "concurrency": 1,
        "rounds": blocking_total,
        "wall_seconds": round(blocking_elapsed, 4),
        "throughput": round(blocking_total / blocking_elapsed, 1),
        "p50_ms": round(float(np.percentile(samples, 50)), 3),
        "p99_ms": round(float(np.percentile(samples, 99)), 3),
    }
    return {
        "rtt_ms": WAN_RTT_MS,
        "blocking": blocking_entry,
        "async": async_entry,
        "speedup": round(
            async_entry["throughput"] / blocking_entry["throughput"], 2
        ),
    }


def run_router_vs_direct(
    num_shards: int, rounds_per_stream: int, repeats: int
) -> dict:
    """The same async load, routed through the proxy vs ring-aware.

    Fresh cluster per run; best-of-``repeats`` per mode. The direct
    client fetches ``topology`` once, computes ownership locally, and
    dials each shard itself — the delta is the router's read-parse-
    forward-reply hop on every request.
    """
    results: dict = {}
    for label, ring_aware in (("routed", False), ("direct", True)):
        best = None
        for _ in range(repeats):
            data_dir = tempfile.mkdtemp(prefix=f"bench_serve_{label}_")
            cluster, host, port = start_cluster(data_dir, num_shards)
            try:
                entry = drive_async_load(
                    host,
                    port,
                    DIRECT_STREAMS,
                    rounds_per_stream,
                    ring_aware=ring_aware,
                )
                with ServeClient(host=host, port=port) as admin:
                    stats = admin.stats()
            finally:
                stop_cluster(cluster)
            assert stats["counters"]["rounds_ingested"] == entry["rounds"]
            if best is None or entry["throughput"] > best["throughput"]:
                best = entry
        results[label] = best
    results["direct_speedup"] = round(
        results["direct"]["throughput"] / results["routed"]["throughput"], 2
    )
    return results


def run_match_bench(num_modes: int, probes: int = MATCH_PROBES) -> dict:
    """Vectorized vs scalar ``_match_mode`` at a given mode count."""
    rng = np.random.default_rng(num_modes)
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    tracker = OnlineFenrir(networks=networks, mode_threshold=0.99)
    # Plant num_modes distinct exemplars directly (ingesting would
    # deduplicate them through matching).
    for mode in range(num_modes):
        states = {
            n: f"site{(mode + i) % (num_modes + 3)}"
            for i, n in enumerate(networks)
        }
        tracker._append_exemplar(
            RoutingVector.from_mapping(
                states, catalog=tracker.catalog, networks=tracker.networks
            )
        )
    vectors = [
        RoutingVector.from_mapping(
            {
                n: f"site{int(rng.integers(0, num_modes + 3))}"
                for n in networks
            },
            catalog=tracker.catalog,
            networks=tracker.networks,
        )
        for _ in range(probes)
    ]

    started = time.perf_counter()
    vectorized = [tracker._match_mode(v) for v in vectors]
    t_vec = time.perf_counter() - started
    started = time.perf_counter()
    scalar = [tracker._match_mode_scalar(v) for v in vectors]
    t_scalar = time.perf_counter() - started
    # Oracle equivalence on every probe: unweighted sums are
    # integer-valued, so vectorized and scalar agree bit-for-bit.
    assert vectorized == scalar, f"oracle mismatch at {num_modes} modes"
    return {
        "modes": num_modes,
        "probes": probes,
        "vectorized_us_per_match": round(t_vec / probes * 1e6, 2),
        "scalar_us_per_match": round(t_scalar / probes * 1e6, 2),
        "speedup": round(t_scalar / t_vec, 2),
    }


def run_shard_sweep(
    max_shards: int, rounds_per_client: int, num_clients: int, repeats: int
) -> list:
    """Best-of-N batch-128 runs at 0 (single-process), 1, 2, N shards."""
    shard_counts = sorted({0, 1, 2, max_shards})
    return [
        max(
            (
                run_cluster_throughput(
                    num_shards, rounds_per_client, num_clients
                )
                for _ in range(repeats)
            ),
            key=lambda entry: entry["throughput"],
        )
        for num_shards in shard_counts
    ]


def run(quick: bool = False, shards: int | None = None) -> dict:
    if quick:
        batch_sizes = (1, 128)
        rounds_per_client, num_clients, repeats = 250, 4, 1
    else:
        batch_sizes = BATCH_SIZES
        rounds_per_client, num_clients, repeats = (
            ROUNDS_PER_CLIENT,
            NUM_CLIENTS,
            SWEEP_REPEATS,
        )

    # Best-of-N per batch size: throughput benchmarks on a shared box
    # are noise-prone, and the *capacity* (what the acceptance target
    # is about) is the best sustained rate, not the noisiest one.
    sweep = [
        max(
            (
                run_throughput(batch_size, rounds_per_client, num_clients)
                for _ in range(repeats)
            ),
            key=lambda entry: entry["throughput"],
        )
        for batch_size in batch_sizes
    ]
    matches = [run_match_bench(num_modes) for num_modes in MODE_COUNTS]

    by_size = {entry["batch_size"]: entry for entry in sweep}
    baseline = by_size[1]["throughput"]
    batched = by_size[128]["throughput"]
    speedup_128 = batched / baseline

    # Observability overhead: the same batch-128 fleet run with tracing
    # spans enabled in the server (REPRO_OBS=1). The registry counters
    # and histograms are always on, so this isolates the cost of the
    # span machinery on the hot ingest path.
    obs_entry = max(
        (
            run_throughput(128, rounds_per_client, num_clients, obs=True)
            for _ in range(repeats)
        ),
        key=lambda entry: entry["throughput"],
    )
    obs_throughput = obs_entry["throughput"]
    obs_overhead = 1.0 - obs_throughput / batched

    shard_sweep = (
        run_shard_sweep(shards, rounds_per_client, num_clients, repeats)
        if shards is not None
        else None
    )
    cpus = os.cpu_count() or 1

    # The async-client load generator vs the blocking round-trip loop,
    # same single-record command, same streams, one process each way.
    concurrency_levels = CONCURRENCY_LEVELS if quick else FULL_CONCURRENCY_LEVELS
    load_rounds = 2048 if quick else 4096
    blocking_entry = max(
        (run_blocking_load(load_rounds) for _ in range(repeats)),
        key=lambda entry: entry["throughput"],
    )
    async_sweep = [
        max(
            (
                run_async_level(
                    concurrency, max(2, load_rounds // concurrency)
                )
                for _ in range(repeats)
            ),
            key=lambda entry: entry["throughput"],
        )
        for concurrency in concurrency_levels
    ]
    peak = max(
        (entry for entry in async_sweep if entry["concurrency"] >= 256),
        key=lambda entry: entry["throughput"],
    )
    loopback_ratio = peak["throughput"] / blocking_entry["throughput"]
    wan = run_wan_profile(
        256, load_rounds, blocking_rounds=192 if quick else 384
    )

    router_vs_direct = (
        run_router_vs_direct(shards, 128 if not quick else 64, repeats)
        if shards is not None and shards >= 2
        else None
    )

    lines = [
        f"mode={'quick' if quick else 'full'} clients={num_clients} "
        f"monitors={num_clients} networks={NUM_NETWORKS} "
        f"rounds/client={rounds_per_client}",
        "",
        "ingest throughput (acked rounds/s, fleet total):",
    ]
    for entry in sweep:
        lines.append(
            f"  batch {entry['batch_size']:>3}: {entry['throughput']:10.0f}/s  "
            f"wall {entry['wall_seconds']:7.2f} s   "
            f"replay {entry['replay_seconds']:6.3f} s "
            f"(cold start {entry['cold_start_seconds']:.2f} s)"
        )
    lines += [
        f"  batch-128 vs in-run batch-1: {speedup_128:.1f}x; "
        f"vs PR 2 baseline ({PR2_BASELINE:.0f}/s): "
        f"{batched / PR2_BASELINE:.1f}x",
        "",
        "observability overhead (batch 128, REPRO_OBS=1 in the server):",
        f"  {obs_throughput:10.0f}/s with spans vs {batched:10.0f}/s without "
        f"({obs_overhead:+.1%} overhead)",
        "",
        f"mode matching, vectorized vs scalar loop ({MATCH_PROBES} probes):",
    ]
    for entry in matches:
        lines.append(
            f"  modes {entry['modes']:>3}: "
            f"{entry['vectorized_us_per_match']:8.1f} us/match vectorized, "
            f"{entry['scalar_us_per_match']:8.1f} us scalar "
            f"({entry['speedup']:.1f}x)"
        )
    if shard_sweep is not None:
        single = shard_sweep[0]["throughput"]  # shards == 0 entry
        lines += [
            "",
            f"shard sweep (batch 128, {cpus} cpu(s)):",
        ]
        for entry in shard_sweep:
            label = (
                "single-process"
                if entry["shards"] == 0
                else f"{entry['shards']} shard(s)"
            )
            lines.append(
                f"  {label:>15}: {entry['throughput']:10.0f}/s  "
                f"({entry['throughput'] / single:.2f}x single-process)"
            )
    lines += [
        "",
        "async load generator (single-record ingest, one client process):",
        f"  {'blocking':>12}: {blocking_entry['throughput']:10.0f}/s  "
        f"p50 {blocking_entry['p50_ms']:7.2f} ms  "
        f"p99 {blocking_entry['p99_ms']:7.2f} ms",
    ]
    for entry in async_sweep:
        lines.append(
            f"  async C={entry['concurrency']:>4}: "
            f"{entry['throughput']:10.0f}/s  "
            f"p50 {entry['p50_ms']:7.2f} ms  p99 {entry['p99_ms']:7.2f} ms"
        )
    lines += [
        f"  async (C={peak['concurrency']}) vs blocking on loopback: "
        f"{loopback_ratio:.2f}x (compute-bound; floor "
        f"{LOOPBACK_ASYNC_FLOOR:.2f}x)",
        "",
        f"WAN profile ({WAN_RTT_MS:.0f} ms simulated RTT):",
        f"  {'blocking':>12}: {wan['blocking']['throughput']:10.0f}/s  "
        f"p50 {wan['blocking']['p50_ms']:7.2f} ms  "
        f"p99 {wan['blocking']['p99_ms']:7.2f} ms",
        f"  async C= 256: {wan['async']['throughput']:10.0f}/s  "
        f"p50 {wan['async']['p50_ms']:7.2f} ms  "
        f"p99 {wan['async']['p99_ms']:7.2f} ms  "
        f"({wan['speedup']:.1f}x blocking)",
    ]
    if router_vs_direct is not None:
        routed = router_vs_direct["routed"]
        direct = router_vs_direct["direct"]
        lines += [
            "",
            f"router vs ring-aware direct ({DIRECT_STREAMS} streams, "
            f"{shards} shards):",
            f"  {'routed':>12}: {routed['throughput']:10.0f}/s  "
            f"p99 {routed['p99_ms']:7.2f} ms",
            f"  {'direct':>12}: {direct['throughput']:10.0f}/s  "
            f"p99 {direct['p99_ms']:7.2f} ms  "
            f"({router_vs_direct['direct_speedup']:.2f}x routed)",
        ]
    emit("serve", "\n".join(lines))

    metrics = {
        "mode": "quick" if quick else "full",
        "clients": num_clients,
        "networks": NUM_NETWORKS,
        "rounds_per_client": rounds_per_client,
        "throughput_by_batch": {
            str(entry["batch_size"]): entry["throughput"] for entry in sweep
        },
        "batch128_speedup": round(speedup_128, 2),
        "batch128_vs_pr2_baseline": round(batched / PR2_BASELINE, 2),
        "obs_throughput_128": obs_throughput,
        "obs_overhead_fraction": round(obs_overhead, 4),
        "sweep": sweep,
        "match_bench": matches,
        "cpus": cpus,
        "blocking_load": blocking_entry,
        "async_load": async_sweep,
        "throughput_by_concurrency": {
            "blocking": blocking_entry["throughput"],
            **{
                f"async_{entry['concurrency']}": entry["throughput"]
                for entry in async_sweep
            },
        },
        "latency_p99_ms_by_concurrency": {
            "blocking": blocking_entry["p99_ms"],
            **{
                f"async_{entry['concurrency']}": entry["p99_ms"]
                for entry in async_sweep
            },
        },
        "async_loopback_ratio": round(loopback_ratio, 2),
        "wan_profile": wan,
        "async_speedup": wan["speedup"],
    }
    if router_vs_direct is not None:
        metrics["router_vs_direct"] = router_vs_direct
        metrics["throughput_router_vs_direct"] = {
            "routed": router_vs_direct["routed"]["throughput"],
            "direct": router_vs_direct["direct"]["throughput"],
        }
    if shard_sweep is not None:
        single = shard_sweep[0]["throughput"]
        clustered = next(
            entry["throughput"]
            for entry in shard_sweep
            if entry["shards"] == shards
        )
        shard_speedup = clustered / single
        gate = (
            "min_shard4_speedup"
            if cpus >= 4
            else "single_core_retention"
        )
        metrics.update(
            {
                "cpus": cpus,
                "shard_sweep": shard_sweep,
                "throughput_by_shards": {
                    str(entry["shards"]): entry["throughput"]
                    for entry in shard_sweep
                },
                "shard_speedup": round(shard_speedup, 2),
                "shard_gate": gate,
            }
        )
    write_bench_json("serve", metrics)

    match_256 = next(m for m in matches if m["modes"] == 256)
    if quick:
        # CI smoke: a single generous absolute floor, immune to runner
        # noise in the batch-1 baseline.
        assert batched >= QUICK_MIN_THROUGHPUT_128, (
            f"batch-128 throughput {batched:.0f}/s below the "
            f"{QUICK_MIN_THROUGHPUT_128:.0f}/s floor"
        )
        # Obs-enabled ingest must clear the same absolute floor. The
        # strict <3% relative bound is asserted in full mode only: a
        # single quick run on a shared CI box cannot resolve 3%.
        assert obs_throughput >= QUICK_MIN_THROUGHPUT_128, (
            f"obs-enabled batch-128 throughput {obs_throughput:.0f}/s "
            f"below the {QUICK_MIN_THROUGHPUT_128:.0f}/s floor"
        )
    else:
        # The acceptance target compares against the PR 2 single-record
        # baseline (~2.5k acked rounds/s); the in-run batch-1 number is
        # reported too, but it also benefits from this PR's kernel and
        # fast-path work, so it is not the "before" figure.
        assert batched >= MIN_BATCH128_SPEEDUP * PR2_BASELINE, (
            f"batch-128 throughput {batched:.0f}/s < "
            f"{MIN_BATCH128_SPEEDUP:.0f}x the PR 2 baseline "
            f"({PR2_BASELINE:.0f}/s)"
        )
        assert match_256["speedup"] >= MIN_MATCH_SPEEDUP_256, (
            f"match speedup at 256 modes {match_256['speedup']:.1f}x < "
            f"{MIN_MATCH_SPEEDUP_256:.0f}x"
        )
        assert obs_overhead <= MAX_OBS_OVERHEAD, (
            f"observability overhead {obs_overhead:.1%} exceeds the "
            f"{MAX_OBS_OVERHEAD:.0%} budget at batch 128"
        )
    if shard_sweep is not None:
        if cpus >= 4:
            assert shard_speedup >= MIN_SHARD4_SPEEDUP, (
                f"{shards}-shard throughput {clustered:.0f}/s is only "
                f"{shard_speedup:.2f}x single-process ({single:.0f}/s); "
                f"target {MIN_SHARD4_SPEEDUP:.0f}x on {cpus} cores"
            )
        else:
            # One core: no parallelism to win, so assert the tier's
            # overhead stays bounded instead (see module docstring).
            assert shard_speedup >= SINGLE_CORE_RETENTION, (
                f"{shards}-shard throughput {clustered:.0f}/s retains "
                f"only {shard_speedup:.2f}x of single-process "
                f"({single:.0f}/s); floor {SINGLE_CORE_RETENTION:.2f}x "
                f"on {cpus} cpu(s)"
            )
    # Loopback is compute-bound: the pipelined client cannot multiply
    # a server whose per-request work dwarfs the RTT, so the honest
    # loopback assertion is that multiplexing overhead stays bounded.
    assert loopback_ratio >= LOOPBACK_ASYNC_FLOOR, (
        f"async load at C={peak['concurrency']} "
        f"({peak['throughput']:.0f}/s) fell to {loopback_ratio:.2f}x the "
        f"blocking loop ({blocking_entry['throughput']:.0f}/s) on "
        f"loopback; floor {LOOPBACK_ASYNC_FLOOR:.2f}x"
    )
    # The multiplexing claim proper, asserted in the regime it is
    # about: with a real round trip in the pipe the blocking client is
    # RTT-bound and pipelining must win big. Latency-bound, so the
    # gate holds on any cpu count.
    assert wan["speedup"] >= MIN_ASYNC_SPEEDUP, (
        f"WAN-profile async throughput ({wan['async']['throughput']:.0f}/s) "
        f"is only {wan['speedup']:.2f}x the blocking client "
        f"({wan['blocking']['throughput']:.0f}/s) at "
        f"{WAN_RTT_MS:.0f} ms RTT; target {MIN_ASYNC_SPEEDUP:.0f}x"
    )
    if router_vs_direct is not None:
        assert router_vs_direct["direct_speedup"] >= MIN_DIRECT_SPEEDUP, (
            f"ring-aware direct ingest "
            f"({router_vs_direct['direct']['throughput']:.0f}/s) lost to "
            f"the routed path "
            f"({router_vs_direct['routed']['throughput']:.0f}/s); "
            f"floor {MIN_DIRECT_SPEEDUP:.2f}x"
        )
    return metrics


def test_serve_load() -> None:
    run(quick=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: smaller fleet, absolute floor only",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="add the cluster shard sweep up to N shards",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick, shards=arguments.shards)
