"""Load benchmark for the ``repro.serve`` monitoring service.

Not a paper table — this documents the serving envelope of the durable
streaming subsystem (docs/serving.md): N concurrent clients, each
feeding its own monitor (a monitor's stream is totally ordered in
time, so it has exactly one writer — the natural deployment shape),
over real TCP connections on one laptop-class machine.

Recorded in ``benchmarks/out/serve.txt``:

* sustained ingest throughput (acknowledged = journaled rounds/sec),
  required ≥ 1k/s;
* client-observed p50/p99 ingest latency and the server's own
  per-command percentiles from ``stats``;
* cold-start replay: time for a restarted server to rebuild every
  monitor's exact mode state from snapshot + journal.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from datetime import datetime, timedelta

from repro.serve import FenrirServer, ServeClient, ServeConfig

from common import emit

NUM_CLIENTS = 8  # one monitor each
ROUNDS_PER_CLIENT = 500
NUM_NETWORKS = 50
MIN_THROUGHPUT = 1000.0  # acked ingests/sec across the fleet

T0 = datetime(2025, 1, 1)
SITES = ["LAX", "AMS", "FRA", "NRT", "GRU"]


class ServerThread:
    """FenrirServer on a private event loop; blocking-client friendly."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._ready = threading.Event()
        self._holder: dict = {}
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            server = FenrirServer(self.config)
            await server.start()
            self._holder["address"] = server.address
            self._holder["loop"] = asyncio.get_running_loop()
            self._holder["stop"] = asyncio.Event()
            self._ready.set()
            await self._holder["stop"].wait()
            await server.stop()

        asyncio.run(main())

    def start(self) -> tuple[str, int]:
        self._thread.start()
        assert self._ready.wait(timeout=30)
        return self._holder["address"]

    def stop(self) -> None:
        self._holder["loop"].call_soon_threadsafe(self._holder["stop"].set)
        self._thread.join(timeout=30)


def monitor_rounds(monitor_index: int):
    """One monitor's deterministic stream: stable with periodic shifts."""
    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    for round_index in range(ROUNDS_PER_CLIENT):
        epoch = round_index // 97  # a routing shift every ~97 rounds
        states = {
            network: SITES[(monitor_index + epoch + (i % 7)) % len(SITES)]
            for i, network in enumerate(networks)
        }
        yield states, T0 + timedelta(seconds=round_index)


def feeder(
    host: str, port: int, client_index: int, latencies: list, errors: list
) -> None:
    monitor = f"svc{client_index}"
    try:
        with ServeClient(host=host, port=port) as client:
            for states, when in monitor_rounds(client_index):
                started = time.perf_counter()
                client.ingest(monitor, states, when)
                latencies.append(time.perf_counter() - started)
    except Exception as exc:  # noqa: BLE001 - recorded and failed below
        errors.append(exc)


def percentile(ordered: list[float], fraction: float) -> float:
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_serve_load() -> None:
    data_dir = tempfile.mkdtemp(prefix="bench_serve_")
    config = ServeConfig(data_dir=data_dir, port=0, snapshot_every=200)
    server = ServerThread(config)
    host, port = server.start()

    networks = [f"n{i}" for i in range(NUM_NETWORKS)]
    with ServeClient(host=host, port=port) as admin:
        for client_index in range(NUM_CLIENTS):
            admin.create(f"svc{client_index}", networks)

    latencies: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]
    errors: list = []
    threads = [
        threading.Thread(
            target=feeder, args=(host, port, index, latencies[index], errors)
        )
        for index in range(NUM_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    total_rounds = sum(len(client) for client in latencies)
    throughput = total_rounds / elapsed
    flat = sorted(sample for client in latencies for sample in client)

    with ServeClient(host=host, port=port) as admin:
        stats = admin.stats()
    server.stop()

    # Cold start: a fresh process-equivalent reopens the same data dir.
    restart_started = time.perf_counter()
    restarted = ServerThread(ServeConfig(data_dir=data_dir, port=0))
    host2, port2 = restarted.start()
    cold_start = time.perf_counter() - restart_started
    with ServeClient(host=host2, port=port2) as admin:
        after = admin.stats()
        recovered_rounds = sum(
            doc["rounds"] for doc in after["monitors"].values()
        )
        replay_seconds = sum(
            doc["replay"]["elapsed_seconds"]
            for doc in after["monitors"].values()
            if doc["replay"]
        )
    restarted.stop()

    server_ingest = stats["latency"].get("ingest", {})
    lines = [
        f"clients={NUM_CLIENTS} monitors={NUM_CLIENTS} "
        f"networks={NUM_NETWORKS} rounds={total_rounds}",
        f"wall time               {elapsed:8.2f} s",
        f"ingest throughput       {throughput:8.0f} acked rounds/s "
        f"(required >= {MIN_THROUGHPUT:.0f})",
        f"client latency p50      {percentile(flat, 0.50) * 1000:8.3f} ms",
        f"client latency p99      {percentile(flat, 0.99) * 1000:8.3f} ms",
        f"server ingest p50       {server_ingest.get('p50_ms', 0.0):8.3f} ms",
        f"server ingest p99       {server_ingest.get('p99_ms', 0.0):8.3f} ms",
        f"overload rejections     {stats['counters'].get('overload_rejections', 0):8d}",
        f"cold start (restart)    {cold_start:8.2f} s wall",
        f"  replay work           {replay_seconds:8.3f} s "
        f"for {recovered_rounds} rounds across {NUM_CLIENTS} monitors",
    ]
    emit("serve", "\n".join(lines))

    assert not errors, f"feeder errors: {errors[:3]}"
    assert total_rounds == NUM_CLIENTS * ROUNDS_PER_CLIENT
    assert recovered_rounds == total_rounds, "replay lost acknowledged rounds"
    assert throughput >= MIN_THROUGHPUT, (
        f"throughput {throughput:.0f}/s below the {MIN_THROUGHPUT:.0f}/s floor"
    )


if __name__ == "__main__":
    test_serve_load()
