"""Extension: statistical uncertainty on the paper's headline numbers.

The paper reports Φ point estimates; this bench attaches network-level
bootstrap confidence intervals to the Wikipedia drain comparison and a
permutation p-value to the drain-day step change — the machinery an
operator needs before acting on "routing is 73% like yesterday".
"""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.core import phi, step_changes
from repro.core.stats import bootstrap_phi, permutation_change_test
from repro.datasets import wikipedia

from common import emit


@pytest.fixture(scope="module")
def study():
    return wikipedia.generate()


def test_ext_bootstrap_and_permutation(study, benchmark):
    series = study.series
    pre = series.index_at(wikipedia.DRAIN_START - timedelta(days=1))
    during = series.index_at(wikipedia.DRAIN_START + timedelta(days=1))

    estimate = bootstrap_phi(series[pre], series[during], samples=2000)
    quiet = bootstrap_phi(series[0], series[1], samples=2000)

    changes = step_changes(series)
    drain_step = pre  # the step from the last pre-drain day into the drain
    p_drain = permutation_change_test(changes, drain_step)
    p_quiet = permutation_change_test(changes, 0)

    lines = [
        "Extension: bootstrap CIs and permutation tests (Wikipedia drain)",
        "",
        f"Φ(pre-drain, drain) = {estimate.point:.3f} "
        f"95% CI [{estimate.low:.3f}, {estimate.high:.3f}]",
        f"Φ(quiet day pair)   = {quiet.point:.3f} "
        f"95% CI [{quiet.low:.3f}, {quiet.high:.3f}]",
        f"permutation p-value, drain step: {p_drain:.4f}",
        f"permutation p-value, quiet step: {p_quiet:.4f}",
        "",
        "the drain is statistically unambiguous; the CIs quantify how much",
        "of each Φ is vantage-sampling noise",
    ]
    emit("ext_stats", "\n".join(lines))

    assert estimate.high < quiet.low  # the drain Φ drop exceeds sampling noise
    assert estimate.width < 0.1
    assert p_drain < 0.05
    assert p_quiet > 0.1
    assert estimate.point == pytest.approx(phi(series[pre], series[during]))

    benchmark(bootstrap_phi, series[pre], series[during], None)
