"""Table 3: transition matrices for the G-Root STR drain.

Paper shape, over two adjacent 4-minute rounds:

* (a) a large STR→NAP flow plus a large STR→err flow (networks that
  momentarily reach no site during convergence);
* (b) the drain completes: the err networks land on NAP (err→NAP), STR
  is empty.
"""

from __future__ import annotations

import pytest

from repro.core.transition import transition_matrix
from repro.core.viz import render_transition_table
from repro.datasets import groot

from common import emit


@pytest.fixture(scope="module")
def study():
    return groot.generate()


def _drain_step(series):
    """Index of the zoom step with the largest STR outflow."""
    best_index, best_flow = 0, -1.0
    for index in range(len(series) - 1):
        tm = transition_matrix(series[index], series[index + 1])
        flow = tm.count("STR", "NAP") + tm.count("STR", "err")
        if flow > best_flow:
            best_index, best_flow = index, flow
    return best_index


def test_tab3_transition_matrices(study, benchmark):
    series = study.zoom
    step = _drain_step(series)
    first = transition_matrix(series[step], series[step + 1])
    second = transition_matrix(series[step + 1], series[min(step + 2, len(series) - 1)])

    lines = ["Table 3(a): large shift out of STR (4-minute step)", ""]
    lines.append(render_transition_table(first))
    lines += ["", "Table 3(b): drain completes, err networks land on NAP", ""]
    lines.append(render_transition_table(second))
    lines += [
        "",
        f"(a) STR->NAP = {first.count('STR', 'NAP'):.0f}, "
        f"STR->err = {first.count('STR', 'err'):.0f}",
        f"(b) err->NAP = {second.count('err', 'NAP'):.0f}, "
        f"STR column total after = {second.column_sums().get('STR', 0):.0f}",
    ]
    emit("tab3_transitions", "\n".join(lines))

    # Paper shape: big STR->NAP and STR->err in (a); err->NAP dominates
    # (b); STR is (nearly) empty afterwards.
    assert first.count("STR", "NAP") > 50
    assert first.count("STR", "err") > 20
    assert second.count("err", "NAP") > 20
    assert second.column_sums().get("STR", 0.0) < 10

    benchmark(transition_matrix, series[step], series[step + 1])
