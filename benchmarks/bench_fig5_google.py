"""Figure 5: Google front-end churn via EDNS Client-Subnet.

Paper shape: Φ ≈ 0.79 within a week, ≈ 0.25 across weeks (regular
weekly reshuffles), and the three 2013-era rows share nothing with the
2024 infrastructure (Φ ≈ 0).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compare import similarity_matrix
from repro.core.viz import render_heatmap
from repro.datasets import google

from common import emit


@pytest.fixture(scope="module")
def study():
    return google.generate()


@pytest.fixture(scope="module")
def similarity(study):
    return similarity_matrix(study.series)


def test_fig5_google_churn(study, similarity, benchmark):
    era_2024_start = google.ERA_2013_DAYS  # first index of the 2024 era

    def era_day(day: int) -> int:
        return era_2024_start + day

    within_week = [
        similarity[era_day(d), era_day(d + 1)]
        for week_start in range(0, 49, 7)
        for d in range(week_start, week_start + 5)
    ]
    across_week = [
        similarity[era_day(d), era_day(d + 14)] for d in range(0, 40, 3)
    ]
    across_era = [similarity[i, era_day(10)] for i in range(google.ERA_2013_DAYS)]
    within_2013 = similarity[0, 1]

    # §4.3.1: "regularly scheduled changes corresponding with the work
    # week" — the seasonality estimator should recover a 7-day period.
    from repro.core.seasonality import analyze_seasonality

    season = analyze_seasonality(similarity[era_2024_start:, era_2024_start:])

    lines = ["Figure 5: Google front-end similarity heatmap", ""]
    lines.append(render_heatmap(similarity, max_size=63))
    lines += [
        "",
        f"mean Φ within a week:  {np.mean(within_week):.2f} (paper: ~0.79)",
        f"mean Φ across weeks:   {np.mean(across_week):.2f} (paper: ~0.25)",
        f"mean Φ 2013 vs 2024:   {np.mean(across_era):.3f} (paper: ~0)",
        f"Φ within the 2013 era: {within_2013:.2f}",
        f"detected schedule period: {season.period} days (paper: the work week)",
    ]
    emit("fig5_google", "\n".join(lines))

    assert 0.70 < np.mean(within_week) < 0.90
    assert 0.15 < np.mean(across_week) < 0.40
    assert np.mean(across_era) < 0.01
    assert within_2013 > 0.6
    assert season.period == 7

    benchmark(similarity_matrix, study.series)
