"""Extension: the streaming tracker vs the batch pipeline.

Replays the B-Root series through :class:`OnlineFenrir` and compares
its incremental mode assignments against the batch HAC mode labels —
the question an operator cares about before trusting the live view:
does the streaming approximation agree with the full analysis?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fenrir, OnlineFenrir
from repro.core.vector import RoutingVector
from repro.datasets import broot

from common import emit


@pytest.fixture(scope="module")
def study():
    return broot.generate(num_blocks=1200)


def _pair_agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of observation pairs the two labelings co-classify alike.

    Label values are arbitrary, so agreement is measured on pairs:
    both labelings put (i, j) in the same cluster, or both split them
    (the Rand index).
    """
    count = len(a)
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    mask = ~np.eye(count, dtype=bool)
    return float((same_a == same_b)[mask].mean())


def test_ext_online_vs_batch(study, benchmark):
    report = Fenrir().run(study.series)
    cleaned = report.cleaned

    # Verfploeter's ~45% unknowns cap pessimistic Φ near 0.6, which
    # would swamp absolute thresholds; the stream view therefore runs
    # under the EXCLUDE policy (the paper's stated ongoing work), where
    # stable rounds sit near Φ = 1.
    from repro.core import UnknownPolicy

    tracker = OnlineFenrir(
        networks=cleaned.networks,
        event_threshold=0.10,
        mode_threshold=0.90,
        policy=UnknownPolicy.EXCLUDE,
    )
    for vector in cleaned:
        tracker.ingest(vector.to_mapping(), vector.time)

    online_labels = np.array([update.mode_id for update in tracker.updates])
    batch_labels = np.asarray(report.modes.labels)
    agreement = _pair_agreement(online_labels, batch_labels)

    online_recurrences = len(tracker.recurrences())
    batch_recurring = len(report.modes.recurring_modes())

    lines = [
        "Extension: streaming tracker vs batch pipeline (B-Root series)",
        "",
        f"batch modes: {len(report.modes)}   online modes: {tracker.num_modes}",
        f"pairwise label agreement (Rand index): {agreement:.2f}",
        f"online recurrences observed: {online_recurrences} "
        f"(batch recurring modes: {batch_recurring})",
        f"online events: {len(tracker.events())}  batch events: {len(report.events)}",
    ]
    emit("ext_online", "\n".join(lines))

    assert agreement > 0.8
    assert abs(tracker.num_modes - len(report.modes)) <= 3

    def replay():
        replay_tracker = OnlineFenrir(
            networks=cleaned.networks,
            event_threshold=0.10,
            mode_threshold=0.90,
            policy=UnknownPolicy.EXCLUDE,
        )
        for vector in cleaned:
            replay_tracker.ingest(vector.to_mapping(), vector.time)
        return replay_tracker

    benchmark.pedantic(replay, rounds=2, iterations=1)


def test_ext_match_mode_oracle_on_broot(study):
    """Vectorized ``_match_mode`` ≡ the scalar loop on the real replay.

    The property tests cover random catalogs; this drives the same
    oracle comparison through every round of the B-Root series — real
    unknown rates, real recurrence structure — and reports the per-path
    timing alongside.
    """
    import time

    from repro.core import UnknownPolicy

    report = Fenrir().run(study.series)
    cleaned = report.cleaned
    tracker = OnlineFenrir(
        networks=cleaned.networks,
        event_threshold=0.10,
        mode_threshold=0.90,
        policy=UnknownPolicy.EXCLUDE,
    )
    t_vectorized = 0.0
    t_scalar = 0.0
    for vector in cleaned:
        mapping = vector.to_mapping()
        probe = tracker.match(mapping)  # the public, non-mutating form
        incoming = RoutingVector.from_mapping(
            mapping, catalog=tracker.catalog, networks=tracker.networks
        )
        started = time.perf_counter()
        vectorized = tracker._match_mode(incoming)
        t_vectorized += time.perf_counter() - started
        started = time.perf_counter()
        scalar = tracker._match_mode_scalar(incoming)
        t_scalar += time.perf_counter() - started
        assert vectorized == probe == scalar
        tracker.ingest(mapping, vector.time)

    rounds = len(tracker.updates)
    emit(
        "ext_online_match",
        "\n".join(
            [
                "Extension: match-mode oracle on the B-Root replay",
                "",
                f"rounds: {rounds}   modes: {tracker.num_modes}",
                f"vectorized: {t_vectorized / rounds * 1e6:8.1f} us/match",
                f"scalar:     {t_scalar / rounds * 1e6:8.1f} us/match",
            ]
        ),
    )
