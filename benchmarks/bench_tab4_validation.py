"""Table 4: validation of Fenrir against B-Root operator ground truth.

Paper numbers: 98 raw log entries group into 56 events; 19 external
events all detected (recall 1.0), 29 internal events quiet (TN), 8
internal events coincide with detections ("FP?"), 10 detections match
nothing in the log (candidate third-party changes, "(*)"). Accuracy
0.86, precision 0.70.
"""

from __future__ import annotations

import pytest

from repro.core.detect import detect_events, group_entries, validate_events
from repro.datasets import groundtruth

from common import emit

THRESHOLD = 0.02
MERGE_GAP = 3


@pytest.fixture(scope="module")
def study():
    return groundtruth.generate()


def test_tab4_ground_truth_validation(study, benchmark):
    events = detect_events(study.series, threshold=THRESHOLD, merge_gap=MERGE_GAP)
    groups = group_entries(study.log)
    report = validate_events(events, groups)

    external = sum(1 for g in groups if g.external)
    lines = [
        "Table 4: ground truth vs Fenrir-visible changes (B-Root/Atlas style)",
        "",
        f"all logged events          {len(groups)} ({len(study.log)} before grouping)",
        f"  external                 {report.true_positive} (TP)   {report.false_negative} (FN)",
        f"  internal only            {report.false_positive} (FP?)  {report.true_negative} (TN)",
        f"external changes? (*)      {report.unmatched_detections}",
        "",
        f"recall    = {report.recall:.2f}   (paper: 1.0)",
        f"precision = {report.precision:.2f}   (paper: 0.70)",
        f"accuracy  = {report.accuracy:.2f}   (paper: 0.86)",
    ]
    emit("tab4_validation", "\n".join(lines))

    assert len(study.log) == 98
    assert len(groups) == 56
    assert external == 19
    assert report.true_positive == 19
    assert report.false_negative == 0
    assert report.true_negative == 29
    assert report.false_positive == 8
    assert report.unmatched_detections == 10
    assert report.recall == 1.0
    assert abs(report.precision - 0.70) < 0.03
    assert abs(report.accuracy - 0.86) < 0.03

    benchmark(detect_events, study.series, threshold=THRESHOLD, merge_gap=MERGE_GAP)
