"""Figure 4: p90 latency per B-Root catchment, 2022-01 .. 2023-12.

Paper shape: ARI serves distant (North American/European) networks and
shows p90 over 200 ms until its 2023-03-06 shutdown; SCL appears
briefly in May 2023, then resumes on 2023-06-29 with very low latency.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.core.latency import percentile_by_catchment
from repro.core.vector import RoutingVector, StateCatalog
from repro.datasets import broot
from repro.latency.model import RttModel

from common import emit


@pytest.fixture(scope="module")
def study():
    return broot.generate()


def _p90_series(study, start, end):
    model = RttModel(jitter_ms=0)
    catalog = StateCatalog()
    results = {}
    for when in study.sample_times:
        if not start <= when < end:
            continue
        assignment = study.true_assignment(when)
        rtts = model.table(assignment, study.block_locations, study.site_locations)
        vector = RoutingVector.from_mapping(assignment, catalog=catalog, time=when)
        results[when] = percentile_by_catchment(vector, rtts, q=90)
    return results


def test_fig4_latency_per_catchment(study, benchmark):
    start, end = datetime(2022, 1, 1), datetime(2024, 1, 1)
    per_round = _p90_series(study, start, end)

    ari_values = [p["ARI"] for p in per_round.values() if "ARI" in p]
    scl_values = [p["SCL"] for p in per_round.values() if "SCL" in p]
    ari_last_seen = max(w for w, p in per_round.items() if "ARI" in p)
    scl_first_seen = min((w for w, p in per_round.items() if "SCL" in p), default=None)

    lines = ["Figure 4: p90 latency per catchment, 2022-01 .. 2023-12", ""]
    site_names = sorted({site for p in per_round.values() for site in p})
    header = "date        " + "".join(f"{s:>8}" for s in site_names)
    lines.append(header)
    for when, percentiles in list(per_round.items())[::4]:
        row = f"{when:%Y-%m-%d}  " + "".join(
            f"{percentiles.get(s, float('nan')):>8.0f}" for s in site_names
        )
        lines.append(row)
    # Why is ARI slow? Polarization: its catchment is far from Arica.
    from repro.anycast.polarization import analyze_polarization

    assignment = study.true_assignment(datetime(2022, 6, 1))
    polarization = analyze_polarization(
        assignment,
        study.block_locations,
        study.site_locations,
        active_sites={"LAX", "MIA", "ARI", "SIN", "IAD", "AMS"},
    )
    ari_polarized = polarization.by_site().get("ARI", 0)

    lines += [
        "",
        f"ARI p90 median while active: {np.median(ari_values):.0f} ms (paper: >200 ms)",
        f"polarized networks assigned to ARI: {ari_polarized} "
        "(the paper's 'few North American and European networks routed to it')",
        f"ARI last seen: {ari_last_seen:%Y-%m-%d} (paper: 2023-03-06 shutdown)",
        f"SCL first seen: {scl_first_seen:%Y-%m-%d} (paper: 2023-05)",
        f"SCL p90 median once active: {np.median(scl_values):.0f} ms (paper: very low)",
    ]
    emit("fig4_latency", "\n".join(lines))

    # Paper shape: ARI slow (polarized), gone by spring 2023; SCL fast.
    assert ari_polarized > 0
    assert np.median(ari_values) > 150
    assert ari_last_seen < datetime(2023, 3, 15)
    assert scl_first_seen is not None and scl_first_seen < datetime(2023, 5, 15)
    assert np.median(scl_values) < np.median(ari_values) / 2

    model = RttModel(jitter_ms=0)
    assignment = study.true_assignment(datetime(2022, 6, 1))

    def build_table():
        return model.table(assignment, study.block_locations, study.site_locations)

    benchmark(build_table)
