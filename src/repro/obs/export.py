"""Export surfaces: Prometheus text exposition and metrics-file dumps.

:func:`render_prometheus` turns a :class:`MetricsRegistry` into the
Prometheus text format (version 0.0.4): ``# HELP`` / ``# TYPE``
headers once per metric family, one sample line per labeled series,
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``. Output is deterministically ordered (families
alphabetically, label sets within a family alphabetically) so it can
be golden-file tested and diffed across runs.

This is what the serve ``metrics`` wire command returns and what
``--metrics-file`` writes for offline runs — one format, two
transports.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Iterable, Optional, Union

from .registry import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = ["CONTENT_TYPE", "render_prometheus", "write_metrics_file"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(
    labels: Iterable[tuple[str, str]], extra: Optional[tuple[str, str]] = None
) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry as Prometheus text exposition (sorted, stable)."""
    if registry is None:
        registry = get_registry()
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        name = metric.name
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = registry.help_of(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {registry.kind_of(name)}")
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative):
                labels = _format_labels(
                    metric.labels, extra=("le", _format_value(bound))
                )
                lines.append(f"{name}_bucket{labels} {count}")
            labels = _format_labels(metric.labels, extra=("le", "+Inf"))
            lines.append(f"{name}_bucket{labels} {metric.count}")
            labels = _format_labels(metric.labels)
            lines.append(f"{name}_sum{labels} {_format_value(metric.total)}")
            lines.append(f"{name}_count{labels} {metric.count}")
        elif isinstance(metric, (Counter, Gauge)):
            labels = _format_labels(metric.labels)
            lines.append(f"{name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics_file(
    path: Union[str, Path], registry: Optional[MetricsRegistry] = None
) -> Path:
    """Atomically write the exposition to ``path`` (tmp + replace).

    Scrape-by-file for offline runs: a pipeline batch job or the serve
    process (``--metrics-file`` with a period) dumps here and a node
    exporter's textfile collector — or a human with ``cat`` — reads a
    complete, never half-written snapshot.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(render_prometheus(registry), encoding="utf-8")
    os.replace(temp, path)
    return path
