"""Lightweight structured tracing: ``span("phase", **tags)``.

A span is one timed region with a name, optional tags, and children;
nesting builds a parent/child tree via a context variable, which makes
the tracer safe across threads and asyncio tasks (each task sees its
own current span). Completed root spans accumulate in a bounded ring
on the tracer and can be dumped as JSON (machine-readable, one tree
per root) or as a flame-style indented text summary (human-readable,
widest subtree first).

Tracing is **disabled by default** and designed to cost nothing when
off: :func:`span` checks one module-level boolean and returns a shared
no-op context manager without touching the clock, the context var, or
allocating a span. Enable programmatically with :func:`enable`, or for
a whole process with the ``REPRO_OBS=1`` environment variable (how the
serve benchmark's obs-overhead run turns it on in the server child).

>>> from repro.obs import enable, span, get_tracer
>>> enable()
>>> with span("pipeline", series="broot"):
...     with span("compare"):
...         pass
>>> print(get_tracer().flame_text())        # doctest: +SKIP
"""

from __future__ import annotations

import json
import os
import time
from contextvars import ContextVar
from collections import deque
from types import TracebackType
from typing import Deque, Iterator, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "span",
    "enable",
    "disable",
    "enabled",
    "get_tracer",
    "set_tracer",
]

_MAX_FINISHED_ROOTS = 256  # bounded: a long-lived server must not leak


class Span:
    """One timed region in the trace tree; also its own context manager."""

    __slots__ = (
        "name",
        "tags",
        "children",
        "started",
        "elapsed",
        "status",
        "error",
        "_tracer",
        "_token",
    )

    def __init__(self, name: str, tags: dict, tracer: "Tracer") -> None:
        self.name = name
        self.tags = tags
        self.children: list[Span] = []
        self.started = 0.0
        self.elapsed = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> "Span":
        parent = self._tracer._current.get()
        if parent is not None:
            parent.children.append(self)
        self._token = self._tracer._current.set(self)
        self.started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        _tb: Optional[TracebackType],
    ) -> bool:
        self.elapsed = time.perf_counter() - self.started
        self._tracer._current.reset(self._token)
        if exc_type is not None:
            # The span records the failure and re-raises: tracing must
            # never swallow an exception.
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        if self._tracer._current.get() is None:
            self._tracer._finished.append(self)
        return False

    def to_dict(self) -> dict:
        document = {
            "name": self.name,
            "elapsed_seconds": round(self.elapsed, 6),
            "status": self.status,
        }
        if self.tags:
            document["tags"] = {key: str(value) for key, value in self.tags.items()}
        if self.error is not None:
            document["error"] = self.error
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


class Tracer:
    """Owns the current-span context and the finished root spans."""

    def __init__(self, max_roots: int = _MAX_FINISHED_ROOTS) -> None:
        self._current: ContextVar[Optional[Span]] = ContextVar(
            "repro_obs_span", default=None
        )
        self._finished: Deque[Span] = deque(maxlen=max_roots)

    def span(self, name: str, **tags: object) -> Span:
        return Span(name, tags, self)

    @property
    def roots(self) -> list[Span]:
        return list(self._finished)

    def clear(self) -> None:
        self._finished.clear()

    # -- dump formats --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"traces": [root.to_dict() for root in self._finished]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False) + "\n"

    def flame_text(self) -> str:
        """Indented per-span summary, children sorted by elapsed time.

        Each line shows the span's share of its root, its own wall
        time, and its tags — enough to see at a glance which stage of
        a pipeline run dominated.
        """
        lines: list[str] = []
        for root in self._finished:
            total = root.elapsed or 1e-12

            def render(node: Span, depth: int) -> None:
                percent = 100.0 * node.elapsed / total
                tags = (
                    " [" + " ".join(f"{k}={v}" for k, v in node.tags.items()) + "]"
                    if node.tags
                    else ""
                )
                marker = " !" if node.status == "error" else ""
                lines.append(
                    f"{'  ' * depth}{node.name:<{max(1, 24 - 2 * depth)}} "
                    f"{node.elapsed * 1000:9.2f} ms {percent:5.1f}%{tags}{marker}"
                )
                for child in sorted(
                    node.children, key=lambda s: s.elapsed, reverse=True
                ):
                    render(child, depth + 1)

            render(root, 0)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n" if lines else ""


_tracer = Tracer()
_enabled = os.environ.get("REPRO_OBS", "") not in ("", "0")


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process tracer (tests); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def span(name: str, **tags: object) -> Union[Span, _NoopSpan]:
    """A timed region: ``with span("compare", engine="tiled"): ...``.

    When tracing is disabled this is one boolean check and a shared
    no-op — no clock read, no allocation — which is what keeps
    instrumented hot paths within the <3% overhead budget.
    """
    if not _enabled:
        return _NOOP
    return _tracer.span(name, **tags)
