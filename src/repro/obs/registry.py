"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` is the single sink every subsystem reports
through — the pipeline's stage timings, the parallel engine's cache
counters, and the serve ingest path all land here and come back out
through one exposition surface (:mod:`repro.obs.export`). Metrics are
named Prometheus-style (``snake_case``, unit-suffixed) and may carry a
small, fixed label set (``{"stage": "compare"}``); a (name, labels)
pair identifies one time series.

Design constraints, in order:

1. **Hot-path cheapness.** ``Counter.inc`` is one dict-free attribute
   add; ``Histogram.observe`` is one bisect plus three adds. The serve
   ingest path observes per request, so anything heavier would show up
   in ``bench_serve``.
2. **No dependencies.** Pure stdlib (plus ``bisect``); the exposition
   format is plain text.
3. **Bounded memory.** Histograms are fixed-bucket; the
   :class:`LatencyRecorder` windows are bounded rings. Nothing grows
   with uptime.

:class:`LatencyRecorder` (moved here from ``repro.serve.metrics``)
keeps its exact nearest-rank-percentile-over-recent-window semantics;
when constructed with a registry it *also* feeds a per-key histogram,
so the same observation stream is visible both as exact recent
percentiles (``stats``) and as cumulative bucket counts (``metrics``).
The property tests assert the two views agree: histogram bucket bounds
bracket the exact nearest-rank values.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
]

LabelPair = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for latencies, in seconds: 100 µs to 10 s,
#: roughly 2.5x apart — wide enough for fsync outliers, fine enough to
#: separate a 200 µs fast path from a 2 ms slow one.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelPair:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPair = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down, or be computed on read.

    ``set_function`` registers a zero-argument callable evaluated at
    collection time — the idiom for values that already live somewhere
    (a queue's ``qsize``) and should not be mirrored on every change.
    """

    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(self, name: str, labels: LabelPair = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            # NaN in the exposition *is* the visible trace here; a
            # counter would recurse into the registry mid-collect.
            except Exception:  # fenlint: disable=swallowed-exception
                return float("nan")
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``bounds`` are the finite upper bounds (inclusive, ``le``); an
    implicit +Inf bucket catches the overflow. ``observe`` is O(log
    buckets). ``percentile_bounds(q)`` returns the (lower, upper) bucket
    edges that bracket the nearest-rank q-percentile of everything
    observed so far — the histogram cannot say *where* in the bucket
    the exact value lies, but it can always bracket it.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self,
        name: str,
        labels: LabelPair = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one finite bucket bound")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        if any(math.isinf(b) for b in ordered):
            raise ValueError("+Inf bucket is implicit; pass finite bounds only")
        self.name = name
        self.labels = labels
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # +1 = the +Inf bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def cumulative_counts(self) -> list[int]:
        """Bucket counts as Prometheus cumulative ``le`` counts."""
        running = 0
        out = []
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    def percentile_bounds(self, fraction: float) -> Tuple[float, float]:
        """(lower, upper) bucket edges bracketing the nearest-rank
        ``fraction`` percentile; ``(0.0, 0.0)`` when empty.

        The nearest rank is ``ceil(fraction · count)`` (1-based),
        matching :meth:`LatencyRecorder._percentile` exactly, so for
        any observation stream ``lower <= exact_percentile <= upper``.
        """
        if self.count == 0:
            return (0.0, 0.0)
        rank = max(1, math.ceil(fraction * self.count))
        running = 0
        for index, bucket in enumerate(self.bucket_counts):
            running += bucket
            if running >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else float("inf")
                )
                return (lower, upper)
        return (self.bounds[-1], float("inf"))  # pragma: no cover


class MetricsRegistry:
    """Get-or-create home for every metric in one process (or server).

    Metric creation takes a lock; the returned instrument is cached by
    the caller and updated lock-free (the GIL makes the single adds in
    ``inc``/``observe`` safe enough for counting). A name maps to one
    *kind* — asking for ``foo`` as a counter and again as a gauge is a
    bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPair], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def _get_or_create(
        self,
        kind: str,
        name: str,
        labels: Optional[Mapping[str, str]],
        help_text: str,
        factory: Callable[[str, LabelPair], object],
    ) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {existing_kind}, not a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1])
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help_text:
                    self._help[name] = help_text
            elif help_text and name not in self._help:
                self._help[name] = help_text
            return metric

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        return self._get_or_create("counter", name, labels, help, Counter)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get_or_create("gauge", name, labels, help, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            "histogram",
            name,
            labels,
            help,
            lambda n, lb: Histogram(n, lb, buckets=buckets),
        )

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def collect(self) -> Iterator[object]:
        """Every metric, grouped by name then label set (stable order)."""
        with self._lock:
            items = sorted(self._metrics.items())
        for _, metric in items:
            yield metric

    def snapshot(self) -> dict:
        """A plain-dict dump, mostly for tests and debugging."""
        out: dict = {}
        for metric in self.collect():
            label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{label_text}}}" if label_text else metric.name
            if isinstance(metric, Histogram):
                out[key] = {"count": metric.count, "sum": metric.total}
            else:
                out[key] = metric.value
        return out


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (offline runs report here)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


_DEFAULT_WINDOW = 4096


class LatencyRecorder:
    """Per-key ring buffer of recent latencies, in seconds.

    The ring answers "what were p50/p99 *recently*" with exact
    nearest-rank percentiles over the last ``window`` samples — a
    lifetime average hides regressions, and memory stays constant
    under sustained load. With a ``registry``, every observation is
    also fed to a cumulative ``{histogram_name}{{key=...}}`` histogram
    so the same stream is visible through the Prometheus exposition.
    """

    def __init__(
        self,
        window: int = _DEFAULT_WINDOW,
        registry: Optional[MetricsRegistry] = None,
        histogram_name: str = "command_latency_seconds",
        label_name: str = "command",
    ) -> None:
        self.window = window
        self._samples: Dict[str, Deque[float]] = {}
        self._registry = registry
        self._histogram_name = histogram_name
        self._label_name = label_name
        self._histograms: Dict[str, Histogram] = {}

    def observe(self, key: str, seconds: float) -> None:
        ring = self._samples.get(key)
        if ring is None:
            ring = self._samples[key] = deque(maxlen=self.window)
            if self._registry is not None:
                self._histograms[key] = self._registry.histogram(
                    self._histogram_name, labels={self._label_name: key}
                )
        ring.append(seconds)
        histogram = self._histograms.get(key)
        if histogram is not None:
            histogram.observe(seconds)

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile: the smallest sample with at least
        ``fraction`` of the distribution at or below it.

        The rank is ``ceil(fraction · n)`` (1-based); the once-used
        ``int(fraction · n)`` 0-based index over-read by one position —
        p50 of ``[1, 2]`` came back 2.
        """
        if not ordered:
            return 0.0
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[min(len(ordered) - 1, index)]

    def summary(self) -> dict:
        """``{key: {count, p50_ms, p99_ms, max_ms}}`` for stats."""
        report = {}
        for key, ring in sorted(self._samples.items()):
            ordered = sorted(ring)
            report[key] = {
                "count": len(ordered),
                "p50_ms": round(self._percentile(ordered, 0.50) * 1000, 3),
                "p99_ms": round(self._percentile(ordered, 0.99) * 1000, 3),
                "max_ms": round(ordered[-1] * 1000, 3) if ordered else 0.0,
            }
        return report
