"""``repro.obs``: the dependency-free observability layer.

Every hot path in the reproduction reports through this package:

* :mod:`~repro.obs.registry` — the process-wide
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms (plus the bounded-window :class:`LatencyRecorder` the
  serve ``stats`` command keeps its exact recent percentiles in);
* :mod:`~repro.obs.trace` — ``span("phase", **tags)`` context
  managers building a parent/child timing tree, dumpable as JSON or a
  flame-style text summary, free when disabled;
* :mod:`~repro.obs.export` — Prometheus text exposition
  (:func:`render_prometheus`) and atomic metrics-file dumps, the one
  format behind the serve ``metrics`` wire command, ``repro client
  metrics``, and ``--metrics-file``.

See ``docs/observability.md`` for the operator-facing story.
"""

from .export import CONTENT_TYPE, render_prometheus, write_metrics_file
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import (
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "render_prometheus",
    "set_registry",
    "set_tracer",
    "span",
    "write_metrics_file",
]
