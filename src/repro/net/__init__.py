"""IP addressing, prefix lookup, hitlists and synthetic geography."""

from .addr import AddressError, IPv4Address, IPv4Prefix, parse_address, parse_prefix
from .geo import CITIES, GeoPoint, city, haversine_km, propagation_rtt_ms
from .hitlist import Hitlist, HitlistEntry
from .trie import PrefixTrie

__all__ = [
    "AddressError",
    "IPv4Address",
    "IPv4Prefix",
    "parse_address",
    "parse_prefix",
    "CITIES",
    "GeoPoint",
    "city",
    "haversine_km",
    "propagation_rtt_ms",
    "Hitlist",
    "HitlistEntry",
    "PrefixTrie",
]
