"""Binary radix trie with longest-prefix match.

BGP routing tables and hitlist lookups both need "which announced prefix
covers this address" queries. This trie stores :class:`~repro.net.addr.IPv4Prefix`
keys with arbitrary values and answers longest-prefix-match in O(32).
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from .addr import IPv4Address, IPv4Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


def _bit(value: int, position: int) -> int:
    """Bit of a 32-bit value, position 0 = most significant."""
    return (value >> (31 - position)) & 1


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for position in range(prefix.length):
            bit = _bit(prefix.network, position)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def exact(self, prefix: IPv4Prefix) -> Optional[V]:
        """Value stored exactly at ``prefix``, or None."""
        node = self._root
        for position in range(prefix.length):
            child = node.children[_bit(prefix.network, position)]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Remove the entry at ``prefix``. Returns True if it existed."""
        node = self._root
        for position in range(prefix.length):
            child = node.children[_bit(prefix.network, position)]
            if child is None:
                return False
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def longest_match(
        self, address: IPv4Address | int
    ) -> Optional[tuple[IPv4Prefix, V]]:
        """The most-specific stored prefix covering ``address``, with value."""
        value = int(address)
        node = self._root
        best: Optional[tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for position in range(32):
            child = node.children[_bit(value, position)]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (position + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, stored = best
        return IPv4Prefix.supernet_of(value, length), stored

    def lookup(self, address: IPv4Address | int) -> Optional[V]:
        """Value of the longest matching prefix, or None."""
        match = self.longest_match(address)
        return match[1] if match else None

    def covering(self, prefix: IPv4Prefix) -> Optional[tuple[IPv4Prefix, V]]:
        """The most-specific stored prefix that contains all of ``prefix``."""
        node = self._root
        best: Optional[tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for position in range(prefix.length):
            child = node.children[_bit(prefix.network, position)]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (position + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, stored = best
        return IPv4Prefix.supernet_of(prefix.network, length), stored

    def items(self) -> Iterator[tuple[IPv4Prefix, V]]:
        """All (prefix, value) pairs, in trie (address) order."""

        def walk(node: _Node[V], network: int, length: int) -> Iterator[tuple[IPv4Prefix, V]]:
            if node.has_value:
                yield IPv4Prefix(network, length), node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_net = network | (bit << (31 - length))
                    yield from walk(child, child_net, length + 1)

        yield from walk(self._root, 0, 0)

    def __contains__(self, prefix: object) -> bool:
        if not isinstance(prefix, IPv4Prefix):
            return False
        return self.exact(prefix) is not None or (
            # exact() returns None also for stored None values; check flag path
            self._has_exact(prefix)
        )

    def _has_exact(self, prefix: IPv4Prefix) -> bool:
        node = self._root
        for position in range(prefix.length):
            child = node.children[_bit(prefix.network, position)]
            if child is None:
                return False
            node = child
        return node.has_value
