"""Synthetic geography for latency and placement modelling.

Anycast catchment latency in the paper (Figure 4) is driven by which
geographic site each network lands on. We model locations as lat/lon
points, provide a curated catalog of real city locations (airport-coded,
matching the paper's site names such as LAX, AMS, SIN, ARI, SCL), and a
propagation-delay model: great-circle distance at ~2/3 the speed of light
plus a per-path overhead factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GeoPoint", "CITIES", "haversine_km", "propagation_rtt_ms", "city"]

_EARTH_RADIUS_KM = 6371.0
# Effective signal speed in fiber, km per ms (2/3 of c).
_FIBER_KM_PER_MS = 199.86
# Real paths are not great circles; typical inflation factor.
_PATH_INFLATION = 1.6


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A location on Earth with an identifying code."""

    code: str
    lat: float
    lon: float

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def rtt_ms(self, other: "GeoPoint") -> float:
        return propagation_rtt_ms(self.distance_km(other))


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def propagation_rtt_ms(distance_km: float, inflation: float = _PATH_INFLATION) -> float:
    """Round-trip propagation delay for a path of ``distance_km``."""
    one_way_ms = distance_km * inflation / _FIBER_KM_PER_MS
    return 2.0 * one_way_ms


# Airport-coded city catalog. Codes match sites named in the paper plus a
# spread of locations for synthetic topologies.
CITIES: dict[str, GeoPoint] = {
    point.code: point
    for point in [
        # B-Root / G-Root sites named in the paper.
        GeoPoint("LAX", 33.94, -118.41),  # Los Angeles
        GeoPoint("MIA", 25.79, -80.29),  # Miami
        GeoPoint("ARI", -18.48, -70.31),  # Arica, Chile
        GeoPoint("SCL", -33.39, -70.79),  # Santiago, Chile
        GeoPoint("SIN", 1.36, 103.99),  # Singapore
        GeoPoint("IAD", 38.95, -77.46),  # Washington-Dulles
        GeoPoint("AMS", 52.31, 4.76),  # Amsterdam
        GeoPoint("STR", 48.69, 9.22),  # Stuttgart
        GeoPoint("NAP", 40.88, 14.29),  # Naples
        GeoPoint("CMH", 40.00, -82.89),  # Columbus
        GeoPoint("SAT", 29.53, -98.47),  # San Antonio
        GeoPoint("NRT", 35.76, 140.39),  # Tokyo-Narita
        GeoPoint("HNL", 21.32, -157.92),  # Honolulu
        # Wikipedia data centers (codes from wikitech).
        GeoPoint("EQIAD", 38.95, -77.46),  # Ashburn
        GeoPoint("CODFW", 32.90, -97.04),  # Dallas
        GeoPoint("ULSFO", 37.62, -122.38),  # San Francisco
        GeoPoint("EQSIN", 1.36, 103.99),  # Singapore
        GeoPoint("ESAMS", 52.31, 4.76),  # Amsterdam
        GeoPoint("DRMRS", 43.44, 5.22),  # Marseille
        GeoPoint("MAGRU", -23.43, -46.47),  # Sao Paulo
        # Extra cities for synthetic client placement.
        GeoPoint("NYC", 40.71, -74.01),
        GeoPoint("ORD", 41.97, -87.91),
        GeoPoint("SEA", 47.45, -122.31),
        GeoPoint("DEN", 39.86, -104.67),
        GeoPoint("YYZ", 43.68, -79.63),
        GeoPoint("MEX", 19.44, -99.07),
        GeoPoint("GRU", -23.43, -46.47),
        GeoPoint("EZE", -34.82, -58.54),
        GeoPoint("BOG", 4.70, -74.15),
        GeoPoint("LHR", 51.47, -0.45),
        GeoPoint("CDG", 49.01, 2.55),
        GeoPoint("FRA", 50.04, 8.56),
        GeoPoint("MAD", 40.47, -3.57),
        GeoPoint("ARN", 59.65, 17.92),
        GeoPoint("WAW", 52.17, 20.97),
        GeoPoint("IST", 41.26, 28.74),
        GeoPoint("JNB", -26.13, 28.24),
        GeoPoint("CAI", 30.12, 31.41),
        GeoPoint("LOS", 6.58, 3.32),
        GeoPoint("DXB", 25.25, 55.36),
        GeoPoint("BOM", 19.09, 72.87),
        GeoPoint("DEL", 28.57, 77.10),
        GeoPoint("BKK", 13.69, 100.75),
        GeoPoint("HKG", 22.31, 113.91),
        GeoPoint("PVG", 31.14, 121.81),
        GeoPoint("ICN", 37.46, 126.44),
        GeoPoint("SYD", -33.95, 151.18),
        GeoPoint("AKL", -37.01, 174.79),
    ]
}


def city(code: str) -> GeoPoint:
    """Look up a city by airport code, raising KeyError with a hint."""
    try:
        return CITIES[code.upper()]
    except KeyError:
        raise KeyError(
            f"unknown city code {code!r}; known: {sorted(CITIES)}"
        ) from None
