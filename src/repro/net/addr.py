"""IPv4 address and prefix primitives.

These types are implemented from scratch (rather than wrapping
:mod:`ipaddress`) so the rest of the library can rely on a small, fast,
hashable representation: an address is a 32-bit integer, a prefix is an
``(int, length)`` pair whose host bits are zero.

The Fenrir pipeline identifies "networks" by /24 blocks, so helpers for
/24 enumeration and alignment live here as well.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "AddressError",
    "IPv4Address",
    "IPv4Prefix",
    "parse_address",
    "parse_prefix",
]

_MAX32 = 0xFFFFFFFF
_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def _parse_dotted_quad(text: str) -> int:
    match = _DOTTED_QUAD.match(text.strip())
    if not match:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """A single IPv4 address, stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX32:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        return cls(_parse_dotted_quad(text))

    def __str__(self) -> str:
        return _format_dotted_quad(self.value)

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    @property
    def is_private(self) -> bool:
        """True for RFC 1918 space (10/8, 172.16/12, 192.168/16)."""
        v = self.value
        return (
            (v >> 24) == 10
            or (v >> 20) == (172 << 4 | 1)  # 172.16.0.0/12
            or (v >> 16) == (192 << 8 | 168)
        )

    @property
    def is_loopback(self) -> bool:
        return (self.value >> 24) == 127

    def block24(self) -> "IPv4Prefix":
        """The /24 block containing this address."""
        return IPv4Prefix(self.value & 0xFFFFFF00, 24)


@dataclass(frozen=True, slots=True, order=True)
class IPv4Prefix:
    """An IPv4 prefix ``network/length`` with host bits forced clear."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX32:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~self.mask & _MAX32:
            raise AddressError(
                f"host bits set in {_format_dotted_quad(self.network)}/{self.length}"
            )

    @classmethod
    def from_string(cls, text: str) -> "IPv4Prefix":
        if "/" not in text:
            raise AddressError(f"missing '/' in prefix: {text!r}")
        addr_text, _, len_text = text.partition("/")
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(f"bad prefix length in {text!r}") from exc
        value = _parse_dotted_quad(addr_text)
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {text!r}")
        mask = (_MAX32 << (32 - length)) & _MAX32 if length else 0
        if value & ~mask & _MAX32:
            raise AddressError(f"host bits set in {text!r}")
        return cls(value, length)

    @classmethod
    def supernet_of(cls, address: IPv4Address | int, length: int) -> "IPv4Prefix":
        """The /length prefix containing ``address`` (host bits cleared)."""
        value = int(address)
        mask = (_MAX32 << (32 - length)) & _MAX32 if length else 0
        return cls(value & mask, length)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (_MAX32 << (32 - self.length)) & _MAX32

    def __str__(self) -> str:
        return f"{_format_dotted_quad(self.network)}/{self.length}"

    def __contains__(self, item: object) -> bool:
        if isinstance(item, IPv4Address):
            return (item.value & self.mask) == self.network
        if isinstance(item, int):
            return (item & self.mask) == self.network
        if isinstance(item, IPv4Prefix):
            return item.length >= self.length and (
                item.network & self.mask
            ) == self.network
        return False

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def num_blocks24(self) -> int:
        """How many /24 blocks this prefix spans (1 for /24 and longer)."""
        if self.length >= 24:
            return 1
        return 1 << (24 - self.length)

    @property
    def first_address(self) -> IPv4Address:
        return IPv4Address(self.network)

    @property
    def last_address(self) -> IPv4Address:
        return IPv4Address(self.network | (~self.mask & _MAX32))

    def blocks24(self) -> Iterator["IPv4Prefix"]:
        """Iterate the /24 blocks covered by (or containing) this prefix."""
        if self.length >= 24:
            yield IPv4Prefix(self.network & 0xFFFFFF00, 24)
            return
        for index in range(self.num_blocks24):
            yield IPv4Prefix(self.network + (index << 8), 24)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """All subnets of this prefix at ``new_length``."""
        if new_length < self.length:
            raise AddressError("new_length shorter than prefix length")
        if new_length > 32:
            raise AddressError("new_length longer than 32")
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.num_addresses, step):
            yield IPv4Prefix(network, new_length)

    def overlaps(self, other: "IPv4Prefix") -> bool:
        return other in self or self in other


def parse_address(text: str) -> IPv4Address:
    """Parse a dotted-quad string into an :class:`IPv4Address`."""
    return IPv4Address.from_string(text)


def parse_prefix(text: str) -> IPv4Prefix:
    """Parse ``a.b.c.d/len`` into an :class:`IPv4Prefix`."""
    return IPv4Prefix.from_string(text)
