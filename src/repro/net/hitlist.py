"""IP hitlists: one representative target address per /24 block.

The paper's traceroute and Verfploeter campaigns probe one address in
each routable /24 (a "hitlist", following Fan et al.). A hitlist entry
carries a score, mirroring the responsiveness history real hitlists
track; measurement simulators use the score as the probability that the
target answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .addr import IPv4Address, IPv4Prefix

__all__ = ["HitlistEntry", "Hitlist"]


@dataclass(frozen=True, slots=True)
class HitlistEntry:
    """A probing target for one /24 block."""

    block: IPv4Prefix
    target: IPv4Address
    score: float  # responsiveness probability in [0, 1]

    def __post_init__(self) -> None:
        if self.block.length != 24:
            raise ValueError(f"hitlist blocks must be /24, got {self.block}")
        if self.target not in self.block:
            raise ValueError(f"target {self.target} outside block {self.block}")
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score out of range: {self.score}")


@dataclass
class Hitlist:
    """An ordered collection of per-/24 probing targets."""

    entries: list[HitlistEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[HitlistEntry]:
        return iter(self.entries)

    def blocks(self) -> list[IPv4Prefix]:
        return [entry.block for entry in self.entries]

    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable[IPv4Prefix],
        rng: random.Random,
        mean_score: float = 0.55,
        score_spread: float = 0.35,
    ) -> "Hitlist":
        """Build a hitlist choosing one host and a score per block.

        The default mean score of 0.55 mirrors the paper's report that
        Verfploeter finds roughly half of its 5M target networks
        unresponsive on any given day.
        """
        entries = []
        for block in blocks:
            if block.length != 24:
                raise ValueError(f"hitlist blocks must be /24, got {block}")
            # Hosts .1-.254; .0 and .255 are network/broadcast.
            host = rng.randint(1, 254)
            score = min(1.0, max(0.0, rng.gauss(mean_score, score_spread)))
            entries.append(
                HitlistEntry(block, IPv4Address(block.network | host), score)
            )
        return cls(entries)

    @classmethod
    def from_blocks_bimodal(
        cls,
        blocks: Iterable[IPv4Prefix],
        rng: random.Random,
        alive_fraction: float = 0.55,
        alive_score: float = 0.97,
        dead_score: float = 0.02,
    ) -> "Hitlist":
        """A bimodal hitlist: blocks are mostly-responsive or mostly-dead.

        This is how real hitlists behave — a block with dynamic
        addressing or strict filtering stays unresponsive for months,
        it does not flicker per-day. The bimodal shape is what caps
        stable Verfploeter Φ at ~0.5-0.6 in the paper: interpolation
        cannot repair a block that never answers within its reach.
        """
        entries = []
        for block in blocks:
            if block.length != 24:
                raise ValueError(f"hitlist blocks must be /24, got {block}")
            host = rng.randint(1, 254)
            base = alive_score if rng.random() < alive_fraction else dead_score
            score = min(1.0, max(0.0, rng.gauss(base, 0.02)))
            entries.append(
                HitlistEntry(block, IPv4Address(block.network | host), score)
            )
        return cls(entries)

    def refresh_scores(
        self, rng: random.Random, drift: float = 0.05
    ) -> "Hitlist":
        """Quarterly-style refresh: jitter scores, keep targets.

        Mirrors real hitlists being regenerated periodically; returns a
        new hitlist so campaigns can hold a stable reference.
        """
        entries = []
        for entry in self.entries:
            score = min(1.0, max(0.0, entry.score + rng.gauss(0.0, drift)))
            entries.append(HitlistEntry(entry.block, entry.target, score))
        return Hitlist(entries)
