"""SVG chart renderers for the paper's figure types (no dependencies)."""

from .charts import PALETTE, heatmap_svg, latency_svg, sankey_svg, stackplot_svg
from .timeline import timeline_svg
from .svg import Element, Svg

__all__ = [
    "Element",
    "PALETTE",
    "Svg",
    "heatmap_svg",
    "latency_svg",
    "sankey_svg",
    "stackplot_svg",
    "timeline_svg",
]
