"""Mode-timeline SVG: the paper's (i)…(vi) annotations, as a chart.

The paper annotates its heatmaps with mode spans by hand; this renders
them directly: one colored bar per contiguous mode segment on a time
axis, recurring modes sharing a color, with detected events drawn as
vertical markers.
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional, Sequence

from ..core.detect import DetectedEvent
from ..core.modes import ModeSet
from .charts import PALETTE
from .svg import Svg

__all__ = ["timeline_svg"]

_ROMAN = ["i", "ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x",
          "xi", "xii", "xiii", "xiv", "xv"]


def timeline_svg(
    modes: ModeSet,
    events: Optional[Sequence[DetectedEvent]] = None,
    width: int = 720,
    height: int = 120,
    title: str = "routing modes",
) -> Svg:
    """Render mode segments (and optional event markers) on a time axis."""
    times = modes.series.times
    if len(times) < 2:
        raise ValueError("need at least two observations to draw a timeline")
    start, end = times[0], times[-1]
    span = (end - start).total_seconds() or 1.0

    svg = Svg(width, height)
    margin = 16
    plot_w = width - 2 * margin
    bar_y, bar_h = 42, 34

    def x_at(when: datetime) -> float:
        return margin + plot_w * (when - start).total_seconds() / span

    svg.label(margin, 14, title, size=12)
    for segment_start, segment_end, mode_id in _segments(modes):
        x0 = x_at(segment_start)
        x1 = max(x_at(segment_end), x0 + 2)
        color = PALETTE[mode_id % len(PALETTE)]
        svg.rect(x0, bar_y, x1 - x0, bar_h, fill=color, fill_opacity=0.85)
        if x1 - x0 > 24:
            name = _ROMAN[mode_id] if mode_id < len(_ROMAN) else str(mode_id)
            svg.label(
                (x0 + x1) / 2 - 6, bar_y + bar_h / 2 + 4, f"({name})", size=10,
                fill="#ffffff",
            )
    for event in events or ():
        x = x_at(event.start)
        svg.line(x, bar_y - 8, x, bar_y + bar_h + 8, stroke="#cc0000")
    svg.label(margin, height - 8, f"{start:%Y-%m-%d}", size=9)
    svg.label(width - margin - 64, height - 8, f"{end:%Y-%m-%d}", size=9)
    return svg


def _segments(modes: ModeSet):
    for mode in modes.modes:
        for start_index, end_index in mode.segments:
            yield (
                modes.series.times[start_index],
                modes.series.times[end_index],
                mode.mode_id,
            )
