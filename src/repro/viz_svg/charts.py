"""SVG renderings of the paper's figure types.

Four chart builders mirroring what the paper plots:

* :func:`heatmap_svg` — the all-pairs Φ matrix as a grayscale grid
  (Figures 2b/3b/5/6b); darker cells mean more similar, as in print;
* :func:`stackplot_svg` — per-catchment shares over time as stacked
  areas (Figures 1/2a/3a/6a);
* :func:`latency_svg` — per-catchment percentile lines (Figure 4);
* :func:`sankey_svg` — hop-level flow bands (Figures 7/8).

All builders return an :class:`~repro.viz_svg.svg.Svg` whose
``to_string()`` is a self-contained SVG document.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping, Optional, Sequence

import numpy as np

from .svg import Svg

__all__ = ["heatmap_svg", "stackplot_svg", "latency_svg", "sankey_svg", "PALETTE"]

# A color-blind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
    "#332288", "#44AA99", "#882255", "#117733",
)

_MARGIN = 48
_TITLE_SPACE = 22


def _gray(value: float) -> str:
    """Grayscale fill: Φ=1 → black (most similar), Φ=0 → white."""
    if np.isnan(value):
        return "#f4c1c1"  # flag missing comparisons softly
    level = int(round((1.0 - float(np.clip(value, 0.0, 1.0))) * 255))
    return f"#{level:02x}{level:02x}{level:02x}"


def _time_labels(times: Optional[Sequence[datetime]], count: int) -> list[str]:
    if times is None:
        return [str(index) for index in range(count)]
    return [f"{when:%Y-%m-%d}" for when in times]


def heatmap_svg(
    similarity: np.ndarray,
    times: Optional[Sequence[datetime]] = None,
    cell: int = 6,
    title: str = "pairwise similarity Φ",
    max_cells: int = 150,
) -> Svg:
    """The all-pairs Φ heatmap as an SVG grid with time ticks.

    Matrices wider than ``max_cells`` are block-mean downsampled so a
    five-year study does not emit tens of thousands of rects.
    """
    matrix = np.asarray(similarity, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("similarity must be a square matrix")
    stride = max(1, -(-matrix.shape[0] // max_cells))
    if stride > 1:
        trim = matrix.shape[0] - matrix.shape[0] % stride or matrix.shape[0]
        blocks = matrix[:trim, :trim].reshape(
            trim // stride, stride, trim // stride, stride
        )
        with np.errstate(invalid="ignore"):
            matrix = np.nanmean(blocks, axis=(1, 3))
        if times is not None:
            times = list(times)[::stride][: matrix.shape[0]]
    size = matrix.shape[0]
    plot = size * cell
    svg = Svg(plot + 2 * _MARGIN, plot + 2 * _MARGIN + _TITLE_SPACE)
    svg.label(_MARGIN, 16, title, size=13)
    origin_y = _TITLE_SPACE + _MARGIN - 24
    for row in range(size):
        for column in range(size):
            svg.rect(
                _MARGIN + column * cell,
                origin_y + row * cell,
                cell,
                cell,
                fill=_gray(matrix[row, column]),
            )
    labels = _time_labels(times, size)
    ticks = max(1, size // 6)
    for index in range(0, size, ticks):
        y = origin_y + index * cell + cell
        svg.label(2, y, labels[index], size=8)
        svg.label(
            _MARGIN + index * cell,
            origin_y + plot + 12,
            labels[index],
            size=8,
            transform=f"rotate(45 {_MARGIN + index * cell} {origin_y + plot + 12})",
        )
    return svg


def stackplot_svg(
    aggregates: Mapping[str, np.ndarray],
    times: Optional[Sequence[datetime]] = None,
    width: int = 640,
    height: int = 280,
    title: str = "catchment shares",
) -> Svg:
    """Stacked per-state areas over time (absolute counts)."""
    states = [state for state in aggregates]
    if not states:
        raise ValueError("no aggregates to plot")
    length = len(next(iter(aggregates.values())))
    if length < 2:
        raise ValueError("need at least two observations to plot areas")
    values = np.vstack([np.asarray(aggregates[state], dtype=np.float64) for state in states])
    totals = values.sum(axis=0)
    peak = float(totals.max()) or 1.0

    svg = Svg(width, height + _TITLE_SPACE)
    svg.label(_MARGIN, 16, title, size=13)
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN
    origin_y = _TITLE_SPACE + _MARGIN - 24

    def x_at(index: int) -> float:
        return _MARGIN + plot_w * index / (length - 1)

    def y_at(value: float) -> float:
        return origin_y + plot_h * (1.0 - value / peak)

    cumulative = np.zeros(length)
    for order, state in enumerate(states):
        lower = cumulative.copy()
        cumulative = cumulative + values[order]
        upper_points = [f"{x_at(i):.2f},{y_at(cumulative[i]):.2f}" for i in range(length)]
        lower_points = [
            f"{x_at(i):.2f},{y_at(lower[i]):.2f}" for i in reversed(range(length))
        ]
        svg.add(
            "polygon",
            points=" ".join(upper_points + lower_points),
            fill=PALETTE[order % len(PALETTE)],
            fill_opacity=0.85,
            stroke="none",
        )
    # Axes and legend.
    svg.line(_MARGIN, origin_y, _MARGIN, origin_y + plot_h)
    svg.line(_MARGIN, origin_y + plot_h, _MARGIN + plot_w, origin_y + plot_h)
    svg.label(4, origin_y + 8, f"{peak:.0f}", size=9)
    svg.label(4, origin_y + plot_h, "0", size=9)
    labels = _time_labels(times, length)
    svg.label(_MARGIN, origin_y + plot_h + 14, labels[0], size=9)
    svg.label(_MARGIN + plot_w - 60, origin_y + plot_h + 14, labels[-1], size=9)
    for order, state in enumerate(states):
        x = _MARGIN + 8 + 90 * (order % 6)
        y = origin_y + plot_h + 30 + 14 * (order // 6)
        svg.rect(x, y - 8, 10, 10, fill=PALETTE[order % len(PALETTE)])
        svg.label(x + 14, y, state, size=9)
    return svg


def latency_svg(
    latency: Mapping[str, np.ndarray],
    times: Optional[Sequence[datetime]] = None,
    width: int = 640,
    height: int = 280,
    title: str = "p90 latency per catchment (ms)",
) -> Svg:
    """Per-catchment latency percentile lines with NaN gaps (Figure 4)."""
    sites = [site for site in latency]
    if not sites:
        raise ValueError("no latency series to plot")
    length = len(next(iter(latency.values())))
    peak = float(np.nanmax(np.vstack(list(latency.values())))) or 1.0

    svg = Svg(width, height + _TITLE_SPACE)
    svg.label(_MARGIN, 16, title, size=13)
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN
    origin_y = _TITLE_SPACE + _MARGIN - 24

    def x_at(index: int) -> float:
        return _MARGIN + plot_w * index / max(length - 1, 1)

    def y_at(value: float) -> float:
        return origin_y + plot_h * (1.0 - value / peak)

    for order, site in enumerate(sites):
        series = np.asarray(latency[site], dtype=np.float64)
        segment: list[str] = []
        for index in range(length):
            if np.isnan(series[index]):
                if len(segment) > 1:
                    svg.add(
                        "polyline",
                        points=" ".join(segment),
                        fill="none",
                        stroke=PALETTE[order % len(PALETTE)],
                        stroke_width=1.6,
                    )
                segment = []
                continue
            segment.append(f"{x_at(index):.2f},{y_at(series[index]):.2f}")
        if len(segment) > 1:
            svg.add(
                "polyline",
                points=" ".join(segment),
                fill="none",
                stroke=PALETTE[order % len(PALETTE)],
                stroke_width=1.6,
            )
        svg.label(width - _MARGIN + 4, origin_y + 12 + 13 * order, site, size=9,
                  fill=PALETTE[order % len(PALETTE)])
    svg.line(_MARGIN, origin_y, _MARGIN, origin_y + plot_h)
    svg.line(_MARGIN, origin_y + plot_h, _MARGIN + plot_w, origin_y + plot_h)
    svg.label(4, origin_y + 8, f"{peak:.0f}", size=9)
    svg.label(4, origin_y + plot_h, "0", size=9)
    labels = _time_labels(times, length)
    svg.label(_MARGIN, origin_y + plot_h + 14, labels[0], size=9)
    svg.label(_MARGIN + plot_w - 60, origin_y + plot_h + 14, labels[-1], size=9)
    return svg


def sankey_svg(
    flows: Sequence[tuple[int, str, str, float]],
    width: int = 720,
    height: int = 360,
    title: str = "flow topology",
) -> Svg:
    """Hop-level flow bands (Figures 7/8), nodes stacked per level."""
    if not flows:
        raise ValueError("no flows to plot")
    levels = sorted({level for level, _s, _t, _v in flows})
    num_columns = len(levels) + 1

    # Node totals per column: sources at their level, targets at level+1.
    columns: dict[int, dict[str, float]] = {index: {} for index in range(num_columns)}
    for level, source, target, value in flows:
        column = levels.index(level)
        columns[column][source] = columns[column].get(source, 0.0) + value
        columns[column + 1][target] = columns[column + 1].get(target, 0.0) + value

    svg = Svg(width, height + _TITLE_SPACE)
    svg.label(_MARGIN, 16, title, size=13)
    plot_w = width - 2 * _MARGIN
    plot_h = height - 2 * _MARGIN
    origin_y = _TITLE_SPACE + _MARGIN - 24
    node_w = 12

    positions: dict[tuple[int, str], tuple[float, float, float]] = {}
    colors: dict[str, str] = {}
    for column in range(num_columns):
        names = sorted(columns[column], key=lambda name: -columns[column][name])
        total = sum(columns[column].values()) or 1.0
        x = _MARGIN + plot_w * column / max(num_columns - 1, 1)
        cursor = origin_y
        for name in names:
            share = columns[column][name] / total
            node_h = max(share * (plot_h - 4 * len(names)), 2.0)
            if name not in colors:
                colors[name] = PALETTE[len(colors) % len(PALETTE)]
            svg.rect(x, cursor, node_w, node_h, fill=colors[name])
            if node_h > 9:
                svg.label(x + node_w + 3, cursor + node_h / 2 + 3, name, size=8)
            positions[(column, name)] = (x, cursor, node_h)
            cursor += node_h + 4

    # Bands: straight quads from source right edge to target left edge.
    offsets: dict[tuple[int, str], float] = {}
    for level, source, target, value in sorted(flows):
        column = levels.index(level)
        sx, sy, sh = positions[(column, source)]
        tx, ty, th = positions[(column + 1, target)]
        source_total = columns[column][source]
        target_total = columns[column + 1][target]
        s_off = offsets.get((column, source), 0.0)
        t_off = offsets.get((column + 1, target), 0.0)
        s_height = sh * value / source_total
        t_height = th * value / target_total
        points = (
            f"{sx + node_w:.1f},{sy + s_off:.1f} "
            f"{tx:.1f},{ty + t_off:.1f} "
            f"{tx:.1f},{ty + t_off + t_height:.1f} "
            f"{sx + node_w:.1f},{sy + s_off + s_height:.1f}"
        )
        svg.add(
            "polygon",
            points=points,
            fill=colors[source],
            fill_opacity=0.35,
            stroke="none",
        )
        offsets[(column, source)] = s_off + s_height
        offsets[(column + 1, target)] = t_off + t_height
    return svg
