"""A minimal SVG document builder.

Just enough scalable-vector scaffolding for the chart modules: an
element tree with attribute escaping, a fluent ``add`` API and string
serialization. No external dependencies, always well-formed XML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union
from xml.sax.saxutils import escape, quoteattr

__all__ = ["Element", "Svg"]

Number = Union[int, float]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Element:
    """One SVG element with attributes, children and optional text."""

    tag: str
    attributes: dict[str, object] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: Optional[str] = None

    def add(self, tag: str, **attributes: object) -> "Element":
        """Append a child element and return it (for chaining)."""
        child = Element(tag, dict(attributes))
        self.children.append(child)
        return child

    def add_text(self, tag: str, content: str, **attributes: object) -> "Element":
        child = self.add(tag, **attributes)
        child.text = content
        return child

    def to_string(self) -> str:
        rendered_attributes = "".join(
            f" {name.replace('_', '-')}={quoteattr(_format_value(value))}"
            for name, value in self.attributes.items()
        )
        if not self.children and self.text is None:
            return f"<{self.tag}{rendered_attributes}/>"
        inner = "".join(child.to_string() for child in self.children)
        if self.text is not None:
            inner += escape(self.text)
        return f"<{self.tag}{rendered_attributes}>{inner}</{self.tag}>"


class Svg:
    """A top-level SVG document of fixed pixel size."""

    def __init__(self, width: Number, height: Number) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("SVG dimensions must be positive")
        self.width = width
        self.height = height
        self.root = Element(
            "svg",
            {
                "xmlns": "http://www.w3.org/2000/svg",
                "width": width,
                "height": height,
                "viewBox": f"0 0 {_format_value(width)} {_format_value(height)}",
                "font-family": "sans-serif",
            },
        )

    def add(self, tag: str, **attributes: object) -> Element:
        return self.root.add(tag, **attributes)

    def add_text(self, tag: str, content: str, **attributes: object) -> Element:
        return self.root.add_text(tag, content, **attributes)

    def rect(self, x: Number, y: Number, w: Number, h: Number, fill: str, **extra: object) -> Element:
        return self.add("rect", x=x, y=y, width=w, height=h, fill=fill, **extra)

    def line(self, x1: Number, y1: Number, x2: Number, y2: Number, stroke: str = "#444", **extra: object) -> Element:
        return self.add("line", x1=x1, y1=y1, x2=x2, y2=y2, stroke=stroke, **extra)

    def label(self, x: Number, y: Number, content: str, size: int = 10, **extra: object) -> Element:
        return self.add_text("text", content, x=x, y=y, font_size=size, **extra)

    def to_string(self) -> str:
        return self.root.to_string()

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_string())
