"""Client address space: /24 blocks homed in stub ASes.

Every study in the paper identifies "networks" with /24 blocks and asks
which catchment each block lands in. In the simulator a block's routing
is its home AS's routing, so this module owns the block↔AS assignment:
a Zipf-ish allocation of /24 blocks to stub ASes (eyeball networks are
much bigger than small enterprises) carved out of globally unique
address space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..net.addr import IPv4Address, IPv4Prefix
from ..net.trie import PrefixTrie
from .table import RibEntry, RoutingTable
from .topology import ASTopology

__all__ = ["ClientSpace", "allocate_clients"]


@dataclass
class ClientSpace:
    """The /24 blocks of a scenario and their home ASes."""

    blocks: list[IPv4Prefix]
    home_as: dict[IPv4Prefix, int]
    _trie: PrefixTrie[int] = field(default_factory=PrefixTrie, repr=False)

    def __post_init__(self) -> None:
        for block, asn in self.home_as.items():
            self._trie.insert(block, asn)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[IPv4Prefix]:
        return iter(self.blocks)

    def as_of(self, block: IPv4Prefix) -> int:
        return self.home_as[block]

    def as_of_address(self, address: IPv4Address | int) -> Optional[int]:
        return self._trie.lookup(address)

    def blocks_of(self, asn: int) -> list[IPv4Prefix]:
        return [block for block in self.blocks if self.home_as[block] == asn]

    def network_ids(self) -> list[str]:
        """Block identifiers in the string form routing vectors use."""
        return [str(block) for block in self.blocks]

    def routing_table(self, topology: ASTopology) -> RoutingTable:
        """A RouteViews-style table announcing each AS's aggregate space.

        Contiguous runs of blocks homed in one AS are merged into their
        covering prefixes, with a synthetic (provider, origin) AS path.
        """
        table = RoutingTable()
        for block in self.blocks:
            asn = self.home_as[block]
            providers = sorted(topology.providers_of(asn)) if asn in topology else []
            path = (providers[0], asn) if providers else (asn,)
            table.add(RibEntry(block, path))
        return table


def allocate_clients(
    ases: Sequence[int],
    blocks_per_as: Sequence[int],
    base: IPv4Prefix = IPv4Prefix.from_string("20.0.0.0/8"),
) -> ClientSpace:
    """Assign each AS a contiguous run of /24 blocks out of ``base``."""
    if len(ases) != len(blocks_per_as):
        raise ValueError("ases and blocks_per_as differ in length")
    total = sum(blocks_per_as)
    if total > base.num_blocks24:
        raise ValueError(
            f"{total} blocks do not fit in {base} ({base.num_blocks24} /24s)"
        )
    blocks: list[IPv4Prefix] = []
    home: dict[IPv4Prefix, int] = {}
    cursor = base.network
    for asn, count in zip(ases, blocks_per_as):
        for _ in range(count):
            block = IPv4Prefix(cursor, 24)
            blocks.append(block)
            home[block] = asn
            cursor += 1 << 8
    return ClientSpace(blocks, home)


def synthetic_traffic(
    rng: random.Random,
    blocks: Sequence[IPv4Prefix],
    alpha: float = 1.2,
    total_volume: float = 1_000_000.0,
) -> dict[str, float]:
    """A Zipf-like per-block traffic table for §2.5-style weighting.

    Real services weight networks by historical traffic; the heavy tail
    (a few eyeball blocks send most queries) is the property that makes
    traffic weighting differ from address counting, so the synthetic
    table is deliberately skewed. Keys are block strings, matching
    routing-vector network ids.
    """
    if not blocks:
        return {}
    ranks = list(range(1, len(blocks) + 1))
    rng.shuffle(ranks)
    raw = [1.0 / (rank**alpha) for rank in ranks]
    scale = total_volume / sum(raw)
    return {str(block): value * scale for block, value in zip(blocks, raw)}


def zipf_block_counts(
    rng: random.Random,
    num_ases: int,
    total_blocks: int,
    alpha: float = 1.1,
) -> list[int]:
    """A Zipf-like split of ``total_blocks`` across ``num_ases`` (each ≥ 1)."""
    if num_ases <= 0:
        raise ValueError("need at least one AS")
    if total_blocks < num_ases:
        raise ValueError("need at least one block per AS")
    raw = [1.0 / (rank ** alpha) for rank in range(1, num_ases + 1)]
    rng.shuffle(raw)
    scale = (total_blocks - num_ases) / sum(raw)
    counts = [1 + int(value * scale) for value in raw]
    # Distribute the rounding remainder deterministically.
    shortfall = total_blocks - sum(counts)
    for index in range(abs(shortfall)):
        counts[index % num_ases] += 1 if shortfall > 0 else -1
    return counts
