"""Scripted routing events and scenario evolution.

The paper's datasets contain operator actions (site drains, traffic
engineering, site adds/moves) and third-party changes (transit link
failures, cable cuts). This module expresses those as typed events over
a base topology + announcement set, and evaluates the effective routing
configuration at any time.

Windowed events (drains, TE, link outages) are active during
``[start, end)``; permanent events (site add/remove/move, link
add/remove) take effect at ``at`` and persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime

from .policy import Announcement, Scope
from .routing import RoutingOutcome, compute_routes
from .topology import ASTopology

__all__ = [
    "SiteDrain",
    "TrafficEngineering",
    "ScopeChange",
    "LinkOutage",
    "SiteAdd",
    "SiteRemove",
    "SiteMove",
    "LinkAdd",
    "LinkRemove",
    "InternalMaintenance",
    "RoutingScenario",
]


@dataclass(frozen=True, slots=True)
class SiteDrain:
    """Anycast site withdrawn during a maintenance window."""

    site: str
    start: datetime
    end: datetime


@dataclass(frozen=True, slots=True)
class TrafficEngineering:
    """Origin-side prepending toward one neighbor during a window."""

    site: str
    neighbor: int
    prepend: int
    start: datetime
    end: datetime


@dataclass(frozen=True, slots=True)
class ScopeChange:
    """An announcement's propagation scope changes during a window.

    Scoping a site to its customer cone (community/no-export tricks in
    the real world) is how operators actually shrink an anycast site's
    catchment — prepending cannot defeat the customer>peer>provider
    preference hierarchy.
    """

    site: str
    scope: Scope
    start: datetime
    end: datetime


@dataclass(frozen=True, slots=True)
class LinkOutage:
    """An AS-AS link down during a window (cable cut, maintenance)."""

    a: int
    b: int
    start: datetime
    end: datetime


@dataclass(frozen=True, slots=True)
class SiteAdd:
    """A new anycast site comes online at ``at`` and stays."""

    announcement: Announcement
    at: datetime


@dataclass(frozen=True, slots=True)
class SiteRemove:
    """A site is permanently decommissioned at ``at``."""

    site: str
    at: datetime


@dataclass(frozen=True, slots=True)
class SiteMove:
    """A site moves to a new origin AS (same label) at ``at``."""

    site: str
    new_origin: int
    at: datetime


@dataclass(frozen=True, slots=True)
class LinkAdd:
    """A permanent new link from ``at`` on; relationship given by kind."""

    provider: int
    customer: int
    at: datetime
    peer: bool = False  # when True, provider/customer are just endpoints


@dataclass(frozen=True, slots=True)
class LinkRemove:
    """A link permanently removed at ``at``."""

    a: int
    b: int
    at: datetime


@dataclass(frozen=True, slots=True)
class InternalMaintenance:
    """An operator action with no externally visible routing effect.

    Used by the validation scenario (Table 4): these events appear in
    the ground-truth log but must *not* change catchments.
    """

    site: str
    start: datetime
    end: datetime


Event = (
    SiteDrain
    | TrafficEngineering
    | ScopeChange
    | LinkOutage
    | SiteAdd
    | SiteRemove
    | SiteMove
    | LinkAdd
    | LinkRemove
    | InternalMaintenance
)


@dataclass
class RoutingScenario:
    """A base configuration plus a script of events.

    ``outcome_at(t)`` computes (and caches by effective-configuration
    signature) the routing outcome at time ``t``, so long stretches with
    no active events cost one computation total.
    """

    topology: ASTopology
    announcements: list[Announcement]
    events: list[Event] = field(default_factory=list)
    _cache: dict[object, RoutingOutcome] = field(default_factory=dict, repr=False)

    def add_event(self, event: Event) -> None:
        self.events.append(event)
        # Cache keys are event-index tuples; any edit invalidates them.
        self._cache.clear()

    def active_events_at(self, when: datetime) -> tuple[int, ...]:
        """Indices of events in effect at ``when`` — the config signature.

        The effective configuration is a pure function of the base
        configuration and this tuple, so it keys the outcome cache
        without structural topology comparisons.
        """
        active = []
        for index, event in enumerate(self.events):
            if isinstance(event, (SiteAdd, SiteRemove, SiteMove, LinkAdd, LinkRemove)):
                if event.at <= when:
                    active.append(index)
            elif isinstance(event, InternalMaintenance):
                continue
            else:
                if event.start <= when < event.end:
                    active.append(index)
        return tuple(active)

    def configuration_at(
        self, when: datetime
    ) -> tuple[ASTopology, list[Announcement], frozenset[frozenset[int]]]:
        """The effective topology, announcements and down links at ``when``."""
        topo = self.topology
        topo_mutated = False
        anns: dict[str, Announcement] = {}
        for ann in self.announcements:
            anns[ann.label] = ann
        down: set[frozenset[int]] = set()

        def mutable_topo() -> ASTopology:
            nonlocal topo, topo_mutated
            if not topo_mutated:
                topo = topo.copy()
                topo_mutated = True
            return topo

        for event in self.events:
            if isinstance(event, SiteAdd):
                if event.at <= when:
                    anns[event.announcement.label] = event.announcement
            elif isinstance(event, SiteRemove):
                if event.at <= when:
                    anns.pop(event.site, None)
            elif isinstance(event, SiteMove):
                if event.at <= when and event.site in anns:
                    anns[event.site] = replace(anns[event.site], origin=event.new_origin)
            elif isinstance(event, SiteDrain):
                if event.start <= when < event.end:
                    anns.pop(event.site, None)
            elif isinstance(event, TrafficEngineering):
                if event.start <= when < event.end and event.site in anns:
                    ann = anns[event.site]
                    prepend = dict(ann.prepend)
                    prepend[event.neighbor] = event.prepend
                    anns[event.site] = replace(ann, prepend=prepend)
            elif isinstance(event, ScopeChange):
                if event.start <= when < event.end and event.site in anns:
                    anns[event.site] = replace(anns[event.site], scope=event.scope)
            elif isinstance(event, LinkOutage):
                if event.start <= when < event.end:
                    down.add(frozenset((event.a, event.b)))
            elif isinstance(event, LinkAdd):
                if event.at <= when:
                    t = mutable_topo()
                    if event.peer:
                        t.add_peer_link(event.provider, event.customer)
                    else:
                        t.add_customer_link(event.provider, event.customer)
            elif isinstance(event, LinkRemove):
                if event.at <= when:
                    mutable_topo().remove_link(event.a, event.b)
            elif isinstance(event, InternalMaintenance):
                pass  # by definition, no routing effect
            else:  # pragma: no cover - exhaustive over Event
                raise TypeError(f"unknown event type: {event!r}")

        return topo, sorted(anns.values(), key=lambda a: a.label), frozenset(down)

    def outcome_at(self, when: datetime) -> RoutingOutcome:
        key = self.active_events_at(when)
        outcome = self._cache.get(key)
        if outcome is None:
            topo, anns, down = self.configuration_at(when)
            outcome = compute_routes(topo, anns, disabled_links=[tuple(pair) for pair in down])
            self._cache[key] = outcome
        return outcome

    def invalidate_cache(self) -> None:
        """Drop cached outcomes — required after editing ``events`` in place."""
        self._cache.clear()

    def active_sites_at(self, when: datetime) -> list[str]:
        _topo, anns, _down = self.configuration_at(when)
        return [ann.label for ann in anns]
