"""Gao–Rexford routing policy: preference ranks and export rules.

The simulator implements the canonical economic policy model:

* **Preference**: routes learned from customers beat routes learned from
  peers, which beat routes learned from providers; ties break on shorter
  AS path, then on lower next-hop ASN (deterministic).
* **Export** (valley-free): routes learned from customers (and
  originated routes) are exported to everyone; routes learned from peers
  or providers are exported only to customers.

Announcements can carry traffic-engineering state: per-neighbor AS-path
prepending and a propagation scope, which the evaluation scenarios use
to model site drains, TE shifts and local-only anycast sites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["RouteKind", "Route", "Announcement", "Scope"]


class RouteKind(enum.IntEnum):
    """How a route was learned; lower value = more preferred."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


class Scope(enum.Enum):
    """How far an announcement propagates from its origin."""

    GLOBAL = "global"
    CUSTOMER_CONE = "customer-cone"  # local-only anycast site


@dataclass(frozen=True, slots=True)
class Route:
    """A selected route at some AS toward an announcement's origin."""

    label: str  # catchment label (site name) of the origin
    origin: int  # origin ASN
    path: tuple[int, ...]  # AS path, self first, origin last
    kind: RouteKind
    metric: int  # effective path length including prepending

    @property
    def next_hop(self) -> int:
        """The neighbor this route was learned from (self for origins)."""
        return self.path[1] if len(self.path) > 1 else self.path[0]

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: most-preferred route sorts first."""
        return (int(self.kind), self.metric, self.next_hop)


@dataclass(frozen=True)
class Announcement:
    """A prefix announcement from one origin AS, labelled with a site."""

    origin: int
    label: str
    prepend: dict[int, int] = field(default_factory=dict)  # neighbor -> extra hops
    scope: Scope = Scope.GLOBAL

    def export_metric(self, base_metric: int, neighbor: int) -> int:
        """Metric as seen by ``neighbor`` after origin-side prepending."""
        return base_metric + 1 + self.prepend.get(neighbor, 0)


def better(a: Route, b: Route) -> Route:
    """The more preferred of two routes to the same destination."""
    return a if a.preference_key() <= b.preference_key() else b
