"""Per-announcement best-path computation over an AS topology.

Given a set of :class:`~repro.bgp.policy.Announcement` objects for one
destination prefix (several, for anycast), :func:`compute_routes` runs
the standard three-phase valley-free propagation and returns the route
each AS selects. The AS-level catchment of the prefix is then simply
``route.label`` per AS.

The three phases implement Gao–Rexford preference exactly:

1. **Customer routes** ride up provider links from the origins; each AS
   adopts the best (shortest metric, lowest next-hop) customer route,
   processed in metric order with a heap so adopted routes are final.
2. **Peer routes** travel one hop across peer links from ASes holding
   origin/customer routes; only ASes without a route adopt them.
3. **Provider routes** ride down customer links from every routed AS,
   again in metric order.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence

from .policy import Announcement, Route, RouteKind, Scope
from .topology import ASTopology

__all__ = ["compute_routes", "catchments_from_routes", "RoutingOutcome"]


class RoutingOutcome:
    """Result of a routing computation: per-AS selected routes."""

    def __init__(self, routes: dict[int, Route]) -> None:
        self.routes = routes

    def __getitem__(self, asn: int) -> Route:
        return self.routes[asn]

    def get(self, asn: int) -> Optional[Route]:
        return self.routes.get(asn)

    def label_of(self, asn: int, default: str = "unreach") -> str:
        route = self.routes.get(asn)
        return route.label if route else default

    def path_of(self, asn: int) -> Optional[tuple[int, ...]]:
        route = self.routes.get(asn)
        return route.path if route else None

    def __len__(self) -> int:
        return len(self.routes)


def compute_routes(
    topo: ASTopology,
    announcements: Sequence[Announcement],
    disabled_links: Optional[Iterable[tuple[int, int]]] = None,
) -> RoutingOutcome:
    """Select a best route at every AS for one (possibly anycast) prefix.

    ``disabled_links`` is a set of AS pairs (order-insensitive) that are
    down for this computation — the hook used by cable-cut and
    maintenance events.
    """
    down: set[frozenset[int]] = (
        {frozenset(pair) for pair in disabled_links} if disabled_links else set()
    )

    def link_up(a: int, b: int) -> bool:
        return frozenset((a, b)) not in down

    routes: dict[int, Route] = {}

    by_origin: dict[int, Announcement] = {}
    for ann in announcements:
        if ann.origin not in topo:
            raise KeyError(f"announcement origin AS{ann.origin} not in topology")
        if ann.origin in by_origin:
            raise ValueError(f"duplicate announcement from AS{ann.origin}")
        by_origin[ann.origin] = ann
        routes[ann.origin] = Route(
            label=ann.label,
            origin=ann.origin,
            path=(ann.origin,),
            kind=RouteKind.ORIGIN,
            metric=0,
        )

    # Heap entries: (metric, next_hop_asn, at_asn, route). The heap pops
    # candidate routes in preference order within a phase, so the first
    # candidate an AS sees is its best and can be committed immediately.
    Candidate = tuple[int, int, int, Route]

    def offer_from_origin(heap: list[Candidate], origin: int, to_asn: int) -> None:
        ann = by_origin[origin]
        metric = ann.export_metric(0, to_asn)
        route = Route(ann.label, origin, (to_asn, origin), RouteKind.CUSTOMER, metric)
        heapq.heappush(heap, (metric, origin, to_asn, route))

    # -- phase 1: customer routes ride up provider links ------------------
    heap: list[Candidate] = []
    for origin, ann in by_origin.items():
        if ann.scope is Scope.CUSTOMER_CONE:
            continue  # local-only sites do not export to providers
        for provider in topo.providers_of(origin):
            if link_up(origin, provider):
                offer_from_origin(heap, origin, provider)

    while heap:
        metric, _next_hop, at_asn, route = heapq.heappop(heap)
        existing = routes.get(at_asn)
        if existing is not None:
            continue  # origins and already-committed ASes keep their route
        routes[at_asn] = Route(route.label, route.origin, route.path, RouteKind.CUSTOMER, metric)
        for provider in topo.providers_of(at_asn):
            if provider not in routes and link_up(at_asn, provider):
                heapq.heappush(
                    heap,
                    (
                        metric + 1,
                        at_asn,
                        provider,
                        Route(
                            route.label,
                            route.origin,
                            (provider,) + route.path,
                            RouteKind.CUSTOMER,
                            metric + 1,
                        ),
                    ),
                )

    # -- phase 2: peer routes, one hop across peer links ------------------
    peer_candidates: dict[int, Route] = {}
    for asn in sorted(routes):
        route = routes[asn]
        if route.kind not in (RouteKind.ORIGIN, RouteKind.CUSTOMER):
            continue
        ann = by_origin.get(asn) if route.kind is RouteKind.ORIGIN else None
        if ann is not None and ann.scope is Scope.CUSTOMER_CONE:
            continue
        for peer in topo.peers_of(asn):
            if peer in routes or not link_up(asn, peer):
                continue
            if ann is not None:
                metric = ann.export_metric(route.metric, peer)
            else:
                metric = route.metric + 1
            candidate = Route(
                route.label, route.origin, (peer,) + route.path, RouteKind.PEER, metric
            )
            best = peer_candidates.get(peer)
            if best is None or candidate.preference_key() < best.preference_key():
                peer_candidates[peer] = candidate
    routes.update(peer_candidates)

    # -- phase 3: provider routes ride down customer links -----------------
    heap = []
    for asn in sorted(routes):
        route = routes[asn]
        ann = by_origin.get(asn) if route.kind is RouteKind.ORIGIN else None
        for customer in topo.customers_of(asn):
            if customer in routes or not link_up(asn, customer):
                continue
            if ann is not None:
                metric = ann.export_metric(route.metric, customer)
            else:
                metric = route.metric + 1
            candidate = Route(
                route.label,
                route.origin,
                (customer,) + route.path,
                RouteKind.PROVIDER,
                metric,
            )
            heapq.heappush(heap, (metric, asn, customer, candidate))

    while heap:
        metric, _next_hop, at_asn, route = heapq.heappop(heap)
        if at_asn in routes:
            continue
        routes[at_asn] = route
        for customer in topo.customers_of(at_asn):
            if customer not in routes and link_up(at_asn, customer):
                heapq.heappush(
                    heap,
                    (
                        metric + 1,
                        at_asn,
                        customer,
                        Route(
                            route.label,
                            route.origin,
                            (customer,) + route.path,
                            RouteKind.PROVIDER,
                            metric + 1,
                        ),
                    ),
                )

    return RoutingOutcome(routes)


def catchments_from_routes(
    outcome: RoutingOutcome,
    ases: Iterable[int],
    unreachable: str = "unreach",
) -> dict[int, str]:
    """Map each requested AS to the label (site) of its selected route."""
    return {asn: outcome.label_of(asn, unreachable) for asn in ases}
