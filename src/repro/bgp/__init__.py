"""AS-level BGP substrate: topology, Gao-Rexford policy routing, events."""

from .clients import ClientSpace, allocate_clients, synthetic_traffic, zipf_block_counts
from .convergence import convergence_steps
from .updates import UpdateMessage, diff_outcomes, update_stream
from .events import (
    InternalMaintenance,
    LinkAdd,
    LinkOutage,
    LinkRemove,
    RoutingScenario,
    ScopeChange,
    SiteAdd,
    SiteDrain,
    SiteMove,
    SiteRemove,
    TrafficEngineering,
)
from .policy import Announcement, Route, RouteKind, Scope
from .routing import RoutingOutcome, catchments_from_routes, compute_routes
from .table import RibEntry, RoutingTable, dump_table, parse_table, routable_blocks
from .topology import ASNode, ASTopology, Relationship, generate_internet_like

__all__ = [
    "Announcement",
    "ClientSpace",
    "allocate_clients",
    "zipf_block_counts",
    "ASNode",
    "ASTopology",
    "InternalMaintenance",
    "LinkAdd",
    "LinkOutage",
    "LinkRemove",
    "Relationship",
    "RibEntry",
    "Route",
    "RouteKind",
    "RoutingOutcome",
    "RoutingScenario",
    "RoutingTable",
    "Scope",
    "ScopeChange",
    "SiteAdd",
    "SiteDrain",
    "SiteMove",
    "SiteRemove",
    "TrafficEngineering",
    "UpdateMessage",
    "catchments_from_routes",
    "convergence_steps",
    "diff_outcomes",
    "synthetic_traffic",
    "update_stream",
    "compute_routes",
    "dump_table",
    "generate_internet_like",
    "parse_table",
    "routable_blocks",
]
