"""BGP UPDATE streams: the dynamic view a route collector archives.

RIB snapshots (``repro.bgp.table``) are the paper's RouteViews input;
collectors also archive the *update stream* — per-peer announcements
and withdrawals as routing changes. This module diffs two routing
outcomes into the updates a collector's peers would have sent, and
serializes them in a ``bgpdump``-style BGP4MP line format.

The stream view is what makes short-lived events (the paper's
tens-of-minutes drains) visible between RIB snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterator, Optional, Sequence

from ..net.addr import IPv4Prefix
from .events import RoutingScenario
from .routing import RoutingOutcome

__all__ = ["UpdateMessage", "diff_outcomes", "update_stream"]


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """One announcement or withdrawal as seen from one peer."""

    peer_asn: int
    prefix: IPv4Prefix
    announce: bool  # False = withdrawal
    as_path: tuple[int, ...] = ()
    timestamp: int = 0

    def to_line(self) -> str:
        if self.announce:
            path = " ".join(str(asn) for asn in self.as_path)
            return f"BGP4MP|{self.timestamp}|A|{self.peer_asn}|{self.prefix}|{path}"
        return f"BGP4MP|{self.timestamp}|W|{self.peer_asn}|{self.prefix}|"

    @classmethod
    def from_line(cls, line: str) -> "UpdateMessage":
        fields = line.strip().split("|")
        if len(fields) != 6 or fields[0] != "BGP4MP":
            raise ValueError(f"not a BGP4MP line: {line!r}")
        announce = fields[2] == "A"
        if not announce and fields[2] != "W":
            raise ValueError(f"unknown update type {fields[2]!r}")
        path = tuple(int(token) for token in fields[5].split()) if fields[5] else ()
        if announce and not path:
            raise ValueError(f"announcement without a path: {line!r}")
        return cls(
            peer_asn=int(fields[3]),
            prefix=IPv4Prefix.from_string(fields[4]),
            announce=announce,
            as_path=path,
            timestamp=int(fields[1]),
        )


def diff_outcomes(
    before: Optional[RoutingOutcome],
    after: RoutingOutcome,
    peers: Sequence[int],
    prefix: IPv4Prefix,
    timestamp: int = 0,
) -> list[UpdateMessage]:
    """Updates each peer emits moving from ``before`` to ``after``.

    ``before=None`` models a session reset: every routed peer
    re-announces. A peer whose selected path is unchanged emits
    nothing, matching real BGP's incremental behaviour.
    """
    updates: list[UpdateMessage] = []
    for peer in peers:
        old = before.get(peer) if before is not None else None
        new = after.get(peer)
        if new is None:
            if old is not None:
                updates.append(UpdateMessage(peer, prefix, False, (), timestamp))
            continue
        if old is None or old.path != new.path:
            updates.append(UpdateMessage(peer, prefix, True, new.path, timestamp))
    return updates


def update_stream(
    scenario: RoutingScenario,
    peers: Sequence[int],
    times: Sequence[datetime],
    prefix: IPv4Prefix,
) -> Iterator[UpdateMessage]:
    """The full update stream over a schedule of evaluation times.

    The first time behaves as a session establishment (all announce);
    subsequent times yield only the diffs.
    """
    previous: Optional[RoutingOutcome] = None
    for when in times:
        outcome = scenario.outcome_at(when)
        yield from diff_outcomes(
            previous, outcome, peers, prefix, timestamp=int(when.timestamp())
        )
        previous = outcome
