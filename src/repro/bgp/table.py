"""RIB entries and RouteViews-style table dumps.

The paper derives its set of routable /24 blocks from a RouteViews BGP
table. We mirror that workflow: prefix ownership in a scenario can be
dumped to (and parsed back from) a pipe-separated text format modelled
on ``bgpdump -m`` TABLE_DUMP2 lines, and the set of routable /24s is
extracted from such a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from ..net.addr import IPv4Prefix
from ..net.trie import PrefixTrie

__all__ = ["RibEntry", "RoutingTable", "dump_table", "parse_table", "routable_blocks"]


@dataclass(frozen=True, slots=True)
class RibEntry:
    """One best-path RIB entry as a collector would record it."""

    prefix: IPv4Prefix
    as_path: tuple[int, ...]
    timestamp: int = 0

    @property
    def origin_as(self) -> int:
        return self.as_path[-1]

    def to_line(self) -> str:
        """TABLE_DUMP2-style pipe-separated line."""
        path = " ".join(str(asn) for asn in self.as_path)
        return f"TABLE_DUMP2|{self.timestamp}|B|{self.prefix}|{path}|IGP"

    @classmethod
    def from_line(cls, line: str) -> "RibEntry":
        fields = line.strip().split("|")
        if len(fields) < 5 or fields[0] != "TABLE_DUMP2":
            raise ValueError(f"not a TABLE_DUMP2 line: {line!r}")
        prefix = IPv4Prefix.from_string(fields[3])
        as_path = tuple(int(tok) for tok in fields[4].split())
        if not as_path:
            raise ValueError(f"empty AS path in line: {line!r}")
        return cls(prefix, as_path, int(fields[1]))


class RoutingTable:
    """A collection of RIB entries with longest-prefix-match lookup."""

    def __init__(self, entries: Iterable[RibEntry] = ()) -> None:
        self._trie: PrefixTrie[RibEntry] = PrefixTrie()
        self._entries: list[RibEntry] = []
        for entry in entries:
            self.add(entry)

    def add(self, entry: RibEntry) -> None:
        self._entries.append(entry)
        self._trie.insert(entry.prefix, entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RibEntry]:
        return iter(self._entries)

    def lookup(self, address: int) -> RibEntry | None:
        return self._trie.lookup(address)

    def origin_of(self, prefix: IPv4Prefix) -> int | None:
        """Origin AS of the most-specific covering entry, if any."""
        match = self._trie.covering(prefix)
        return match[1].origin_as if match else None


def dump_table(table: RoutingTable, stream: TextIO) -> int:
    """Write a table as TABLE_DUMP2 lines; returns entry count."""
    count = 0
    for entry in table:
        stream.write(entry.to_line() + "\n")
        count += 1
    return count


def parse_table(stream: TextIO) -> RoutingTable:
    """Parse TABLE_DUMP2 lines, skipping blanks and comments."""
    table = RoutingTable()
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        table.add(RibEntry.from_line(line))
    return table


def routable_blocks(table: RoutingTable) -> list[IPv4Prefix]:
    """All /24 blocks covered by any table entry, deduplicated, sorted.

    This mirrors the paper's derivation of its 1.6M-target hitlist from
    the RouteViews table.
    """
    seen: set[IPv4Prefix] = set()
    for entry in table:
        for block in entry.prefix.blocks24():
            seen.add(block)
    return sorted(seen)
