"""BGP convergence transients: path exploration between two steady states.

Steady-state routing computations jump instantaneously from one
configuration to the next, but real BGP converges over seconds to
minutes, and during convergence some networks transiently lose
reachability — the paper's Table 3 shows exactly this as a large
STR→err→NAP two-step. This module synthesizes the intermediate
catchment maps between two outcomes:

* ASes whose selected route is unchanged never flap (BGP is
  incremental);
* ASes whose route changes pass through a transient state before
  adopting the new route; the farther their *new* route's origin, the
  later they settle (update propagation is hop-by-hop);
* while unsettled, an AS either still uses its stale route or has
  withdrawn it and has none (``unreach``), the mix controlled by
  ``withdraw_first`` (path-hunting vs make-before-break).
"""

from __future__ import annotations

import random

from .routing import RoutingOutcome

__all__ = ["convergence_steps"]

UNREACHABLE = "unreach"


def convergence_steps(
    before: RoutingOutcome,
    after: RoutingOutcome,
    rng: random.Random,
    rounds: int = 2,
    withdraw_first: float = 0.5,
) -> list[dict[int, str]]:
    """Intermediate catchment maps between two steady states.

    Returns ``rounds`` maps; the last one equals the ``after`` steady
    state. Earlier maps show changed ASes either still on their stale
    label or transiently unreachable.
    """
    if rounds < 1:
        raise ValueError("need at least one convergence round")
    if not 0.0 <= withdraw_first <= 1.0:
        raise ValueError("withdraw_first must be in [0, 1]")

    ases = sorted(set(before.routes) | set(after.routes))
    changed = [
        asn
        for asn in ases
        if (before.get(asn).path if before.get(asn) else None)
        != (after.get(asn).path if after.get(asn) else None)
    ]

    # Settling round per changed AS: proportional to its new path
    # length (updates propagate outward from the change), jittered.
    settle_round: dict[int, int] = {}
    max_len = max(
        (len(after[asn].path) for asn in changed if after.get(asn)), default=1
    )
    for asn in changed:
        route = after.get(asn)
        depth = len(route.path) / max_len if route else 1.0
        base = depth * (rounds - 1)
        settle_round[asn] = min(
            rounds - 1, max(0, int(base + rng.uniform(0.0, 1.0)))
        )

    withdrawn = {asn for asn in changed if rng.random() < withdraw_first}

    steps: list[dict[int, str]] = []
    for round_index in range(rounds):
        catchments: dict[int, str] = {}
        for asn in ases:
            new_route = after.get(asn)
            new_label = new_route.label if new_route else UNREACHABLE
            if asn not in changed or round_index >= settle_round[asn]:
                catchments[asn] = new_label
                continue
            old_route = before.get(asn)
            if asn in withdrawn or old_route is None:
                catchments[asn] = UNREACHABLE
            else:
                catchments[asn] = old_route.label  # stale but still used
        steps.append(catchments)
    if steps:
        steps[-1] = {
            asn: (after.get(asn).label if after.get(asn) else UNREACHABLE)
            for asn in ases
        }
    return steps
