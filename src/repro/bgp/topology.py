"""AS-level topology with business relationships.

Inter-domain routing in the paper's world is the product of per-AS
policies over customer/provider/peer relationships (Gao–Rexford). This
module provides the graph those policies run over:

* :class:`ASTopology` — a mutable AS graph with typed edges and
  per-AS geographic placement;
* :func:`generate_internet_like` — a seeded generator producing a
  tiered, regionally structured topology (tier-1 clique, mid-tier
  transit, stub eyeball/enterprise ASes) of configurable size.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..net.geo import CITIES, GeoPoint

__all__ = ["Relationship", "ASNode", "ASTopology", "generate_internet_like"]


class Relationship(enum.Enum):
    """Business relationship of a directed AS link, from ``a``'s view."""

    CUSTOMER = "customer"  # the neighbor is a's customer
    PROVIDER = "provider"  # the neighbor is a's provider
    PEER = "peer"

    def inverse(self) -> "Relationship":
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


@dataclass(slots=True)
class ASNode:
    """One autonomous system."""

    asn: int
    name: str = ""
    tier: int = 3  # 1 = tier-1 transit, 2 = regional transit, 3 = stub
    location: Optional[GeoPoint] = None


@dataclass
class ASTopology:
    """A mutable AS-relationship graph."""

    nodes: dict[int, ASNode] = field(default_factory=dict)
    _providers: dict[int, set[int]] = field(default_factory=dict)
    _customers: dict[int, set[int]] = field(default_factory=dict)
    _peers: dict[int, set[int]] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_as(
        self,
        asn: int,
        name: str = "",
        tier: int = 3,
        location: Optional[GeoPoint] = None,
    ) -> ASNode:
        if asn in self.nodes:
            raise ValueError(f"AS{asn} already present")
        node = ASNode(asn, name or f"AS{asn}", tier, location)
        self.nodes[asn] = node
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()
        return node

    def _check(self, asn: int) -> None:
        if asn not in self.nodes:
            raise KeyError(f"unknown AS{asn}")

    def add_customer_link(self, provider: int, customer: int) -> None:
        """Add a provider→customer edge (customer pays provider)."""
        self._check(provider)
        self._check(customer)
        if provider == customer:
            raise ValueError("self links not allowed")
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)

    def add_peer_link(self, a: int, b: int) -> None:
        self._check(a)
        self._check(b)
        if a == b:
            raise ValueError("self links not allowed")
        self._peers[a].add(b)
        self._peers[b].add(a)

    def remove_link(self, a: int, b: int) -> bool:
        """Remove any relationship between a and b. True if one existed."""
        removed = False
        if b in self._customers.get(a, ()):
            self._customers[a].discard(b)
            self._providers[b].discard(a)
            removed = True
        if b in self._providers.get(a, ()):
            self._providers[a].discard(b)
            self._customers[b].discard(a)
            removed = True
        if b in self._peers.get(a, ()):
            self._peers[a].discard(b)
            self._peers[b].discard(a)
            removed = True
        return removed

    # -- queries ----------------------------------------------------------

    def __contains__(self, asn: object) -> bool:
        return asn in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def providers_of(self, asn: int) -> frozenset[int]:
        self._check(asn)
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        self._check(asn)
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        self._check(asn)
        return frozenset(self._peers[asn])

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """Relationship of b from a's point of view, or None."""
        self._check(a)
        self._check(b)
        if b in self._customers[a]:
            return Relationship.CUSTOMER
        if b in self._providers[a]:
            return Relationship.PROVIDER
        if b in self._peers[a]:
            return Relationship.PEER
        return None

    def neighbors(self, asn: int) -> Iterator[tuple[int, Relationship]]:
        self._check(asn)
        for customer in self._customers[asn]:
            yield customer, Relationship.CUSTOMER
        for peer in self._peers[asn]:
            yield peer, Relationship.PEER
        for provider in self._providers[asn]:
            yield provider, Relationship.PROVIDER

    def edge_count(self) -> int:
        customer_edges = sum(len(v) for v in self._customers.values())
        peer_edges = sum(len(v) for v in self._peers.values()) // 2
        return customer_edges + peer_edges

    def copy(self) -> "ASTopology":
        clone = ASTopology()
        clone.nodes = {asn: ASNode(n.asn, n.name, n.tier, n.location) for asn, n in self.nodes.items()}
        clone._providers = {k: set(v) for k, v in self._providers.items()}
        clone._customers = {k: set(v) for k, v in self._customers.items()}
        clone._peers = {k: set(v) for k, v in self._peers.items()}
        return clone


def generate_internet_like(
    rng: random.Random,
    num_tier1: int = 8,
    num_tier2: int = 60,
    num_stubs: int = 800,
    stub_multihome_fraction: float = 0.3,
    tier2_peer_degree: int = 4,
    first_asn: int = 100,
) -> ASTopology:
    """Generate a tiered, regionally structured AS topology.

    Structure mirrors the measured Internet at small scale:

    * tier-1 ASes form a full peering clique and sell transit broadly;
    * tier-2 (regional) ASes buy transit from 1–3 tier-1s, peer
      regionally, and sell to stubs in their region;
    * stub ASes buy from 1 regional provider (or 2, when multihomed).

    Every AS is placed in a city; regional structure follows city
    proximity so that policy routing produces geographically plausible
    catchments.
    """
    topo = ASTopology()
    cities = list(CITIES.values())
    next_asn = first_asn

    tier1s = []
    for _ in range(num_tier1):
        node = topo.add_as(next_asn, tier=1, location=rng.choice(cities))
        tier1s.append(node.asn)
        next_asn += 1
    for i, a in enumerate(tier1s):
        for b in tier1s[i + 1 :]:
            topo.add_peer_link(a, b)

    tier2s = []
    for _ in range(num_tier2):
        node = topo.add_as(next_asn, tier=2, location=rng.choice(cities))
        tier2s.append(node.asn)
        next_asn += 1
        for provider in rng.sample(tier1s, k=rng.randint(1, min(3, len(tier1s)))):
            topo.add_customer_link(provider, node.asn)

    # Regional tier-2 peering: peer with the geographically nearest tier-2s.
    for asn in tier2s:
        here = topo.nodes[asn].location
        assert here is not None
        others = sorted(
            (other for other in tier2s if other != asn),
            key=lambda other: here.distance_km(topo.nodes[other].location),  # type: ignore[arg-type]
        )
        for other in others[:tier2_peer_degree]:
            if topo.relationship(asn, other) is None:
                topo.add_peer_link(asn, other)

    for _ in range(num_stubs):
        node = topo.add_as(next_asn, tier=3, location=rng.choice(cities))
        next_asn += 1
        here = node.location
        assert here is not None
        nearby = sorted(
            tier2s,
            key=lambda other: here.distance_km(topo.nodes[other].location),  # type: ignore[arg-type]
        )
        # Prefer a nearby regional provider, with some noise.
        primary = nearby[rng.randint(0, min(4, len(nearby) - 1))]
        topo.add_customer_link(primary, node.asn)
        if rng.random() < stub_multihome_fraction:
            secondary = nearby[rng.randint(0, min(9, len(nearby) - 1))]
            if secondary != primary:
                topo.add_customer_link(secondary, node.asn)

    return topo


def stub_ases(topo: ASTopology) -> list[int]:
    """All tier-3 (stub) ASes, sorted by ASN."""
    return sorted(asn for asn, node in topo.nodes.items() if node.tier == 3)
