"""EDNS(0) OPT pseudo-records: Client-Subnet (RFC 7871), NSID (RFC 5001).

The top-website measurements (§2.3.3) rely on the Client-Subnet
extension: a single observer asks an authoritative server "what would
you answer a client in prefix P?". Anycast server identification
(§2.3.1) uses either CHAOS ``hostname.bind`` or the NSID option, both
of which Atlas supports; this module encodes/decodes both options
inside an OPT additional record.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..net.addr import IPv4Prefix
from .message import DnsError, DnsMessage, ResourceRecord, TYPE_OPT

__all__ = [
    "ClientSubnet",
    "make_opt_record",
    "extract_client_subnet",
    "add_client_subnet",
    "add_nsid_request",
    "add_nsid_response",
    "extract_nsid",
]

_OPTION_NSID = 3
_OPTION_ECS = 8
_FAMILY_IPV4 = 1


@dataclass(frozen=True, slots=True)
class ClientSubnet:
    """An ECS option: a client prefix and the server's scope answer."""

    prefix: IPv4Prefix
    scope_length: int = 0

    def encode(self) -> bytes:
        source_length = self.prefix.length
        address_bytes = (source_length + 7) // 8
        address = struct.pack("!I", self.prefix.network)[:address_bytes]
        payload = (
            struct.pack("!HBB", _FAMILY_IPV4, source_length, self.scope_length)
            + address
        )
        return struct.pack("!HH", _OPTION_ECS, len(payload)) + payload

    @classmethod
    def decode(cls, payload: bytes) -> "ClientSubnet":
        if len(payload) < 4:
            raise DnsError("truncated ECS option")
        family, source_length, scope_length = struct.unpack("!HBB", payload[:4])
        if family != _FAMILY_IPV4:
            raise DnsError(f"unsupported ECS family {family}")
        address_bytes = (source_length + 7) // 8
        raw = payload[4 : 4 + address_bytes]
        if len(raw) != address_bytes:
            raise DnsError("truncated ECS address")
        network = int.from_bytes(raw.ljust(4, b"\0"), "big")
        mask = (0xFFFFFFFF << (32 - source_length)) & 0xFFFFFFFF if source_length else 0
        return cls(IPv4Prefix(network & mask, source_length), scope_length)


def make_opt_record(
    client_subnet: Optional[ClientSubnet] = None, udp_size: int = 4096
) -> ResourceRecord:
    """An OPT pseudo-RR, optionally carrying an ECS option."""
    rdata = client_subnet.encode() if client_subnet else b""
    # OPT overloads class = requestor's UDP payload size, ttl = flags.
    return ResourceRecord("", TYPE_OPT, udp_size, 0, rdata)


def add_client_subnet(message: DnsMessage, prefix: IPv4Prefix) -> DnsMessage:
    """Attach an ECS option to a query message (in place, returned)."""
    message.additionals = [
        record for record in message.additionals if record.rtype != TYPE_OPT
    ]
    message.additionals.append(make_opt_record(ClientSubnet(prefix)))
    return message


def _iter_options(message: DnsMessage):
    for record in message.additionals:
        if record.rtype != TYPE_OPT:
            continue
        offset = 0
        data = record.rdata
        while offset + 4 <= len(data):
            code, length = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            if offset + length > len(data):
                raise DnsError("truncated EDNS option")
            yield code, data[offset : offset + length]
            offset += length


def extract_client_subnet(message: DnsMessage) -> Optional[ClientSubnet]:
    """The ECS option of a message's OPT record, if present."""
    for code, payload in _iter_options(message):
        if code == _OPTION_ECS:
            return ClientSubnet.decode(payload)
    return None


def _append_option(message: DnsMessage, code: int, payload: bytes) -> DnsMessage:
    """Append an option to the message's OPT record, creating one if needed."""
    option = struct.pack("!HH", code, len(payload)) + payload
    for index, record in enumerate(message.additionals):
        if record.rtype == TYPE_OPT:
            message.additionals[index] = ResourceRecord(
                record.name, record.rtype, record.rclass, record.ttl,
                record.rdata + option,
            )
            return message
    message.additionals.append(ResourceRecord("", TYPE_OPT, 4096, 0, option))
    return message


def add_nsid_request(message: DnsMessage) -> DnsMessage:
    """Request the server's identifier: an empty NSID option (RFC 5001)."""
    return _append_option(message, _OPTION_NSID, b"")


def add_nsid_response(message: DnsMessage, identifier: str) -> DnsMessage:
    """Attach the server's NSID to a response."""
    return _append_option(message, _OPTION_NSID, identifier.encode("ascii"))


def extract_nsid(message: DnsMessage) -> Optional[str]:
    """The NSID option's payload, decoded, if present and non-empty.

    An empty NSID in a query means "please identify yourself" and is
    reported as an empty string; absence is None.
    """
    for code, payload in _iter_options(message):
        if code == _OPTION_NSID:
            return payload.decode("ascii", errors="replace")
    return None
