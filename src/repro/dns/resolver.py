"""A simulated recursive resolver with EDNS Client-Subnet pass-through.

The EDNS-CS measurement method only works when the recursive resolver
forwards the client-subnet option to the authoritative server and does
not serve a cached answer scoped to someone else's prefix. This
resolver models both behaviours: pass-through on/off, and a scope-aware
answer cache, so the measurement simulator exercises the real protocol
pitfalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..net.addr import IPv4Prefix
from ..net.trie import PrefixTrie
from .edns import ClientSubnet, add_client_subnet, extract_client_subnet, make_opt_record
from .message import DnsMessage, Question, RCODE_SERVFAIL

__all__ = ["Authoritative", "RecursiveResolver"]

# An authoritative behaviour: (question, ecs) -> response message.
Authoritative = Callable[[Question, Optional[ClientSubnet]], DnsMessage]


@dataclass
class RecursiveResolver:
    """Forwards queries to an authoritative handler, with ECS semantics.

    * ``ecs_passthrough=False`` strips the option, modelling the many
      resolvers that do not support Client-Subnet — the measurement
      then maps every prefix to whatever the resolver's own location
      gets, a failure mode the paper's method must avoid.
    * Cached answers are reused only when the query's ECS prefix falls
      inside the cached answer's announced scope.
    """

    authoritative: Authoritative
    ecs_passthrough: bool = True
    resolver_prefix: IPv4Prefix = IPv4Prefix.from_string("198.51.100.0/24")
    queries_forwarded: int = 0
    cache_hits: int = 0
    # Per (qname, qtype): a trie of announced answer scopes, so the
    # scope-aware lookup is O(32) rather than a scan of all entries.
    _cache: dict[tuple[str, int], PrefixTrie[DnsMessage]] = field(default_factory=dict)

    def resolve(self, query: DnsMessage) -> DnsMessage:
        if not query.questions:
            return DnsMessage(
                msg_id=query.msg_id, is_response=True, rcode=RCODE_SERVFAIL
            )
        question = query.questions[0]
        ecs = extract_client_subnet(query)
        if not self.ecs_passthrough:
            ecs = None

        cache_key = (question.name.lower(), question.qtype)
        lookup_prefix = ecs.prefix if ecs else self.resolver_prefix
        trie = self._cache.get(cache_key)
        if trie is not None:
            hit = trie.covering(lookup_prefix)
            if hit is not None:
                scope, cached = hit
                if lookup_prefix in scope:
                    self.cache_hits += 1
                    return DnsMessage(
                        msg_id=query.msg_id,
                        is_response=True,
                        rcode=cached.rcode,
                        questions=list(cached.questions),
                        answers=list(cached.answers),
                        additionals=list(cached.additionals),
                    )

        upstream_ecs = ecs or ClientSubnet(self.resolver_prefix)
        self.queries_forwarded += 1
        response = self.authoritative(question, upstream_ecs)
        answered_ecs = extract_client_subnet(response)
        if answered_ecs is not None and answered_ecs.scope_length > 0:
            scope = IPv4Prefix.supernet_of(
                upstream_ecs.prefix.network, answered_ecs.scope_length
            )
        else:
            scope = IPv4Prefix(0, 0)  # scope 0: answer is location-independent
        self._cache.setdefault(cache_key, PrefixTrie()).insert(scope, response)
        response.msg_id = query.msg_id
        return response

    def clear_cache(self) -> None:
        self._cache.clear()

    @staticmethod
    def make_query(name: str, qtype: int, prefix: Optional[IPv4Prefix], msg_id: int = 0) -> DnsMessage:
        """Convenience: an IN query with an optional ECS option."""
        message = DnsMessage(msg_id=msg_id)
        message.questions.append(Question(name, qtype))
        if prefix is not None:
            add_client_subnet(message, prefix)
        else:
            message.additionals.append(make_opt_record())
        return message
