"""CHAOS-class server identification (hostname.bind / NSID).

Root DNS anycast sites answer CHAOS TXT ``hostname.bind`` queries with a
per-server identifier (RFC 4892). The Atlas measurement path uses this:
a VP's query returns an identifier like ``"b1-lax"``, which a mapping
table turns into a site label, following Fan et al.'s methodology.

Identifiers follow the loose real-world convention
``<service><instance>-<site>[.<suffix>]``; unmapped identifiers are the
paper's "incorrect data" that cleaning turns into ``other``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from .message import (
    CLASS_CHAOS,
    DnsMessage,
    Question,
    RCODE_NOERROR,
    ResourceRecord,
    TYPE_TXT,
)

__all__ = ["HOSTNAME_BIND", "make_chaos_query", "make_chaos_response", "IdentifierMap"]

HOSTNAME_BIND = "hostname.bind"

_IDENTIFIER = re.compile(r"^[a-z]+\d*-(?P<site>[a-z0-9]+)")


def make_chaos_query(msg_id: int = 0) -> DnsMessage:
    """A CHAOS TXT hostname.bind query, as Atlas sends."""
    message = DnsMessage(msg_id=msg_id)
    message.questions.append(Question(HOSTNAME_BIND, TYPE_TXT, CLASS_CHAOS))
    return message


def make_chaos_response(query: DnsMessage, identifier: str) -> DnsMessage:
    """The server's TXT response carrying its instance identifier."""
    response = DnsMessage(msg_id=query.msg_id, is_response=True, rcode=RCODE_NOERROR)
    response.questions = list(query.questions)
    response.answers.append(
        ResourceRecord.txt(HOSTNAME_BIND, identifier, rclass=CLASS_CHAOS)
    )
    return response


@dataclass
class IdentifierMap:
    """Maps organization-specific server identifiers to site labels.

    Exact entries take priority; otherwise the conventional
    ``<host>-<site>`` pattern is parsed and the site token upper-cased
    when it appears in ``known_sites``. Everything else maps to None
    (later cleaned to ``other``).
    """

    known_sites: set[str] = field(default_factory=set)
    exact: dict[str, str] = field(default_factory=dict)

    def site_of(self, identifier: str) -> Optional[str]:
        identifier = identifier.strip().lower()
        if identifier in self.exact:
            return self.exact[identifier]
        match = _IDENTIFIER.match(identifier)
        if match:
            site = match.group("site").upper()
            if not self.known_sites or site in self.known_sites:
                return site
        return None

    @classmethod
    def for_sites(cls, sites: set[str]) -> "IdentifierMap":
        return cls(known_sites={site.upper() for site in sites})
