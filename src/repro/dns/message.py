"""Minimal DNS wire format: header, question, resource records.

The Atlas and EDNS-CS measurement simulators speak real DNS messages so
that the identifier-extraction and Client-Subnet code paths exercise
actual encode/decode logic (including name compression on decode),
rather than passing Python objects around. Only the record types the
paper's measurements need are fully modelled: A, TXT, OPT.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "DnsError",
    "CLASS_IN",
    "CLASS_CHAOS",
    "TYPE_A",
    "TYPE_TXT",
    "TYPE_OPT",
    "RCODE_NOERROR",
    "RCODE_SERVFAIL",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "Question",
    "ResourceRecord",
    "DnsMessage",
    "encode_name",
    "decode_name",
    "NameCompressor",
]

CLASS_IN = 1
CLASS_CHAOS = 3

TYPE_A = 1
TYPE_TXT = 16
TYPE_OPT = 41

RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_REFUSED = 5

_MAX_LABEL = 63
_MAX_NAME = 255


class DnsError(ValueError):
    """Raised on malformed DNS messages."""


def _split_labels(name: str) -> list[bytes]:
    name = name.rstrip(".")
    if not name:
        return []
    labels = []
    for label in name.split("."):
        raw = label.encode("ascii")
        if not raw:
            raise DnsError(f"empty label in {name!r}")
        if len(raw) > _MAX_LABEL:
            raise DnsError(f"label too long in {name!r}")
        labels.append(raw)
    return labels


def encode_name(name: str) -> bytes:
    """Encode a domain name into length-prefixed labels (no compression)."""
    encoded = bytearray()
    for raw in _split_labels(name):
        encoded.append(len(raw))
        encoded.extend(raw)
    encoded.append(0)
    if len(encoded) > _MAX_NAME:
        raise DnsError(f"name too long: {name!r}")
    return bytes(encoded)


class NameCompressor:
    """RFC 1035 §4.1.4 name compression for message encoding.

    Remembers, per message, the offset at which every name suffix was
    written; later names reuse the longest known suffix via a 2-byte
    pointer, exactly as production servers do. Offsets beyond the
    14-bit pointer range are simply not recorded.
    """

    def __init__(self) -> None:
        self._offsets: dict[tuple[bytes, ...], int] = {}

    def encode(self, name: str, offset: int) -> bytes:
        """Encode ``name`` as written at ``offset`` in the message."""
        labels = _split_labels(name)
        encoded = bytearray()
        position = offset
        for index in range(len(labels)):
            suffix = tuple(label.lower() for label in labels[index:])
            known = self._offsets.get(suffix)
            if known is not None:
                encoded.extend(bytes([0xC0 | (known >> 8), known & 0xFF]))
                return bytes(encoded)
            if position < 0x3FFF:
                self._offsets[suffix] = position
            encoded.append(len(labels[index]))
            encoded.extend(labels[index])
            position += 1 + len(labels[index])
        encoded.append(0)
        if len(encoded) > _MAX_NAME:
            raise DnsError(f"name too long: {name!r}")
        return bytes(encoded)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next_offset)."""
    labels: list[str] = []
    jumps = 0
    next_offset: Optional[int] = None
    while True:
        if offset >= len(data):
            raise DnsError("truncated name")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise DnsError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            offset = pointer
            jumps += 1
            if jumps > 64:
                raise DnsError("compression loop")
            continue
        if length & 0xC0:
            raise DnsError(f"bad label length byte {length:#x}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise DnsError("truncated label")
        try:
            labels.append(data[offset : offset + length].decode("ascii"))
        except UnicodeDecodeError as exc:
            raise DnsError(f"non-ASCII label at offset {offset}") from exc
        offset += length
    return ".".join(labels), (next_offset if next_offset is not None else offset)


@dataclass(frozen=True, slots=True)
class Question:
    name: str
    qtype: int
    qclass: int = CLASS_IN

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes

    def encode(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )

    @classmethod
    def txt(cls, name: str, text: str, rclass: int = CLASS_IN, ttl: int = 0) -> "ResourceRecord":
        raw = text.encode("ascii")
        if len(raw) > 255:
            raise DnsError("TXT string too long")
        return cls(name, TYPE_TXT, rclass, ttl, bytes([len(raw)]) + raw)

    def txt_strings(self) -> list[str]:
        if self.rtype != TYPE_TXT:
            raise DnsError("not a TXT record")
        strings = []
        offset = 0
        while offset < len(self.rdata):
            length = self.rdata[offset]
            offset += 1
            if offset + length > len(self.rdata):
                raise DnsError("truncated TXT string")
            strings.append(self.rdata[offset : offset + length].decode("ascii"))
            offset += length
        return strings

    @classmethod
    def a(cls, name: str, address: int, ttl: int = 60) -> "ResourceRecord":
        return cls(name, TYPE_A, CLASS_IN, ttl, struct.pack("!I", address))

    def a_address(self) -> int:
        if self.rtype != TYPE_A or len(self.rdata) != 4:
            raise DnsError("not an A record")
        return struct.unpack("!I", self.rdata)[0]


@dataclass
class DnsMessage:
    """A DNS message with the fields the simulators use."""

    msg_id: int = 0
    is_response: bool = False
    rcode: int = RCODE_NOERROR
    recursion_desired: bool = True
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    def encode(self, compress: bool = False) -> bytes:
        """Wire bytes; ``compress=True`` applies RFC 1035 name compression."""
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.recursion_desired:
            flags |= 0x0100
        flags |= self.rcode & 0xF
        header = struct.pack(
            "!HHHHHH",
            self.msg_id,
            flags,
            len(self.questions),
            len(self.answers),
            0,
            len(self.additionals),
        )
        if not compress:
            body = b"".join(q.encode() for q in self.questions)
            body += b"".join(r.encode() for r in self.answers)
            body += b"".join(r.encode() for r in self.additionals)
            return header + body

        compressor = NameCompressor()
        out = bytearray(header)
        for question in self.questions:
            out += compressor.encode(question.name, len(out))
            out += struct.pack("!HH", question.qtype, question.qclass)
        for record in [*self.answers, *self.additionals]:
            out += compressor.encode(record.name, len(out))
            out += struct.pack(
                "!HHIH", record.rtype, record.rclass, record.ttl, len(record.rdata)
            )
            out += record.rdata
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise DnsError("message shorter than header")
        msg_id, flags, qd, an, ns, ar = struct.unpack("!HHHHHH", data[:12])
        message = cls(
            msg_id=msg_id,
            is_response=bool(flags & 0x8000),
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
        )
        offset = 12
        for _ in range(qd):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DnsError("truncated question")
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            message.questions.append(Question(name, qtype, qclass))

        def read_records(count: int, offset: int) -> tuple[list[ResourceRecord], int]:
            records = []
            for _ in range(count):
                name, offset = decode_name(data, offset)
                if offset + 10 > len(data):
                    raise DnsError("truncated record header")
                rtype, rclass, ttl, rdlength = struct.unpack(
                    "!HHIH", data[offset : offset + 10]
                )
                offset += 10
                if offset + rdlength > len(data):
                    raise DnsError("truncated rdata")
                rdata = data[offset : offset + rdlength]
                offset += rdlength
                records.append(ResourceRecord(name, rtype, rclass, ttl, rdata))
            return records, offset

        message.answers, offset = read_records(an, offset)
        _authority, offset = read_records(ns, offset)
        message.additionals, offset = read_records(ar, offset)
        return message

    def first_txt(self) -> Optional[str]:
        """First TXT string in the answer section, if any."""
        for record in self.answers:
            if record.rtype == TYPE_TXT:
                strings = record.txt_strings()
                if strings:
                    return strings[0]
        return None
