"""DNS substrate: wire format, CHAOS identification, EDNS Client-Subnet."""

from .chaos import HOSTNAME_BIND, IdentifierMap, make_chaos_query, make_chaos_response
from .edns import ClientSubnet, add_client_subnet, extract_client_subnet, make_opt_record
from .message import (
    CLASS_CHAOS,
    CLASS_IN,
    DnsError,
    DnsMessage,
    Question,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    ResourceRecord,
    TYPE_A,
    TYPE_OPT,
    TYPE_TXT,
    decode_name,
    encode_name,
)
from .resolver import Authoritative, RecursiveResolver

__all__ = [
    "Authoritative",
    "CLASS_CHAOS",
    "CLASS_IN",
    "ClientSubnet",
    "DnsError",
    "DnsMessage",
    "HOSTNAME_BIND",
    "IdentifierMap",
    "Question",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "RecursiveResolver",
    "ResourceRecord",
    "TYPE_A",
    "TYPE_OPT",
    "TYPE_TXT",
    "add_client_subnet",
    "decode_name",
    "encode_name",
    "extract_client_subnet",
    "make_chaos_query",
    "make_chaos_response",
    "make_opt_record",
]
