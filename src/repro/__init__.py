"""Fenrir: rediscovering recurring routing results.

A from-scratch reproduction of the Fenrir system (IMC 2025): routing
vectors over network catchments, Gower-similarity comparison,
HAC mode discovery, transition matrices, event detection and latency
joins — plus every measurement substrate the paper's evaluation uses
(BGP policy routing, anycast catchment mapping, traceroute, EDNS
Client-Subnet website mapping), simulated.

Quick start::

    from repro.core import Fenrir, VectorSeries

    series = VectorSeries(networks=["192.0.2.0/24", "198.51.100.0/24"])
    series.append_mapping({"192.0.2.0/24": "LAX"}, time=t0)
    series.append_mapping({"192.0.2.0/24": "AMS"}, time=t1)
    report = Fenrir().run(series)
    print(report.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
