"""Entry point for ``python -m repro``."""

from .cli import main

raise SystemExit(main())
