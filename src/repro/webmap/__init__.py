"""Website front-end substrate: fleets and EDNS-CS catchment mapping."""

from .affinity import AffinityReport, analyze_affinity
from .frontends import ChurnFleet, GeoFleet, GeoSite, stable_fraction
from .mapper import EcsMapper, FrontendSelector

__all__ = [
    "AffinityReport",
    "ChurnFleet",
    "analyze_affinity",
    "EcsMapper",
    "FrontendSelector",
    "GeoFleet",
    "GeoSite",
    "stable_fraction",
]
