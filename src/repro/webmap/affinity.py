"""Client-site affinity analysis (Fan, Katz-Bassett, Heidemann 2015).

The paper's website studies build on earlier affinity work: how
consistently does a client network land on the same front end over
time? Per-network affinity is the fraction of observed rounds the
network spent on its *modal* (most common) state; a fleet reshuffling
weekly has low affinity, a geo-mapped fleet near 1.0 — the exact
contrast between the paper's Google and Wikipedia subjects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.series import VectorSeries
from ..core.vector import UNKNOWN_CODE

__all__ = ["AffinityReport", "analyze_affinity"]


@dataclass
class AffinityReport:
    """Per-network affinity scores over one series."""

    affinity: dict[str, float]  # network -> fraction of rounds on modal state
    modal_state: dict[str, str]

    @property
    def mean(self) -> float:
        if not self.affinity:
            return float("nan")
        return float(np.mean(list(self.affinity.values())))

    def quantile(self, q: float) -> float:
        if not self.affinity:
            return float("nan")
        return float(np.quantile(list(self.affinity.values()), q))

    def low_affinity_networks(self, threshold: float = 0.5) -> list[str]:
        """Networks that bounce between states most of the time."""
        return sorted(
            network for network, value in self.affinity.items() if value < threshold
        )


def analyze_affinity(series: VectorSeries, min_observations: int = 2) -> AffinityReport:
    """Affinity of every network with at least ``min_observations`` rounds.

    Unknown rounds do not count toward the denominator — affinity
    measures the consistency of *observed* placements, as in the
    original methodology.
    """
    matrix = series.matrix
    affinity: dict[str, float] = {}
    modal: dict[str, str] = {}
    for column, network in enumerate(series.networks):
        codes = matrix[:, column]
        known = codes[codes != UNKNOWN_CODE]
        if len(known) < min_observations:
            continue
        counts = np.bincount(known)
        modal_code = int(np.argmax(counts))
        affinity[network] = float(counts[modal_code]) / float(len(known))
        modal[network] = series.catalog.label(modal_code)
    return AffinityReport(affinity, modal)
