"""Website front-end fleets: who serves a client prefix, and when.

Two contrasting selection regimes from the paper:

* :class:`GeoFleet` (Wikipedia-like) — a handful of sites, clients go
  to the geographically nearest active one. Supports scripted drains
  and *sticky return*: when a drained site comes back, only a fraction
  of its former clients return (the paper measures ~30% for codfw).
* :class:`ChurnFleet` (Google-like) — thousands of front-ends,
  hash-assigned per prefix, reshuffled on a weekly schedule with small
  intra-week churn and era-scale infrastructure turnover (2013 vs 2024
  share nothing).

Both are deterministic in (prefix, time): selections use a stable
digest, never Python's salted ``hash``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Sequence

from ..net.addr import IPv4Address, IPv4Prefix
from ..net.geo import GeoPoint

__all__ = ["stable_fraction", "GeoSite", "GeoFleet", "ChurnFleet"]


def stable_fraction(*parts: object) -> float:
    """A deterministic value in [0, 1) from arbitrary key parts."""
    digest = hashlib.blake2b(
        "|".join(str(part) for part in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


def _stable_index(modulus: int, *parts: object) -> int:
    return int(stable_fraction(*parts) * modulus)


@dataclass(frozen=True, slots=True)
class GeoSite:
    label: str
    location: GeoPoint


@dataclass(frozen=True, slots=True)
class _DrainWindow:
    site: str
    start: datetime
    end: datetime
    return_fraction: float  # clients that come back after the drain


@dataclass
class GeoFleet:
    """Geo-nearest site selection with drains and sticky returns.

    ``border_flux`` is the per-day share of clients that flip to their
    second-nearest site (load-balancer wobble near catchment borders);
    it produces the small within-mode dissimilarity real deployments
    show instead of a perfect Φ = 1.
    """

    sites: Sequence[GeoSite]
    drains: list[_DrainWindow] = field(default_factory=list)
    border_flux: float = 0.0
    epoch: datetime = datetime(2000, 1, 1)

    def __post_init__(self) -> None:
        labels = [site.label for site in self.sites]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate site labels")
        if not self.sites:
            raise ValueError("a fleet needs at least one site")

    def add_drain(
        self,
        site: str,
        start: datetime,
        end: datetime,
        return_fraction: float = 1.0,
    ) -> None:
        if site not in {s.label for s in self.sites}:
            raise KeyError(f"unknown site {site!r}")
        if not 0.0 <= return_fraction <= 1.0:
            raise ValueError("return_fraction must be in [0, 1]")
        self.drains.append(_DrainWindow(site, start, end, return_fraction))

    def site_labels(self) -> list[str]:
        return [site.label for site in self.sites]

    def _drained(self, when: datetime) -> set[str]:
        return {d.site for d in self.drains if d.start <= when < d.end}

    def _ranked(self, location: GeoPoint) -> list[str]:
        return [
            site.label
            for site in sorted(
                self.sites, key=lambda s: (location.distance_km(s.location), s.label)
            )
        ]

    def select(self, prefix: IPv4Prefix, location: GeoPoint, when: datetime) -> str:
        """The site serving ``prefix`` (at ``location``) at time ``when``."""
        drained = self._drained(when)
        ranked = self._ranked(location)
        if self.border_flux > 0:
            day = (when - self.epoch) // timedelta(days=1)
            if stable_fraction(prefix.network, "flux", day) < self.border_flux:
                ranked = [ranked[1], ranked[0], *ranked[2:]] if len(ranked) > 1 else ranked
        preferred = next(label for label in ranked if label not in drained)

        # Sticky behaviour: a past drain of this prefix's preferred site
        # permanently moved some clients to their fallback.
        natural = ranked[0]
        for index, drain in enumerate(self.drains):
            if drain.site != natural or when < drain.end:
                continue
            if stable_fraction(prefix.network, "return", index) >= drain.return_fraction:
                fallback = next(
                    label
                    for label in ranked
                    if label != natural and label not in drained
                )
                return fallback
        return preferred


@dataclass
class ChurnFleet:
    """Hash-assigned front-end selection with scheduled reshuffles.

    * ``era`` — infrastructure generation; distinct eras share no
      front-end identifiers at all;
    * every ``reshuffle_days`` the per-prefix assignment re-rolls,
      except a ``stable_share`` of prefixes pinned era-wide;
    * each day, ``daily_change`` of prefixes temporarily move.
    """

    num_frontends: int
    epoch: datetime
    era: str = "gen1"
    reshuffle_days: int = 7
    stable_share: float = 0.25
    daily_change: float = 0.10

    def __post_init__(self) -> None:
        if self.num_frontends <= 0:
            raise ValueError("need at least one front-end")
        if not 0.0 <= self.stable_share <= 1.0:
            raise ValueError("stable_share must be in [0, 1]")
        if not 0.0 <= self.daily_change <= 1.0:
            raise ValueError("daily_change must be in [0, 1]")

    def _frontend(self, bucket: int) -> str:
        return f"fe-{self.era}-{bucket:04d}"

    def select(self, prefix: IPv4Prefix, when: datetime) -> str:
        days = (when - self.epoch) // timedelta(days=1)
        period = days // self.reshuffle_days if self.reshuffle_days else 0
        if stable_fraction(self.era, prefix.network, "pin") < self.stable_share:
            bucket = _stable_index(self.num_frontends, self.era, prefix.network, "stable")
        else:
            bucket = _stable_index(
                self.num_frontends, self.era, prefix.network, "period", period
            )
        if stable_fraction(self.era, prefix.network, "flux", days) < self.daily_change:
            bucket = _stable_index(
                self.num_frontends, self.era, prefix.network, "day", days
            )
        return self._frontend(bucket)

    def frontend_address(self, label: str) -> IPv4Address:
        """A deterministic service address for one front-end label."""
        return IPv4Address(
            (203 << 24) | _stable_index(1 << 24, "addr", self.era, label)
        )
