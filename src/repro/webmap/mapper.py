"""EDNS Client-Subnet catchment mapping of websites (§2.3.3).

One physical observer sweeps millions of client prefixes by sending the
website's hostname query with each prefix as the Client-Subnet option.
The sweep runs through a real resolver simulation (ECS pass-through,
scope-aware caching) and a real authoritative handler that answers an A
record for the front-end the fleet selects, echoing the ECS option with
a /24 scope — the mechanics Calder et al. rely on.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Optional, Sequence

from ..dns.edns import ClientSubnet, make_opt_record
from ..dns.message import DnsMessage, Question, RCODE_NOERROR, ResourceRecord, TYPE_A
from ..dns.resolver import RecursiveResolver
from ..net.addr import IPv4Address, IPv4Prefix

__all__ = ["FrontendSelector", "EcsMapper"]

# (client prefix, time) -> front-end label.
FrontendSelector = Callable[[IPv4Prefix, datetime], str]


@dataclass
class EcsMapper:
    """Maps website catchments with an EDNS-CS sweep.

    ``query_failure_probability`` models SERVFAILs and timeouts, which
    surface as missing observations (→ unknown in the vector layer).
    """

    hostname: str
    select: FrontendSelector
    rng: random.Random
    scope_length: int = 24
    query_failure_probability: float = 0.0
    address_to_label: dict[int, str] = field(default_factory=dict)
    queries_sent: int = 0

    def _frontend_address(self, label: str) -> IPv4Address:
        digest = hashlib.blake2b(label.encode(), digest_size=3).digest()
        address = IPv4Address((203 << 24) | int.from_bytes(digest, "big"))
        self.address_to_label[address.value] = label
        return address

    def _authoritative(self, when: datetime):
        def handle(question: Question, ecs: Optional[ClientSubnet]) -> DnsMessage:
            response = DnsMessage(is_response=True, rcode=RCODE_NOERROR)
            response.questions = [question]
            if question.name.lower() != self.hostname.lower() or question.qtype != TYPE_A:
                response.rcode = 3  # NXDOMAIN
                return response
            client = ecs.prefix if ecs else IPv4Prefix.from_string("0.0.0.0/0")
            label = self.select(client, when)
            response.answers.append(
                ResourceRecord.a(question.name, self._frontend_address(label).value)
            )
            if ecs is not None:
                response.additionals.append(
                    make_opt_record(ClientSubnet(ecs.prefix, self.scope_length))
                )
            return response

        return handle

    def resolver_supports_ecs(
        self,
        when: datetime,
        probe_prefixes: Sequence[IPv4Prefix],
        ecs_passthrough: bool = True,
    ) -> bool:
        """Does a resolver path actually vary answers by client subnet?

        The EDNS-CS method's prerequisite check (Calder et al.): sweep a
        few geographically scattered probe prefixes through the
        resolver; if every answer is identical, the resolver is either
        stripping ECS or serving one cached answer, and the measurement
        would silently collapse all catchments into the resolver's own.
        """
        if len(probe_prefixes) < 2:
            raise ValueError("need at least two probe prefixes")
        resolver = RecursiveResolver(
            self._authoritative(when), ecs_passthrough=ecs_passthrough
        )
        answers = set()
        for prefix in probe_prefixes:
            query = RecursiveResolver.make_query(self.hostname, TYPE_A, prefix)
            response = resolver.resolve(query)
            if response.rcode == RCODE_NOERROR and response.answers:
                answers.add(response.answers[0].a_address())
        return len(answers) > 1

    def measure(
        self,
        when: datetime,
        prefixes: Sequence[IPv4Prefix],
        ecs_passthrough: bool = True,
    ) -> dict[str, str]:
        """One sweep: ``{prefix: front-end label}`` for answered queries."""
        resolver = RecursiveResolver(
            self._authoritative(when), ecs_passthrough=ecs_passthrough
        )
        observations: dict[str, str] = {}
        for prefix in prefixes:
            if self.rng.random() < self.query_failure_probability:
                continue
            query = RecursiveResolver.make_query(self.hostname, TYPE_A, prefix)
            self.queries_sent += 1
            response = resolver.resolve(query)
            if response.rcode != RCODE_NOERROR or not response.answers:
                continue
            address = response.answers[0].a_address()
            label = self.address_to_label.get(address)
            if label is not None:
                observations[str(prefix)] = label
        return observations
