"""Measurement campaign machinery: scheduling, retries, bookkeeping.

The paper's campaigns have operational parameters that matter for
fidelity: USC traceroutes run at 550 packets/second and take ~8 hours
per full sweep; Verfploeter pings millions of blocks; Atlas rounds
repeat every 4 minutes. :class:`Campaign` models a sweep over targets
with per-probe retries and loss, tracking the probe budget and the
sweep duration the probing rate implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Callable, Generic, Optional, Sequence, TypeVar

from .loss import LossModel

__all__ = ["ProbeStats", "Campaign", "round_times"]

Target = TypeVar("Target")
Result = TypeVar("Result")


@dataclass
class ProbeStats:
    """Counters of a finished sweep."""

    targets: int = 0
    probes_sent: int = 0
    answered: int = 0
    lost: int = 0

    @property
    def response_rate(self) -> float:
        return self.answered / self.targets if self.targets else 0.0

    def duration(self, probes_per_second: float) -> timedelta:
        """Wall-clock length of the sweep at the given probing rate."""
        if probes_per_second <= 0:
            raise ValueError("probing rate must be positive")
        return timedelta(seconds=self.probes_sent / probes_per_second)


@dataclass
class Campaign(Generic[Target, Result]):
    """One measurement sweep: probe every target, retrying on loss.

    ``probe`` performs a single attempt and returns a result or None
    (no answer for reasons other than loss, e.g. unresponsive target).
    The loss model drops attempts before they reach the target.
    """

    probe: Callable[[Target], Optional[Result]]
    loss: Optional[LossModel] = None
    retries: int = 1
    stats: ProbeStats = field(default_factory=ProbeStats)

    def run(self, targets: Sequence[Target]) -> dict[Target, Result]:
        """Probe all targets; absent keys mean no response after retries."""
        results: dict[Target, Result] = {}
        self.stats = ProbeStats(targets=len(targets))
        for target in targets:
            for _attempt in range(1 + self.retries):
                self.stats.probes_sent += 1
                if self.loss is not None and self.loss.lost():
                    self.stats.lost += 1
                    continue
                answer = self.probe(target)
                if answer is not None:
                    results[target] = answer
                    self.stats.answered += 1
                break  # an attempt that reached the target is final
        return results


def round_times(
    start: datetime, interval: timedelta, count: int
) -> list[datetime]:
    """Timestamps of periodic measurement rounds (Atlas: every 4 minutes)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if interval <= timedelta(0):
        raise ValueError("interval must be positive")
    return [start + interval * index for index in range(count)]
