"""Measurement campaign machinery: loss models, retries, scheduling."""

from .campaign import Campaign, ProbeStats, round_times
from .loss import GilbertElliott, IidLoss, LossModel

__all__ = [
    "Campaign",
    "GilbertElliott",
    "IidLoss",
    "LossModel",
    "ProbeStats",
    "round_times",
]
