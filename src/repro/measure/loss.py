"""Packet-loss models for measurement simulation.

One-shot active measurements miss data because of random loss and
bursty outages (§2.4 motivates interpolation with exactly this). Two
models are provided:

* :class:`IidLoss` — independent per-probe loss;
* :class:`GilbertElliott` — the classic two-state burst-loss chain,
  which produces the *consecutive* gaps the interpolation stage must
  repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["LossModel", "IidLoss", "GilbertElliott"]


class LossModel:
    """Interface: ``lost()`` returns True when the next probe is lost."""

    def lost(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class IidLoss(LossModel):
    """Independent loss with fixed probability."""

    probability: float
    rng: random.Random

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"loss probability out of range: {self.probability}")

    def lost(self) -> bool:
        return self.rng.random() < self.probability


@dataclass
class GilbertElliott(LossModel):
    """Two-state Markov burst loss.

    In the *good* state probes survive with probability ``1 - good_loss``;
    in the *bad* state they survive with probability ``1 - bad_loss``.
    ``p_gb`` and ``p_bg`` are the per-probe transition probabilities.
    """

    p_gb: float  # good -> bad
    p_bg: float  # bad -> good
    rng: random.Random
    good_loss: float = 0.0
    bad_loss: float = 1.0
    _bad: bool = False

    def __post_init__(self) -> None:
        for name in ("p_gb", "p_bg", "good_loss", "bad_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")

    def lost(self) -> bool:
        if self._bad:
            if self.rng.random() < self.p_bg:
                self._bad = False
        else:
            if self.rng.random() < self.p_gb:
                self._bad = True
        loss_probability = self.bad_loss if self._bad else self.good_loss
        return self.rng.random() < loss_probability

    @property
    def expected_loss(self) -> float:
        """Stationary loss rate of the chain."""
        if self.p_gb + self.p_bg == 0:
            return self.good_loss
        fraction_bad = self.p_gb / (self.p_gb + self.p_bg)
        return fraction_bad * self.bad_loss + (1 - fraction_bad) * self.good_loss
