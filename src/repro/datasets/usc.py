"""USC multi-homed enterprise scenario: Figure 2 and Figures 7/8.

Eight months of daily traceroute sweeps out of a USC-like enterprise,
with the paper's named players:

* ARN-A — Academic Regional Network A (CENIC, AS 2152);
* ARN-B — Academic Regional Network B (Los Nettos, AS 226);
* ANN — Academic National Network (Internet2, AS 11537);
* NTT (AS 2914) and Hurricane Electric (AS 6939).

Before 2025-01-16 nearly all egress rides ARN-B → ARN-A → ANN, so the
hop-3 catchment is dominated by ARN-A. The 2025-01-16 reconfiguration
rehomes ARN-B onto NTT and HE and drops ANN from ARN-A's transit: at
hop 3, ARN-A collapses and NTT/HE take over — the paper's "at most 90%
of catchments changed" event, visible only in Fenrir's heatmap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..bgp.clients import ClientSpace
from ..bgp.events import LinkAdd, LinkRemove
from ..bgp.topology import ASTopology
from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..net.geo import city
from ..traceroute.enterprise import MultihomedEnterprise
from .builders import build_topology, clients_for_stubs

__all__ = ["UscStudy", "generate", "RECONFIGURATION_DATE", "AS_NAMES"]

START = datetime(2024, 8, 1)
END = datetime(2025, 4, 1)
RECONFIGURATION_DATE = datetime(2025, 1, 16)

USC = 73
ARN_A = 2152  # CENIC
ARN_B = 226  # Los Nettos
ANN = 11537  # Internet2
NTT = 2914
HE = 6939

AS_NAMES = {
    USC: "USC",
    ARN_A: "ARN-A",
    ARN_B: "ARN-B",
    ANN: "ANN",
    NTT: "NTT",
    HE: "HE",
}


@dataclass
class UscStudy:
    """The generated USC dataset and its instruments."""

    topology: ASTopology
    enterprise: MultihomedEnterprise
    clients: ClientSpace
    series: VectorSeries  # hop-3 catchments per destination /24
    sample_times: list[datetime]
    focus_hop: int


def _build_named_ases(topo: ASTopology, rng: random.Random) -> None:
    """Wire the paper's named ASes into the generated topology."""
    tier1s = sorted(asn for asn, node in topo.nodes.items() if node.tier == 1)
    tier2s = sorted(asn for asn, node in topo.nodes.items() if node.tier == 2)

    la = city("LAX")
    topo.add_as(ANN, name="ANN", tier=1, location=city("ORD"))
    topo.add_as(NTT, name="NTT", tier=1, location=city("NRT"))
    topo.add_as(HE, name="HE", tier=1, location=city("SEA"))
    for asn in (ANN, NTT, HE):
        for tier1 in tier1s:
            topo.add_peer_link(asn, tier1)
    topo.add_peer_link(ANN, NTT)
    topo.add_peer_link(ANN, HE)
    topo.add_peer_link(NTT, HE)
    # Give the new tier-1s customer cones so they carry routes.
    for index, tier2 in enumerate(tier2s):
        topo.add_customer_link((ANN, NTT, HE)[index % 3], tier2)

    topo.add_as(ARN_A, name="ARN-A", tier=2, location=la)
    topo.add_customer_link(ANN, ARN_A)
    topo.add_customer_link(tier1s[0], ARN_A)
    for tier2 in tier2s[:3]:
        topo.add_peer_link(ARN_A, tier2)

    topo.add_as(ARN_B, name="ARN-B", tier=2, location=la)
    topo.add_customer_link(ARN_A, ARN_B)

    topo.add_as(USC, name="USC", tier=3, location=la)
    topo.add_customer_link(ARN_B, USC)
    topo.add_customer_link(ARN_A, USC)

    # A slice of regional networks buys directly from ARN-B; their paths
    # from USC never leave the region, so they ride out the 2025-01-16
    # reconfiguration unchanged (the paper's Φ(Mi,Mii) stays above ~0.1).
    stubs = sorted(asn for asn, node in topo.nodes.items() if node.tier == 3 and asn != USC)
    for stub in stubs[:: max(1, len(stubs) // 40)]:
        topo.add_customer_link(ARN_B, stub)


def _generate(
    seed: int,
    num_blocks: int,
    cadence: timedelta,
    start: datetime,
    end: datetime,
    reconfigure: bool,
) -> UscStudy:
    rng = random.Random(seed)
    topo = build_topology(rng, num_tier1=5, num_tier2=36, num_stubs=380)
    _build_named_ases(topo, rng)

    events = []
    if reconfigure:
        events = [
            # The 2025-01-16 reconfiguration: ARN-B rehomes from ARN-A
            # onto NTT and HE; ARN-A drops ANN as transit.
            LinkAdd(NTT, ARN_B, RECONFIGURATION_DATE),
            LinkAdd(HE, ARN_B, RECONFIGURATION_DATE),
            LinkRemove(ARN_A, ARN_B, RECONFIGURATION_DATE),
            LinkRemove(ANN, ARN_A, RECONFIGURATION_DATE),
        ]

    clients = clients_for_stubs(topo, rng, num_blocks)
    enterprise = MultihomedEnterprise(
        topology=topo,
        enterprise_asn=USC,
        clients=clients,
        rng=rng,
        as_names=AS_NAMES,
        events=events,
        # USC steers traffic onto ARN-B (its low-cost regional path) by
        # prepending toward its ARN-A link.
        announcement_prepend={ARN_A: 3},
    )

    sample_times = []
    when = start
    while when < end:
        sample_times.append(when)
        when += cadence

    series = VectorSeries(clients.network_ids(), StateCatalog())
    for when in sample_times:
        series.append_mapping(enterprise.catchments_at_hop(when, focus_hop=3), when)

    return UscStudy(
        topology=topo,
        enterprise=enterprise,
        clients=clients,
        series=series,
        sample_times=sample_times,
        focus_hop=3,
    )


def generate(
    seed: int = 20240801,
    num_blocks: int = 1200,
    cadence: timedelta = timedelta(days=2),
) -> UscStudy:
    """Build the USC enterprise study (deterministic in ``seed``)."""
    return _generate(seed, num_blocks, cadence, START, END, reconfigure=True)


def generate_stable(
    seed: int = 20240601,
    num_blocks: int = 1200,
    cadence: timedelta = timedelta(days=4),
) -> UscStudy:
    """The paper's *second* enterprise: ten quiet months.

    §4 notes a second enterprise observed for 10 months with no
    significant routing change — the negative control. Same topology
    class, no scripted events: Fenrir should find a single mode and a
    clean heatmap.
    """
    start = datetime(2024, 6, 1)
    return _generate(
        seed, num_blocks, cadence, start, start + timedelta(days=300), reconfigure=False
    )
