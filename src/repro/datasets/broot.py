"""B-Root scenario: Figure 3 (five years of modes) and Figure 4 (latency).

Scripted timeline, following §4.2 of the paper:

* 2019-09 — initial deployment: LAX (dominant), MIA, ARI. Mode (i).
* 2020-02 — three sites added: SIN, IAD, AMS. Mode (ii).
* 2020-04 — traffic engineering moves ~70% of LAX's catchment onto the
  new sites. Mode (iii).
* 2021-03 — the TE is retuned. Mode (iv), the longest-lasting mode.
* 2022-09-16 / 2023-02-12 / 2023-04-13 — small third-party transit
  changes: the sub-mode boundaries iv.a–iv.d.
* 2023-03-06 — ARI (Arica, Chile; polarized to European clients and
  therefore slow) shuts down. 2023-05-01 and 2023-05-24 — SCL appears
  briefly (routing experiments); 2023-06-29 — SCL resumes for good and
  the LAX TE is removed, so routing falls back toward the original
  mode: Φ(mode i, mode v) exceeds Φ with mode (v)'s neighbours.
* 2023-07-05 .. 2023-12-01 — collection outage (no observations).
* 2024-07 — a new TE configuration: mode (vi).

Measured with Verfploeter over a /24 hitlist whose targets answer
~55% of the time, reproducing the paper's ~half-unknown property that
caps stable Φ at ≈0.5–0.6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..anycast.service import AnycastService, AnycastSite
from ..anycast.verfploeter import VerfploeterMapper
from ..bgp.clients import ClientSpace
from ..bgp.events import (
    LinkOutage,
    ScopeChange,
    SiteAdd,
    SiteDrain,
    SiteRemove,
    TrafficEngineering,
)
from ..bgp.policy import Announcement, Scope
from ..bgp.topology import ASTopology
from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..net.geo import GeoPoint, city
from ..net.hitlist import Hitlist
from .builders import attach_origin, block_locations, build_topology, clients_for_stubs

__all__ = ["BRootStudy", "generate", "OUTAGE_START", "OUTAGE_END"]

START = datetime(2019, 9, 1)
END = datetime(2024, 12, 31)
OUTAGE_START = datetime(2023, 7, 5)
OUTAGE_END = datetime(2023, 12, 1)

SITE_ADD_DATE = datetime(2020, 2, 1)
TE1_DATE = datetime(2020, 4, 1)
TE2_DATE = datetime(2021, 3, 1)
SUBMODE_DATES = (
    datetime(2022, 9, 16),
    datetime(2023, 2, 12),
    datetime(2023, 4, 13),
)
ARI_SHUTDOWN = datetime(2023, 3, 6)
SCL_FIRST_BLIP = datetime(2023, 5, 1)
SCL_SECOND_BLIP = datetime(2023, 5, 24)
SCL_RESUME = datetime(2023, 6, 29)
TE3_DATE = datetime(2024, 7, 1)


@dataclass
class BRootStudy:
    """The generated B-Root dataset plus everything Figure 4 needs."""

    topology: ASTopology
    service: AnycastService
    clients: ClientSpace
    mapper: VerfploeterMapper
    series: VectorSeries  # observed via Verfploeter (≈half unknown)
    sample_times: list[datetime]
    block_locations: dict[str, GeoPoint]
    site_locations: dict[str, GeoPoint]

    def true_assignment(self, when: datetime) -> dict[str, str]:
        """Oracle catchments per block (no measurement noise)."""
        catchments = self.service.catchment_map(when)
        return {
            str(block): catchments[self.clients.as_of(block)]
            for block in self.clients.blocks
        }


def _tier1s(topo: ASTopology) -> list[int]:
    return sorted(asn for asn, node in topo.nodes.items() if node.tier == 1)


def _nearest_tier2s(topo: ASTopology, location: GeoPoint, count: int) -> list[int]:
    tier2s = [asn for asn, node in topo.nodes.items() if node.tier == 2]
    return sorted(
        tier2s,
        key=lambda asn: location.distance_km(topo.nodes[asn].location),  # type: ignore[arg-type]
    )[:count]


def generate(
    seed: int = 20190901,
    num_blocks: int = 2500,
    cadence: timedelta = timedelta(days=7),
) -> BRootStudy:
    """Build the five-year B-Root study (deterministic in ``seed``)."""
    rng = random.Random(seed)
    topo = build_topology(rng, num_tier1=6, num_tier2=40, num_stubs=420)
    tier1s = _tier1s(topo)

    # LAX: broad connectivity (it should dominate in modes i and v).
    lax_providers = tier1s[:2] + _nearest_tier2s(topo, city("LAX"), 2)
    lax = attach_origin(topo, 64601, city("LAX"), providers=lax_providers, name="site-LAX")
    mia = attach_origin(topo, 64602, city("MIA"), num_providers=2, name="site-MIA")
    # ARI is intentionally polarized: homed to European transit, so its
    # (small) catchment is far away and slow — the paper's >200 ms site.
    ari_providers = _nearest_tier2s(topo, city("MAD"), 1)
    ari = attach_origin(topo, 64603, city("ARI"), providers=ari_providers, name="site-ARI")

    sites = [
        AnycastSite("LAX", lax, city("LAX")),
        AnycastSite("MIA", mia, city("MIA")),
        AnycastSite("ARI", ari, city("ARI")),
    ]
    service = AnycastService(topo, sites)

    # 2020-02: SIN, IAD, AMS come online. Their natural catchments are
    # kept small (single regional provider): without traffic
    # engineering LAX stays dominant, which is what later makes mode (v)
    # resemble mode (i) once the TE is withdrawn.
    new_site_origins: dict[str, int] = {}
    for label, asn_offset in (("SIN", 4), ("IAD", 5), ("AMS", 6)):
        origin = attach_origin(
            topo, 64600 + asn_offset, city(label), num_providers=1, name=f"site-{label}"
        )
        new_site_origins[label] = origin
        service.add_event(
            SiteAdd(Announcement(origin=origin, label=label), SITE_ADD_DATE)
        )

    # 2020-04 .. 2021-03: TE phase 1 — prepend LAX toward its tier-1
    # providers, shifting most of its catchment to the new sites.
    for provider in lax_providers[:2]:
        service.add_event(TrafficEngineering("LAX", provider, 4, TE1_DATE, TE2_DATE))
    # 2021-03 .. 2023-06-29: TE phase 2 — retuned: the prepend toward
    # the second tier-1 is withdrawn, so LAX partially recaptures its
    # cone. This is the paper's mode (iii) → mode (iv) boundary.
    service.add_event(
        TrafficEngineering("LAX", lax_providers[0], 4, TE2_DATE, SCL_RESUME)
    )

    # Third-party transit changes: the iv.a–iv.d sub-mode boundaries.
    # Each is a long-lived outage of one tier2↔tier1 link, shifting a
    # modest share of catchments without operator involvement.
    tier2s = sorted(asn for asn, node in topo.nodes.items() if node.tier == 2)
    for index, date in enumerate(SUBMODE_DATES):
        tier2 = tier2s[5 + 7 * index]
        providers = sorted(topo.providers_of(tier2))
        if not providers:
            continue
        service.add_event(LinkOutage(tier2, providers[0], date, END))

    # ARI shuts down; SCL blips twice, then resumes.
    service.add_event(SiteRemove("ARI", ARI_SHUTDOWN))
    scl_providers = _nearest_tier2s(topo, city("SCL"), 2)
    scl = attach_origin(topo, 64607, city("SCL"), providers=scl_providers, name="site-SCL")
    # The blip windows span a full sampling cadence so the brief
    # appearances are visible even in weekly data.
    service.add_event(SiteAdd(Announcement(origin=scl, label="SCL"), SCL_FIRST_BLIP))
    service.add_event(
        SiteDrain("SCL", SCL_FIRST_BLIP + cadence, SCL_SECOND_BLIP)
    )
    service.add_event(
        SiteDrain("SCL", SCL_SECOND_BLIP + cadence, SCL_RESUME)
    )

    # 2023-06-29 .. 2024-07: the operator rebalances toward LAX by
    # scoping the 2020 sites down to their customer cones — routing
    # falls back toward the original mode (the paper's "mode (v) is
    # somewhat like mode (i)").
    for label in new_site_origins:
        service.add_event(
            ScopeChange(label, Scope.CUSTOMER_CONE, SCL_RESUME, TE3_DATE)
        )

    # 2024-07: TE phase 3 — a fresh configuration, mode (vi).
    for provider in lax_providers[2:]:
        service.add_event(TrafficEngineering("LAX", provider, 3, TE3_DATE, END))
    service.add_event(
        TrafficEngineering("MIA", sorted(topo.providers_of(mia))[0], 3, TE3_DATE, END)
    )

    clients = clients_for_stubs(topo, rng, num_blocks)
    hitlist = Hitlist.from_blocks_bimodal(clients.blocks, rng, alive_fraction=0.58)
    mapper = VerfploeterMapper(service, hitlist, clients, rng)

    sample_times = []
    when = START
    while when <= END:
        if not OUTAGE_START <= when < OUTAGE_END:
            sample_times.append(when)
        when += cadence

    series = VectorSeries(clients.network_ids(), StateCatalog())
    for when in sample_times:
        series.append_mapping(mapper.measure(when), when)

    return BRootStudy(
        topology=topo,
        service=service,
        clients=clients,
        mapper=mapper,
        series=series,
        sample_times=sample_times,
        block_locations=block_locations(clients, topo),
        site_locations={site.label: site.location for site in sites}
        | {
            "SIN": city("SIN"),
            "IAD": city("IAD"),
            "AMS": city("AMS"),
            "SCL": city("SCL"),
        },
    )
