"""Shared scenario-construction helpers for the dataset generators.

Every evaluation scenario needs the same ingredients: an Internet-like
topology, anycast origin ASes placed in the right cities, a client
address space homed in the stub ASes, and per-block geography for the
latency model. These builders keep the per-dataset modules focused on
their scripted event timelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..anycast.service import AnycastSite
from ..bgp.clients import ClientSpace, allocate_clients, zipf_block_counts
from ..bgp.topology import ASTopology, generate_internet_like, stub_ases
from ..net.geo import GeoPoint, city

__all__ = [
    "SiteSpec",
    "build_topology",
    "attach_origin",
    "attach_sites",
    "clients_for_stubs",
    "block_locations",
]


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """Declarative anycast site: label, city, and provider fan-out."""

    label: str
    city_code: str
    num_providers: int = 2
    local_only: bool = False


def build_topology(
    rng: random.Random,
    num_tier1: int = 6,
    num_tier2: int = 40,
    num_stubs: int = 400,
    first_asn: int = 20000,
) -> ASTopology:
    """An Internet-like topology at the default reproduction scale.

    Generated ASNs start at 20000 so scenario modules can wire in
    well-known low ASNs (2152, 226, 2914, ...) without collisions.
    """
    return generate_internet_like(
        rng,
        num_tier1=num_tier1,
        num_tier2=num_tier2,
        num_stubs=num_stubs,
        first_asn=first_asn,
    )


def _nearest_tier2s(topo: ASTopology, location: GeoPoint) -> list[int]:
    tier2s = [asn for asn, node in topo.nodes.items() if node.tier == 2]
    return sorted(
        tier2s,
        key=lambda asn: location.distance_km(topo.nodes[asn].location),  # type: ignore[arg-type]
    )


def attach_origin(
    topo: ASTopology,
    asn: int,
    location: GeoPoint,
    num_providers: int = 2,
    providers: Optional[Sequence[int]] = None,
    name: str = "",
) -> int:
    """Add an origin AS at ``location``, homed to nearby tier-2 transit.

    Passing explicit ``providers`` overrides the proximity choice —
    used when two sites must share providers so that draining one
    deterministically shifts its catchment to the other.
    """
    topo.add_as(asn, name=name or f"origin-{asn}", tier=3, location=location)
    chosen = (
        list(providers)
        if providers is not None
        else _nearest_tier2s(topo, location)[:num_providers]
    )
    if not chosen:
        raise ValueError("origin needs at least one provider")
    for provider in chosen:
        topo.add_customer_link(provider, asn)
    return asn


def attach_sites(
    topo: ASTopology,
    specs: Sequence[SiteSpec],
    first_asn: int = 64500,
    shared_providers: Optional[dict[str, Sequence[int]]] = None,
) -> list[AnycastSite]:
    """Create one origin AS per site spec and return the site objects."""
    sites = []
    shared_providers = shared_providers or {}
    for offset, spec in enumerate(specs):
        location = city(spec.city_code)
        asn = first_asn + offset
        attach_origin(
            topo,
            asn,
            location,
            num_providers=spec.num_providers,
            providers=shared_providers.get(spec.label),
            name=f"site-{spec.label}",
        )
        sites.append(AnycastSite(spec.label, asn, location, spec.local_only))
    return sites


def clients_for_stubs(
    topo: ASTopology,
    rng: random.Random,
    total_blocks: int,
    alpha: float = 1.1,
) -> ClientSpace:
    """Home ``total_blocks`` /24s across the topology's stub ASes."""
    stubs = stub_ases(topo)
    counts = zipf_block_counts(rng, len(stubs), total_blocks, alpha)
    return allocate_clients(stubs, counts)


def block_locations(clients: ClientSpace, topo: ASTopology) -> dict[str, GeoPoint]:
    """Per-block geography: each block sits at its home AS's city."""
    locations: dict[str, GeoPoint] = {}
    for block in clients.blocks:
        node = topo.nodes.get(clients.as_of(block))
        if node is not None and node.location is not None:
            locations[str(block)] = node.location
    return locations
