"""The Baltic cable-cut scenario: the paper's motivating example.

The paper opens with it (§1) and returns to it in §4.1: unexpected
submarine cable cuts in the Baltic Sea changed latency for European
networks, a third-party event several hops away from everyone it
affected, explained at the time only by one-off manual analysis.

This scenario builds a "country" — a cluster of ASes reached through
two submarine-cable transit providers — and cuts one cable mid-study.
Fenrir sees the event in the country's ingress-transit vectors; the
transit-diversity index drops toward 1 (single point of failure), and
the latency join shows the affected networks slowing down as their
traffic detours through the surviving cable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..bgp.events import LinkOutage
from ..bgp.policy import Announcement
from ..bgp.events import RoutingScenario
from ..bgp.topology import ASTopology
from ..controlplane.collector import RouteCollector
from ..controlplane.country import country_series
from ..core.series import VectorSeries
from ..net.geo import GeoPoint, city
from .builders import build_topology

__all__ = ["BalticStudy", "generate", "CABLE_CUT"]

START = datetime(2024, 11, 1)
END = datetime(2024, 12, 15)
CABLE_CUT = datetime(2024, 11, 18)  # the real cuts: 2024-11-17/18

# The named players: two submarine-cable transits and the country ASes.
CABLE_WEST = 3320  # the cable that gets cut
CABLE_EAST = 1299  # the surviving cable
COUNTRY_IX = 64700  # the country's main IXP/border AS
COUNTRY_ISPS = (64701, 64702, 64703)
ORIGIN = 64710  # a service hosted inside the country

AS_NAMES = {
    CABLE_WEST: "cable-west",
    CABLE_EAST: "cable-east",
    COUNTRY_IX: "country-ix",
}


@dataclass
class BalticStudy:
    """The generated cable-cut dataset."""

    topology: ASTopology
    scenario: RoutingScenario
    collector: RouteCollector
    series: VectorSeries  # country ingress transits per external vantage
    country_ases: set[int]
    sample_times: list[datetime]
    vantage_locations: dict[str, GeoPoint]
    service_location: GeoPoint


def generate(
    seed: int = 20241118,
    num_vantages: int = 250,
    cadence: timedelta = timedelta(days=1),
) -> BalticStudy:
    """Build the cable-cut study (deterministic in ``seed``)."""
    rng = random.Random(seed)
    topo = build_topology(rng, num_tier1=5, num_tier2=30, num_stubs=300)
    tier1s = sorted(asn for asn, node in topo.nodes.items() if node.tier == 1)

    # Two submarine-cable transit ASes, peered into the global core.
    topo.add_as(CABLE_WEST, name="cable-west", tier=2, location=city("ARN"))
    topo.add_as(CABLE_EAST, name="cable-east", tier=2, location=city("WAW"))
    topo.add_customer_link(tier1s[0], CABLE_WEST)
    topo.add_customer_link(tier1s[1], CABLE_WEST)
    topo.add_customer_link(tier1s[2], CABLE_EAST)
    topo.add_customer_link(tier1s[3], CABLE_EAST)

    # The country: a border IX buying from both cables, ISPs below it.
    topo.add_as(COUNTRY_IX, name="country-ix", tier=2, location=city("ARN"))
    topo.add_customer_link(CABLE_WEST, COUNTRY_IX)
    topo.add_customer_link(CABLE_EAST, COUNTRY_IX)
    for isp in COUNTRY_ISPS:
        topo.add_as(isp, name=f"isp-{isp}", tier=3, location=city("ARN"))
        topo.add_customer_link(COUNTRY_IX, isp)
    topo.add_as(ORIGIN, name="service", tier=3, location=city("ARN"))
    topo.add_customer_link(COUNTRY_IX, ORIGIN)

    country = {COUNTRY_IX, ORIGIN, *COUNTRY_ISPS}

    scenario = RoutingScenario(
        topo,
        [Announcement(origin=ORIGIN, label="service")],
        [
            # The anchor drags: cable-west severs from the country and
            # from its own transits, and stays down through the study.
            LinkOutage(CABLE_WEST, COUNTRY_IX, CABLE_CUT, END + timedelta(days=30)),
        ],
    )

    stubs = [
        asn
        for asn, node in topo.nodes.items()
        if node.tier == 3 and asn not in country
    ]
    vantages = rng.sample(stubs, min(num_vantages, len(stubs)))
    collector = RouteCollector(scenario, vantages)

    sample_times = []
    when = START
    while when < END:
        sample_times.append(when)
        when += cadence

    series = country_series(collector, country, sample_times, as_names=AS_NAMES)

    vantage_locations = {
        f"as{asn}": topo.nodes[asn].location
        for asn in vantages
        if topo.nodes[asn].location is not None
    }
    return BalticStudy(
        topology=topo,
        scenario=scenario,
        collector=collector,
        series=series,
        country_ases=country,
        sample_times=sample_times,
        vantage_locations=vantage_locations,
        service_location=city("ARN"),
    )
