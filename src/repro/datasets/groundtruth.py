"""B-Root/Atlas validation scenario: Table 4.

Four months of fine-grained Atlas rounds against a B-Root-like anycast
service, with a scripted operator maintenance log and scripted
third-party routing changes:

* **17 site drains** — short maintenance windows (the paper: "often
  lasting only tens of minutes"), externally visible;
* **2 traffic-engineering changes** — permanent announcement-scope
  adjustments, externally visible;
* **37 internal-only groups** — log entries with no routing effect;
* **18 third-party transit changes** (LinkRemove at a transit AS),
  invisible to the operator's log: 8 scheduled to coincide with
  internal maintenance windows (the paper's "FP?" rows) and 10
  standalone (the paper's "(*)" row of new visibility).

The raw log holds ~98 entries that group into 56 events under the
paper's same-operator/10-minute rule. Candidate third-party changes
are pre-validated against the routing oracle so each one actually
shifts catchments — mirroring the paper's premise that these changes
were externally visible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta

from ..anycast.atlas import AtlasFleet
from ..anycast.service import AnycastService
from ..bgp.events import LinkAdd, LinkOutage, LinkRemove, ScopeChange, SiteDrain
from ..bgp.policy import Scope
from ..bgp.topology import ASTopology, stub_ases
from ..core.detect import GroundTruthEntry, MaintenanceKind
from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..measure.loss import IidLoss
from .builders import SiteSpec, attach_sites, build_topology

__all__ = ["GroundTruthStudy", "generate"]

START = datetime(2023, 3, 1)

SITES = [
    SiteSpec("LAX", "LAX", num_providers=3),
    SiteSpec("MIA", "MIA", num_providers=2),
    SiteSpec("SIN", "SIN", num_providers=2),
    SiteSpec("IAD", "IAD", num_providers=2),
    SiteSpec("AMS", "AMS", num_providers=2),
]

OPERATORS = ("alice", "bob", "carol", "dave")


@dataclass
class GroundTruthStudy:
    """The validation dataset: observations plus the truth behind them."""

    topology: ASTopology
    service: AnycastService
    fleet: AtlasFleet
    series: VectorSeries
    log: list[GroundTruthEntry]  # the operator's maintenance log
    third_party_times: list[datetime]  # scripted changes NOT in the log
    coinciding_third_party: int  # how many overlap internal windows
    cadence: timedelta
    #: Per-event kind for ``third_party_times`` ("cut" or "peer-add"),
    #: in the same order. Empty on studies generated before the field
    #: existed (unpickled fixtures); callers must tolerate that.
    third_party_kinds: list[str] = field(default_factory=list)
    #: Scripted *transient* third-party link flaps (LinkOutage), also
    #: not in the operator log. Empty unless ``num_flaps`` > 0.
    flap_times: list[datetime] = field(default_factory=list)


def _spread_times(
    rng: random.Random,
    count: int,
    start: datetime,
    end: datetime,
    min_gap: timedelta,
    taken: list[datetime],
) -> list[datetime]:
    """Pick ``count`` times in [start, end) pairwise >= min_gap apart."""
    times: list[datetime] = []
    span = (end - start).total_seconds()
    attempts = 0
    while len(times) < count:
        attempts += 1
        if attempts > 100000:
            raise RuntimeError("could not place events; window too dense")
        candidate = start + timedelta(seconds=rng.uniform(0, span))
        if all(abs(candidate - other) >= min_gap for other in times + taken):
            times.append(candidate)
    return sorted(times)


def _visible_shift(
    service: AnycastService,
    fleet: AtlasFleet,
    before: datetime,
    after: datetime,
    min_fraction: float,
) -> bool:
    """Does the configuration change between two instants move VPs?"""
    a = service.catchment_map(before)
    b = service.catchment_map(after)
    moved = sum(1 for vp in fleet.vps if a.get(vp.asn) != b.get(vp.asn))
    return moved >= min_fraction * len(fleet.vps)


def generate(
    seed: int = 20230301,
    num_vps: int = 450,
    days: int = 121,
    cadence: timedelta = timedelta(minutes=12),
    num_drains: int = 17,
    num_te: int = 2,
    num_internal: int = 37,
    num_coinciding: int = 8,
    num_standalone: int = 10,
    extra_log_entries: int = 42,
    loss_probability: float = 0.001,
    min_visible_shift: float = 0.03,
    num_flaps: int = 0,
    flap_duration: timedelta = timedelta(minutes=36),
    third_party_cuts_only: bool = False,
    num_tier1: int = 5,
    num_tier2: int = 30,
    num_stubs: int = 300,
    site_specs: list[SiteSpec] | None = None,
    te_duration: timedelta | None = None,
) -> GroundTruthStudy:
    """Build the Table 4 validation study (deterministic in ``seed``).

    The defaults reproduce Table 4 byte for byte. The trailing knobs
    exist for :mod:`repro.classify` training studies: ``num_flaps``
    scripts *transient* third-party link outages (LinkOutage, duration
    ``flap_duration``) on top of the permanent LinkRemove cuts,
    ``third_party_cuts_only`` drops the peer-add candidates so every
    permanent third-party change is a link cut, the topology sizes
    shrink the simulation for fast repeated studies, and
    ``te_duration`` bounds each traffic-engineering window (default:
    to end of study, Table 4's permanent scoping) so many TE events do
    not saturate every site at once. With the defaults none of them
    consumes randomness, so existing seeds are unchanged.
    """
    rng = random.Random(seed)
    end = START + timedelta(days=days)
    topo = build_topology(
        rng, num_tier1=num_tier1, num_tier2=num_tier2, num_stubs=num_stubs
    )
    specs = SITES if site_specs is None else site_specs
    sites = attach_sites(topo, specs)
    service = AnycastService(topo, sites)
    fleet = AtlasFleet.place_vps(
        service, stub_ases(topo), count=num_vps, rng=rng, loss=IidLoss(loss_probability, rng)
    )

    min_gap = timedelta(hours=4)
    log: list[GroundTruthEntry] = []
    taken: list[datetime] = []

    # -- external: site drains (short windows) and TE (permanent) ----------
    # TE permanently scopes a site down to its customer cone; draining a
    # scoped site would be externally invisible, so drains avoid sites
    # whose TE has already taken effect.
    site_labels = [spec.label for spec in specs]
    te_times = _spread_times(rng, num_te, START + timedelta(days=2), end - timedelta(days=2), min_gap, taken)
    taken += te_times
    te_windows: dict[str, list[tuple[datetime, datetime]]] = {}
    for index, when in enumerate(te_times):
        site = site_labels[(index + 1) % len(site_labels)]
        te_end = end if te_duration is None else min(end, when + te_duration)
        te_windows.setdefault(site, []).append((when, te_end))
        service.add_event(ScopeChange(site, Scope.CUSTOMER_CONE, when, te_end))
        operator = rng.choice(OPERATORS)
        log.append(
            GroundTruthEntry(
                when, operator, MaintenanceKind.TRAFFIC_ENGINEERING, f"TE {site}"
            )
        )

    drain_times = _spread_times(rng, num_drains, START + timedelta(days=1), end - timedelta(days=1), min_gap, taken)
    taken += drain_times
    for index, when in enumerate(drain_times):
        eligible = [
            label
            for label in site_labels
            if not any(
                start <= when < te_end for start, te_end in te_windows.get(label, [])
            )
        ]
        if not eligible:
            raise RuntimeError("every site is TE-scoped at a drain time")
        site = eligible[index % len(eligible)]
        duration = timedelta(minutes=rng.choice([24, 30, 36]))
        service.add_event(SiteDrain(site, when, when + duration))
        operator = rng.choice(OPERATORS)
        log.append(
            GroundTruthEntry(when, operator, MaintenanceKind.SITE_DRAIN, f"drain {site}")
        )

    # -- internal-only maintenance (no routing effect) ----------------------
    internal_times = _spread_times(rng, num_internal, START, end, min_gap, taken)
    taken += internal_times
    for when in internal_times:
        operator = rng.choice(OPERATORS)
        log.append(
            GroundTruthEntry(when, operator, MaintenanceKind.INTERNAL, "server swap")
        )

    # -- third-party transit changes (not logged) ---------------------------
    # Realistic third-party actions near the service's transit: a site
    # origin loses one of its provider links, a transit provider gains
    # or loses a peering. Candidates are pre-validated against the
    # routing oracle so each scripted change visibly shifts catchments.
    origin_providers = sorted(
        {
            provider
            for site in sites
            for provider in topo.providers_of(site.origin_asn)
        }
    )
    tier2s = sorted(asn for asn, node in topo.nodes.items() if node.tier == 2)
    candidates: list[tuple[str, int, int]] = []
    for site in sites:
        providers = sorted(topo.providers_of(site.origin_asn))
        for provider in providers[1:]:  # keep at least one provider
            candidates.append(("cut", site.origin_asn, provider))
    for provider in origin_providers:
        for peer in sorted(topo.peers_of(provider)):
            candidates.append(("cut", provider, peer))
        for tier2 in tier2s:
            if tier2 != provider and topo.relationship(provider, tier2) is None:
                candidates.append(("peer-add", provider, tier2))
    if third_party_cuts_only:
        candidates = [entry for entry in candidates if entry[0] == "cut"]
        # Classification studies need a much deeper pool of *visible*
        # cuts — a catchment only moves when the losing site's best
        # path dies, which most near-origin de-peerings don't do — so
        # widen to every transit link in the topology: tier-2 uplinks
        # and all peerings. Gated so Table 4's candidate order (and
        # thus its rng stream) is untouched.
        seen = set(map(tuple, candidates))
        for asn in tier2s:
            for upstream in sorted(topo.providers_of(asn)):
                entry = ("cut", asn, upstream)
                if entry not in seen:
                    seen.add(entry)
                    candidates.append(entry)
            for peer in sorted(topo.peers_of(asn)):
                entry = ("cut", asn, peer)
                mirrored = ("cut", peer, asn)
                if entry not in seen and mirrored not in seen:
                    seen.add(entry)
                    candidates.append(entry)
    rng.shuffle(candidates)

    third_party: list[tuple[datetime, str]] = []
    standalone_slots = _spread_times(
        rng, num_standalone, START + timedelta(days=1), end - timedelta(days=1), min_gap, taken
    )
    taken += standalone_slots
    coinciding_slots = [
        when + timedelta(minutes=3) for when in internal_times[:num_coinciding]
    ]
    for slot in sorted(coinciding_slots + standalone_slots):
        placed = False
        while candidates and not placed:
            kind, a, b = candidates.pop()
            if kind == "cut":
                probe_event: LinkRemove | LinkAdd = LinkRemove(a, b, slot)
            else:
                probe_event = LinkAdd(a, b, slot, peer=True)
            service.add_event(probe_event)
            if _visible_shift(
                service,
                fleet,
                slot - timedelta(minutes=1),
                slot + timedelta(minutes=1),
                min_fraction=min_visible_shift,
            ):
                third_party.append((slot, kind))
                placed = True
            else:
                service.scenario.events.remove(probe_event)
                service.scenario.invalidate_cache()
        if not placed:
            raise RuntimeError("ran out of third-party candidate links")
    third_party.sort()

    # -- transient third-party link flaps (classify training only) ----------
    # Same candidate pool and visibility pre-validation as the permanent
    # cuts, but the link comes back after ``flap_duration`` — the
    # "third-party-flap" class a classifier must tell apart from a cut.
    flap_times: list[datetime] = []
    flap_slots = _spread_times(
        rng, num_flaps, START + timedelta(days=1), end - timedelta(days=1), min_gap, taken
    )
    taken += flap_slots
    for slot in flap_slots:
        placed = False
        while candidates and not placed:
            kind, a, b = candidates.pop()
            if kind != "cut":
                continue
            flap_event = LinkOutage(a, b, slot, slot + flap_duration)
            service.add_event(flap_event)
            if _visible_shift(
                service,
                fleet,
                slot - timedelta(minutes=1),
                slot + timedelta(minutes=1),
                min_fraction=min_visible_shift,
            ):
                flap_times.append(slot)
                placed = True
            else:
                service.scenario.events.remove(flap_event)
                service.scenario.invalidate_cache()
        if not placed:
            raise RuntimeError("ran out of third-party flap candidate links")
    flap_times.sort()

    # -- pad the log to ~98 raw entries via within-group companions ---------
    group_seeds = [entry for entry in log]
    for index in range(extra_log_entries):
        seed_entry = group_seeds[index % len(group_seeds)]
        log.append(
            GroundTruthEntry(
                seed_entry.time + timedelta(minutes=2 + (index % 3)),
                seed_entry.operator,
                seed_entry.kind
                if seed_entry.kind is MaintenanceKind.INTERNAL
                else MaintenanceKind.INTERNAL,
                "follow-up",
            )
        )
    log.sort(key=lambda entry: entry.time)

    # -- measure -------------------------------------------------------------
    num_rounds = int((end - START) / cadence)
    series = VectorSeries(fleet.network_ids(), StateCatalog())
    for index in range(num_rounds):
        when = START + cadence * index
        series.append_mapping(fleet.measure(when), when)

    return GroundTruthStudy(
        topology=topo,
        service=service,
        fleet=fleet,
        series=series,
        log=log,
        third_party_times=[slot for slot, _ in third_party],
        coinciding_third_party=num_coinciding,
        cadence=cadence,
        third_party_kinds=[kind for _, kind in third_party],
        flap_times=flap_times,
    )
