"""G-Root scenario: Figure 1 and Table 3.

Ten days of anycast catchments measured by an Atlas-style VP fleet,
with the paper's three scripted phenomena:

* STR drains to NAP around midnight 2020-03-03 for 4.5 h, again on
  2020-03-05, and a third time from 2020-03-07 through the end;
* a smaller CMH→SAT shift for two days starting 2020-03-06 (modelled
  as origin-side prepending, with CMH and SAT sharing providers so the
  displaced networks land on SAT deterministically);
* transition-convergence errors: VPs whose catchment just moved may
  briefly answer ``err`` (Table 3's large STR→err column), recovering
  the next round.

Two series are produced: a coarse one covering all ten days (Figure 1)
and a 4-minute-resolution zoom around the first drain edge (Table 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..anycast.atlas import AtlasFleet
from ..anycast.service import AnycastService
from ..bgp.convergence import convergence_steps
from ..bgp.events import SiteDrain, TrafficEngineering
from ..bgp.topology import ASTopology, stub_ases
from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..measure.loss import IidLoss
from .builders import SiteSpec, attach_sites, build_topology

__all__ = ["GRootStudy", "generate"]

START = datetime(2020, 3, 1)
# Provider fan-out shapes catchment sizes: STR is the dominant European
# site (it drains into NAP, its regional neighbour, exactly as Figure 1
# shows), HNL is local-only and barely observed.
SITES = [
    SiteSpec("STR", "STR", num_providers=4),
    SiteSpec("NAP", "NAP", num_providers=3),
    SiteSpec("CMH", "CMH", num_providers=2),
    SiteSpec("NRT", "NRT", num_providers=2),
    SiteSpec("SAT", "SAT", num_providers=2),
    SiteSpec("HNL", "HNL", num_providers=1, local_only=True),
]


@dataclass
class GRootStudy:
    """The generated G-Root dataset and its instruments."""

    topology: ASTopology
    service: AnycastService
    fleet: AtlasFleet
    series: VectorSeries  # coarse, 10 days (Figure 1)
    zoom: VectorSeries  # 4-minute rounds around the first drain (Table 3)


def _drain(site: str, day: int, hour: int, hours: float) -> SiteDrain:
    start = START + timedelta(days=day, hours=hour)
    return SiteDrain(site, start, start + timedelta(hours=hours))


def _measure_series(
    fleet: AtlasFleet,
    times: list[datetime],
    rng: random.Random,
) -> VectorSeries:
    """Run rounds, measuring mid-convergence state at config changes.

    When the routing configuration changed since the previous round,
    this round observes a BGP convergence transient
    (:func:`repro.bgp.convergence.convergence_steps`): some moved
    networks still answer from the stale site, others are transiently
    unreachable (→ ``err``) — Table 3's STR→err→NAP two-step.
    """
    scenario = fleet.service.scenario
    series = VectorSeries(fleet.network_ids(), StateCatalog())
    previous_signature = None
    previous_outcome = None
    for when in times:
        signature = scenario.active_events_at(when)
        outcome = scenario.outcome_at(when)
        override = None
        if previous_signature is not None and signature != previous_signature:
            steps = convergence_steps(
                previous_outcome, outcome, rng, rounds=2, withdraw_first=0.5
            )
            override = steps[0]
        series.append_mapping(fleet.measure(when, catchment_override=override), when)
        previous_signature = signature
        previous_outcome = outcome
    return series


def generate(
    seed: int = 20200301,
    num_vps: int = 1500,
    coarse_interval: timedelta = timedelta(hours=2),
) -> GRootStudy:
    """Build the full G-Root study (deterministic in ``seed``)."""
    rng = random.Random(seed)
    topo = build_topology(rng, num_tier1=6, num_tier2=36, num_stubs=360)
    sites = attach_sites(topo, SITES)

    events = [
        _drain("STR", day=2, hour=0, hours=4.5),  # 2020-03-03 midnight
        _drain("STR", day=4, hour=1, hours=5.0),  # 2020-03-05
        SiteDrain(
            "STR",
            START + timedelta(days=6, hours=3),  # 2020-03-07 onward
            START + timedelta(days=30),
        ),
    ]
    service = AnycastService(topo, sites, events)
    # The secondary CMH shift: prepend CMH's announcement toward its
    # providers for two days, pushing part of its catchment to nearby
    # sites (SAT picks up most of it).
    cmh_origin = service.sites["CMH"].origin_asn
    te_start = START + timedelta(days=5)  # 2020-03-06
    for provider in sorted(topo.providers_of(cmh_origin)):
        service.add_event(
            TrafficEngineering(
                "CMH", provider, 2, te_start, te_start + timedelta(days=2)
            )
        )

    fleet = AtlasFleet.place_vps(
        service,
        stub_ases(topo),
        count=num_vps,
        rng=rng,
        loss=IidLoss(0.02, rng),
    )
    # Figure 1's small, constant "other" population: VPs behind
    # identifier-mangling middleboxes.
    fleet.mangled_vp_fraction = 0.03

    num_coarse = int(timedelta(days=10) / coarse_interval)
    coarse_times = [START + coarse_interval * i for i in range(num_coarse)]
    series = _measure_series(fleet, coarse_times, rng)

    zoom_start = START + timedelta(days=2) - timedelta(minutes=8)
    zoom_times = [zoom_start + timedelta(minutes=4) * i for i in range(6)]
    zoom = _measure_series(fleet, zoom_times, rng)

    return GRootStudy(topo, service, fleet, series, zoom)
