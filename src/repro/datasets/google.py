"""Google scenario: Figure 5 (aggressive front-end churn).

Two discontiguous EDNS-CS collection windows, as in the paper: three
days starting 2013-05-26 (the Calder et al. snapshot era) and sixty
days starting 2024-02-17. Google's serving infrastructure is modelled
as a :class:`~repro.webmap.frontends.ChurnFleet`: thousands of front
ends, hash-assigned per client prefix, reshuffled weekly with ~10%
daily flux and a pinned stable share — yielding the paper's shape of
Φ ≈ 0.79 within a week, ≈ 0.25 across weeks, and ≈ 0 between the 2013
and 2024 infrastructure generations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..net.addr import IPv4Prefix
from ..webmap.frontends import ChurnFleet
from ..webmap.mapper import EcsMapper

__all__ = ["GoogleStudy", "generate", "ERA_2013_START", "ERA_2024_START"]

ERA_2013_START = datetime(2013, 5, 26)
ERA_2013_DAYS = 3
ERA_2024_START = datetime(2024, 2, 17)
ERA_2024_DAYS = 60


@dataclass
class GoogleStudy:
    """The generated Google dataset and its instruments."""

    fleet_2013: ChurnFleet
    fleet_2024: ChurnFleet
    mapper: EcsMapper
    series: VectorSeries
    prefixes: list[IPv4Prefix]


def generate(
    seed: int = 20240217,
    num_prefixes: int = 2000,
    cadence: timedelta = timedelta(days=1),
) -> GoogleStudy:
    """Build the Google study (deterministic in ``seed``)."""
    rng = random.Random(seed)
    fleet_2013 = ChurnFleet(
        num_frontends=600,
        epoch=ERA_2013_START,
        era="g2013",
        stable_share=0.30,
        daily_change=0.10,
    )
    fleet_2024 = ChurnFleet(
        num_frontends=3000,
        epoch=ERA_2024_START,
        era="g2024",
        stable_share=0.30,
        daily_change=0.10,
    )

    base = IPv4Prefix.from_string("40.0.0.0/8")
    prefixes = [
        IPv4Prefix(base.network + (index << 8), 24) for index in range(num_prefixes)
    ]

    def select(prefix: IPv4Prefix, when: datetime) -> str:
        fleet = fleet_2013 if when < datetime(2020, 1, 1) else fleet_2024
        return fleet.select(prefix, when)

    mapper = EcsMapper(
        hostname="www.google.com",
        select=select,
        rng=rng,
        query_failure_probability=0.01,
    )

    series = VectorSeries([str(p) for p in prefixes], StateCatalog())
    times = [ERA_2013_START + cadence * i for i in range(ERA_2013_DAYS)]
    times += [ERA_2024_START + cadence * i for i in range(ERA_2024_DAYS)]
    for when in times:
        series.append_mapping(mapper.measure(when, prefixes), when)

    return GoogleStudy(fleet_2013, fleet_2024, mapper, series, prefixes)
