"""Wikipedia scenario: Figure 6 (codfw drain and partial return).

Wikipedia serves its seven data centers by client geography. The
scripted event follows the paper and Wikimedia's public dashboard:
codfw drains on 2025-03-19 and returns on 2025-03-26, but only ~30% of
its former clients come back — the post-event mode is only ~80% similar
to the pre-event one. During the drain, codfw's (Dallas) clients split
naturally by geography: most fall to eqiad (Ashburn), the west-coast
remainder to ulsfo (San Francisco).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..net.addr import IPv4Prefix
from ..net.geo import CITIES, GeoPoint, city
from ..webmap.frontends import GeoFleet, GeoSite
from ..webmap.mapper import EcsMapper

__all__ = ["WikipediaStudy", "generate", "DRAIN_START", "DRAIN_END", "SITES"]

START = datetime(2025, 3, 15)
END = datetime(2025, 4, 26)
DRAIN_START = datetime(2025, 3, 19)
DRAIN_END = datetime(2025, 3, 26)

SITES = {
    "eqiad": "EQIAD",
    "codfw": "CODFW",
    "ulsfo": "ULSFO",
    "eqsin": "EQSIN",
    "esams": "ESAMS",
    "drmrs": "DRMRS",
    "magru": "MAGRU",
}


@dataclass
class WikipediaStudy:
    """The generated Wikipedia dataset and its instruments."""

    fleet: GeoFleet
    mapper: EcsMapper
    series: VectorSeries
    prefixes: list[IPv4Prefix]
    locations: dict[str, GeoPoint]
    # §2.5: "top websites should be weighted by the number of users in
    # each network" — a heavy-tailed synthetic user count per prefix.
    users: dict[str, float] = None  # type: ignore[assignment]


def _client_prefixes(
    rng: random.Random, count: int
) -> tuple[list[IPv4Prefix], dict[str, GeoPoint]]:
    """Client /24s placed in cities, weighted so codfw serves ~20%.

    Wikipedia's codfw (Dallas) carries about a fifth of clients in the
    paper's Figure 6a; cities in codfw's geographic catchment get a
    higher placement weight to reproduce that share.
    """
    site_points = [city(code) for code in SITES.values()]
    codfw = city("CODFW")

    def weight(point: GeoPoint) -> float:
        nearest = min(site_points, key=point.distance_km)
        if nearest.code == "CODFW":
            return 6.0
        return 2.0 if point.lon < 40 else 1.0

    cities = list(CITIES.values())
    weights = [weight(point) for point in cities]
    del codfw
    prefixes = []
    locations: dict[str, GeoPoint] = {}
    base = IPv4Prefix.from_string("30.0.0.0/8")
    for index in range(count):
        prefix = IPv4Prefix(base.network + (index << 8), 24)
        prefixes.append(prefix)
        locations[str(prefix)] = rng.choices(cities, weights)[0]
    return prefixes, locations


def generate(
    seed: int = 20250315,
    num_prefixes: int = 2000,
    cadence: timedelta = timedelta(days=1),
    return_fraction: float = 0.3,
) -> WikipediaStudy:
    """Build the Wikipedia study (deterministic in ``seed``)."""
    rng = random.Random(seed)
    fleet = GeoFleet(
        sites=[GeoSite(label, city(code)) for label, code in SITES.items()],
        border_flux=0.02,
        epoch=START,
    )
    fleet.add_drain("codfw", DRAIN_START, DRAIN_END, return_fraction=return_fraction)

    prefixes, locations = _client_prefixes(rng, num_prefixes)

    def select(prefix: IPv4Prefix, when: datetime) -> str:
        return fleet.select(prefix, locations[str(prefix)], when)

    mapper = EcsMapper(
        hostname="www.wikipedia.org",
        select=select,
        rng=rng,
        query_failure_probability=0.02,
    )

    series = VectorSeries([str(p) for p in prefixes], StateCatalog())
    when = START
    while when < END:
        series.append_mapping(mapper.measure(when, prefixes), when)
        when += cadence

    ranks = list(range(1, len(prefixes) + 1))
    rng.shuffle(ranks)
    users = {
        str(prefix): 1000.0 / (rank**1.1)
        for prefix, rank in zip(prefixes, ranks)
    }
    return WikipediaStudy(fleet, mapper, series, prefixes, locations, users)
