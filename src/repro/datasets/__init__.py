"""Scenario generators reproducing each dataset of the paper (Table 2).

Each module builds a deterministic synthetic equivalent of one paper
dataset — topology, service, scripted events, measurement instruments —
and returns a study object holding the measured
:class:`~repro.core.series.VectorSeries` plus everything the
corresponding benchmark needs.
"""

from . import baltic, broot, builders, google, groot, groundtruth, usc, wikipedia

__all__ = ["baltic", "broot", "builders", "google", "groot", "groundtruth", "usc", "wikipedia"]
