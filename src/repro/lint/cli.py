"""The ``repro lint`` / ``python -m repro.lint`` command line.

Exit codes are stable and documented (CI depends on them):

* ``0`` — no findings (after suppressions and baseline).
* ``1`` — at least one finding.
* ``2`` — usage or environment error (bad flag, unreadable baseline,
  git failure under ``--changed``); argparse uses 2 as well.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .base import all_rules
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import lint_paths
from .report import render_github, render_json, render_text

__all__ = ["build_parser", "main"]

_FORMATS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="fenlint: repo-specific invariant checks "
        "(durability, determinism, async hygiene, obs conventions)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], type=Path,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=sorted(_FORMATS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root for relative paths, the default baseline, and "
        "docs cross-checks (default: current directory)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help=f"baseline JSON of grandfathered findings (default: "
        f"<root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0 "
        "(grandfather everything currently reported)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only files changed relative to git REF (default HEAD); "
        "keeps CI and pre-commit runs fast as the repo grows",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="also write the JSON report to PATH (any --format); what CI "
        "uploads as an artifact",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="print the wall-clock runtime to stderr and exit 2 if it "
        "exceeds SECONDS; CI's guard against analysis cost creeping up",
    )
    return parser


def _split(value: Optional[str]) -> Optional[list[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = (args.root or Path.cwd()).resolve()

    if args.list_rules:
        for rule in all_rules():
            scope = f" [{','.join(rule.scopes)}]" if rule.scopes else ""
            print(
                f"{rule.name:<28} {rule.severity:<8}{scope} {rule.description}"
            )
        return 0

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE_NAME
        if candidate.exists():
            baseline_path = candidate
    baseline = None
    if baseline_path is not None and baseline_path.exists() and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"fenlint: unreadable baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    started = time.monotonic()
    try:
        result = lint_paths(
            args.paths,
            root=root,
            select=_split(args.select),
            ignore=_split(args.ignore),
            baseline=baseline,
            changed_ref=args.changed,
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary: report, exit 2
        print(f"fenlint: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or root / DEFAULT_BASELINE_NAME
        Baseline.from_findings(result.findings).write(target)
        print(
            f"fenlint: baselined {len(result.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    sys.stdout.write(_FORMATS[args.format](result))
    if args.report is not None:
        args.report.write_text(render_json(result), encoding="utf-8")
    if args.time_budget is not None:
        elapsed = time.monotonic() - started
        print(
            f"fenlint: analyzed {result.files_checked} file(s) in "
            f"{elapsed:.2f}s (budget {args.time_budget:.0f}s)",
            file=sys.stderr,
        )
        if elapsed > args.time_budget:
            print(
                f"fenlint: runtime budget exceeded "
                f"({elapsed:.2f}s > {args.time_budget:.0f}s)",
                file=sys.stderr,
            )
            return 2
    return result.exit_code
