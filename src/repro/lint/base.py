"""Rule base classes, the rule registry, and parsed source files.

Two rule shapes:

* :class:`Rule` — per-file: gets one parsed :class:`SourceFile`, yields
  :class:`~repro.lint.findings.Finding`s. Most rules subclass
  ``ast.NodeVisitor`` internally.
* :class:`CrossFileRule` — whole-project: gets every collected file at
  once plus the project root, for checks no single file can answer
  (wire-protocol handler/client/docs agreement, metric kind clashes).

Scoping: a rule that only makes sense for one subsystem declares
``scopes`` — path *segments* (``("serve",)``, ``("core", "bgp",
"datasets")``) any of which must appear in the file's relative path.
Segment matching (rather than ``src/repro/...`` prefixes) is what lets
the golden fixtures under ``tests/lint_fixtures/serve/`` exercise a
serve-scoped rule without pretending to live in ``src``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Optional, Type, Union

from .findings import Finding
from .suppressions import Suppressions

__all__ = [
    "ALL_RULES",
    "AnyRule",
    "CrossFileRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "register",
]


@dataclass
class SourceFile:
    """One collected file: source text, AST, and suppression map."""

    path: Path  # absolute
    relpath: str  # project-relative, POSIX separators
    source: str
    tree: Optional[ast.Module]  # None when the file failed to parse
    parse_error: Optional[str] = None
    suppressions: Suppressions = field(default_factory=Suppressions)
    _contexts: Optional[list[tuple[int, int, str]]] = field(
        default=None, repr=False
    )

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        path = Path(path)
        try:
            relpath = str(PurePosixPath(path.resolve().relative_to(root.resolve())))
        except ValueError:
            relpath = str(PurePosixPath(path))
        source = path.read_text(encoding="utf-8")
        tree: Optional[ast.Module] = None
        parse_error: Optional[str] = None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            parse_error = f"{exc.msg} (line {exc.lineno})"
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            parse_error=parse_error,
            suppressions=Suppressions.scan(source),
        )

    @property
    def parts(self) -> tuple[str, ...]:
        return PurePosixPath(self.relpath).parts

    def context_at(self, line: int) -> str:
        """Innermost enclosing class/function chain for ``line``."""
        if self._contexts is None:
            spans: list[tuple[int, int, str]] = []
            if self.tree is not None:

                def walk(node: ast.AST, prefix: str) -> None:
                    for child in ast.iter_child_nodes(node):
                        if isinstance(
                            child,
                            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                        ):
                            name = f"{prefix}{child.name}"
                            end = getattr(child, "end_lineno", child.lineno)
                            spans.append((child.lineno, end or child.lineno, name))
                            walk(child, f"{name}.")
                        else:
                            walk(child, prefix)

                walk(self.tree, "")
            self._contexts = spans
        best = ""
        best_size = None
        for start, end, name in self._contexts:
            if start <= line <= end and (best_size is None or end - start < best_size):
                best, best_size = name, end - start
        return best

    def finding(
        self,
        rule: str,
        node: Optional[ast.AST],
        message: str,
        line: Optional[int] = None,
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` (or an explicit line)."""
        lineno = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if line is None else 0
        return Finding(
            path=self.relpath,
            line=lineno,
            col=col,
            rule=rule,
            message=message,
            context=self.context_at(lineno),
        )


class Rule:
    """Base class for per-file AST rules."""

    #: kebab-case identifier used in output, ``--select``, suppressions,
    #: and the baseline.
    name: str = ""
    #: one-line rationale shown by ``repro lint --list-rules``.
    description: str = ""
    #: "error" (default) gates CI; "warning" renders as an annotation
    #: but still counts toward the exit code — downgrades are for
    #: rules being soft-launched, not for permanently ignorable noise.
    severity: str = "error"
    #: path segments the rule is restricted to; empty = every file.
    scopes: tuple[str, ...] = ()
    #: path segments the rule must *not* run on (e.g. the obs package
    #: itself for the span-gate rule).
    exclude_scopes: tuple[str, ...] = ()

    def applies_to(self, source: SourceFile) -> bool:
        parts = set(source.parts[:-1])  # directories only, not the filename
        if self.exclude_scopes and parts & set(self.exclude_scopes):
            return False
        if self.scopes:
            return bool(parts & set(self.scopes))
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class CrossFileRule(Rule):
    """Base class for whole-project consistency rules.

    ``applies_to``/``check`` are unused; the engine calls
    :meth:`check_project` once with every collected file.
    """

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, files: Iterable[SourceFile], root: Path
    ) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


AnyRule = Union[Rule, CrossFileRule]

#: registry populated by the :func:`register` decorator at import time.
ALL_RULES: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.name:
        raise ValueError(f"{rule_class.__name__} must set a rule name")
    if rule_class.name in ALL_RULES:
        raise ValueError(f"duplicate rule name: {rule_class.name!r}")
    ALL_RULES[rule_class.name] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, stable order."""
    from . import rules  # noqa: F401  (importing populates the registry)

    return [ALL_RULES[name]() for name in sorted(ALL_RULES)]
