"""``# fenlint: disable=<rule>`` comment scanning.

A suppression comment silences named rules (comma-separated, or
``all``) for the line it sits on — either trailing the offending
statement or on its own line immediately above it, mirroring how
``noqa``-style markers are used in practice. Multi-line statements are
covered by suppressing the line the finding anchors to (the AST node's
``lineno``).

Scanning is a line-level regex rather than ``tokenize`` so that a file
with a syntax error can still report its suppressions (the engine
turns unparseable files into ``parse-error`` findings, which must be
suppressible like any other).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Suppressions"]

_PATTERN = re.compile(r"#\s*fenlint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass
class Suppressions:
    """Per-line rule-name sets parsed from one file's comments."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        by_line: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PATTERN.search(text)
            if match is None:
                continue
            names = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if not names:
                continue
            by_line[lineno] = by_line.get(lineno, frozenset()) | names
            # A standalone marker line covers the statement below it.
            if text.lstrip().startswith("#"):
                covered = lineno + 1
                by_line[covered] = by_line.get(covered, frozenset()) | names
        return cls(by_line=by_line)

    def silences(self, rule: str, line: int) -> bool:
        names = self.by_line.get(line)
        if names is None:
            return False
        return rule in names or "all" in names
