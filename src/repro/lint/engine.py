"""File collection and rule orchestration.

``lint_paths`` is the one entry point the CLI, the tests, and CI all
share: collect ``.py`` files (sorted, so output order is deterministic
across runs and machines), parse each once, run every applicable
per-file rule, then every cross-file rule over the whole set, apply
``# fenlint: disable`` suppressions, and finally subtract the
baseline. Unparseable files surface as ``parse-error`` findings
rather than crashing the run — a lint gate that dies on the broken
file it should be reporting is useless in CI.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .base import CrossFileRule, Rule, SourceFile, all_rules
from .baseline import Baseline
from .findings import Finding

__all__ = ["LintResult", "changed_files", "lint_files", "lint_paths"]

PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintResult:
    """Everything one lint run produced, pre-sorted and counted."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        """0 = clean, 1 = findings. (Usage/internal errors exit 2.)"""
        return 1 if self.findings else 0


def collect_files(paths: Sequence[Path | str], root: Path) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            seen.update(p.resolve() for p in path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            seen.add(path.resolve())
    return sorted(seen)


def changed_files(ref: str, root: Path) -> list[Path]:
    """Files changed relative to ``ref`` (git diff + untracked).

    Diffs against ``git merge-base ref HEAD`` rather than ``ref``
    itself: on a feature branch, ``--changed main`` must mean "what
    this branch touched", not "every file main changed since the
    branch point" — the naive ``git diff main`` answer includes the
    latter and lints code the branch never modified. Deleted and
    renamed-away paths are excluded (``--diff-filter=d`` plus an
    existence check) so a removal doesn't crash the run on a file
    that is no longer there.
    """

    def run(*args: str) -> list[str]:
        completed = subprocess.run(
            ["git", *args],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
        return [line for line in completed.stdout.splitlines() if line.strip()]

    try:
        base = run("merge-base", ref, "HEAD")[0]
    except (subprocess.CalledProcessError, IndexError):
        raise ValueError(
            f"cannot resolve merge base of {ref!r} and HEAD; "
            f"is {ref!r} a valid ref?"
        ) from None
    names = run("diff", "--name-only", "--diff-filter=d", base, "--", "*.py")
    names += run("ls-files", "--others", "--exclude-standard", "--", "*.py")
    paths = {(root / name).resolve() for name in names}
    return sorted(path for path in paths if path.exists())


def _stamped(rule: Rule, findings: Iterable[Finding]) -> Iterator[Finding]:
    """Apply the producing rule's severity to its findings."""
    for finding in findings:
        if rule.severity == "error":
            yield finding
        else:
            yield replace(finding, severity=rule.severity)


def _select(
    rules: Iterable[Rule],
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> list[Rule]:
    chosen = list(rules)
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if rule.name in wanted]
    if ignore:
        unwanted = set(ignore)
        chosen = [rule for rule in chosen if rule.name not in unwanted]
    return chosen


def lint_files(
    files: Sequence[Path],
    root: Path,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Run the rule set over already-collected files."""
    root = Path(root)
    active = _select(rules if rules is not None else all_rules(), select, ignore)
    per_file = [rule for rule in active if not isinstance(rule, CrossFileRule)]
    cross_file = [rule for rule in active if isinstance(rule, CrossFileRule)]

    sources = [SourceFile.load(path, root) for path in files]
    result = LintResult(files_checked=len(sources))
    raw: list[Finding] = []

    for source in sources:
        if source.parse_error is not None:
            raw.append(
                Finding(
                    path=source.relpath,
                    line=1,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {source.parse_error}",
                )
            )
            continue
        for rule in per_file:
            if rule.applies_to(source):
                raw.extend(_stamped(rule, rule.check(source)))

    for rule in cross_file:
        raw.extend(_stamped(rule, rule.check_project(sources, root)))

    by_relpath = {source.relpath: source for source in sources}
    visible: list[Finding] = []
    for finding in raw:
        source = by_relpath.get(finding.path)
        if source is not None and source.suppressions.silences(
            finding.rule, finding.line
        ):
            result.suppressed += 1
        else:
            visible.append(finding)

    if baseline is not None:
        visible, result.baselined = baseline.filter(sorted(visible))

    result.findings = sorted(visible)
    return result


def lint_paths(
    paths: Sequence[Path | str],
    root: Path,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    changed_ref: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Collect files under ``paths`` (optionally intersected with the
    git diff against ``changed_ref``) and lint them."""
    root = Path(root)
    files = collect_files(paths, root)
    if changed_ref is not None:
        changed = set(changed_files(changed_ref, root))
        files = [path for path in files if path in changed]
    return lint_files(
        files, root, select=select, ignore=ignore, baseline=baseline, rules=rules
    )
