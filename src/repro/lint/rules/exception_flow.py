"""Rule: ``unmapped-exception-flow``.

The wire protocol's error surface is the ``ERR_*`` response family: a
client sees a structured error line, logs it, and moves on. An
exception that escapes ``_dispatch`` instead unwinds the connection
handler — the client gets a dropped connection, in-flight pipelined
requests die with it, and the failure is indistinguishable from a
crash. So the dispatch contract is: every exception raisable in
``_dispatch``-reachable code is either caught somewhere on the way up
or mapped to an ``ERR_*`` response by a ``_dispatch`` handler.

The rule is module-interprocedural: it builds the call graph from
every function named ``_dispatch``, computes which exception types can
escape each reachable function (``raise`` sites filtered through
enclosing handlers; resolved call sites import their callee's escape
set), and flags any type that makes it out of ``_dispatch`` itself.
Handlers *inside* ``_dispatch`` only absorb a type when their body
actually maps it — references an ``ERR_*`` name or calls an
``error_response``-style helper; a dispatch handler that catches and
produces nothing is a silent protocol hole, not a mapping. Deeper
helpers absorb with any catch (handling an exception internally is a
fine way to never raise it).

Files with no ``_dispatch`` produce nothing — the rule describes the
dispatch contract, not exception style in general. Calls that do not
resolve module-locally (other objects, imports) contribute no raises:
the rule only argues from code it can see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ..flow import DYNAMIC, FunctionInfo, ModuleGraph

__all__ = ["UnmappedExceptionFlow"]


def _handler_maps_to_error(handler: ast.ExceptHandler) -> bool:
    """Does the handler body produce a protocol error response?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Name) and node.id.startswith("ERR_"):
            return True
        if isinstance(node, ast.Attribute) and node.attr.startswith("ERR_"):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if "error_response" in name:
                return True
    return False


@register
class UnmappedExceptionFlow(Rule):
    name = "unmapped-exception-flow"
    description = (
        "exception can escape _dispatch without being mapped to an "
        "ERR_* response; the client sees a dropped connection instead "
        "of a protocol error"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        graph = ModuleGraph(source.tree)
        dispatches = [
            qualname
            for qualname, info in graph.functions.items()
            if info.name == "_dispatch"
        ]
        if not dispatches:
            return

        def absorbing(info: FunctionInfo, handler: ast.ExceptHandler) -> bool:
            if info.name != "_dispatch":
                return True
            return _handler_maps_to_error(handler)

        escaping = graph.escaping_exceptions(absorbing=absorbing)
        seen: set[tuple[str, int]] = set()
        for qualname in sorted(dispatches):
            for name, anchor in sorted(
                escaping[qualname].items(), key=lambda kv: (kv[1].lineno, kv[0])
            ):
                if (name, anchor.lineno) in seen:
                    continue
                seen.add((name, anchor.lineno))
                label = (
                    "an exception of statically-unknown type"
                    if name == DYNAMIC
                    else name
                )
                yield source.finding(
                    self.name,
                    anchor,
                    f"{label} raised here can escape {qualname}() without "
                    f"being mapped to an ERR_* response; catch it or add "
                    f"a mapping handler in _dispatch",
                )
