"""Rule: ``async-interleaving-race``.

An asyncio event loop only switches coroutines at ``await`` points, so
a read-modify-write of shared state is atomic *unless* an ``await``
sits between the read and the write. The classic bug:

    seq = self._seq          # read
    await self._journal(x)   # yield point: another coroutine runs
    self._seq = seq + 1      # write of the stale value

Two concurrent requests both read ``seq == 7``, both write ``8``, one
increment is lost — and in this repo that means a duplicated journal
sequence number, exactly the kind of corruption the byte-exactness
claims cannot absorb.

The rule runs on every ``async def``: it builds the function's CFG,
finds writes to ``self.X`` (or to names declared ``global``) whose
right-hand side *depends* on an earlier read of the same state — the
value flows through a local that was assigned from ``self.X``
(tracked with reaching definitions), or the write statement itself
awaits between its read and its store — and flags the pair when some
CFG path from read to write crosses a yield point and no single
``async with <lock>`` statement covers both ends. Covering means the
*same* ``with`` statement: releasing and re-acquiring the lock between
read and write is exactly the hole the rule exists to catch, so two
separate acquisitions of the same lock do not count.

Deliberately not flagged:

* ``self._inflight += 1`` — an augmented assignment reads and writes
  in one statement with no internal ``await``; it is atomic on the
  loop.
* ``self._topology = _Topology(payload)`` after an ``await`` — the
  written value does not derive from ``self._topology``, so the write
  is a plain publish, not a lost update. (Check-then-act races on
  *independent* writes are out of scope; flagging them drowns the
  signal in event-loop idioms that are actually fine.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ..flow import (
    CFG,
    build_cfg,
    reaching_definitions,
    yield_on_some_path,
)
from ..flow.cfg import expression_parts, walk_expressions
from ._util import lock_key

__all__ = ["AsyncInterleavingRace"]


def _keys_loaded(parts: list[ast.AST], globals_: frozenset[str]) -> set[str]:
    """Shared-state keys read by the given expression parts."""
    keys: set[str] = set()
    for part in parts:
        for node in walk_expressions(part):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                keys.add(f"self.{node.attr}")
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in globals_
            ):
                keys.add(f"global {node.id}")
    return keys


def _target_keys(
    target: ast.expr, globals_: frozenset[str]
) -> list[str]:
    """Shared-state keys a store target writes."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return [f"self.{target.attr}"]
    if isinstance(target, ast.Subscript):
        return _target_keys(target.value, globals_)  # self.x[k] mutates self.x
    if isinstance(target, ast.Name) and target.id in globals_:
        return [f"global {target.id}"]
    if isinstance(target, (ast.Tuple, ast.List)):
        keys: list[str] = []
        for element in target.elts:
            keys.extend(_target_keys(element, globals_))
        return keys
    return []


def _writes_of(
    stmt: ast.stmt, globals_: frozenset[str]
) -> list[tuple[str, ast.expr]]:
    """(key, value expression) pairs for shared-state stores in ``stmt``.

    Augmented assignments are excluded on purpose: their read and
    write share one statement and cannot be interleaved unless the
    statement awaits, which ``self.x += await f()`` makes syntactically
    loud enough to leave to review.
    """
    targets: list[ast.expr]
    value: Optional[ast.expr]
    if isinstance(stmt, ast.Assign):
        targets, value = list(stmt.targets), stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        targets, value = [stmt.target], stmt.value
    else:
        return []
    if value is None:
        return []
    pairs: list[tuple[str, ast.expr]] = []
    for target in targets:
        for key in _target_keys(target, globals_):
            pairs.append((key, value))
    return pairs


def _shares_lock_frame(cfg: CFG, read: int, write: int) -> bool:
    """Does one ``with``/``async with`` statement acquiring a lock
    lexically cover both nodes? Identity matters: the same statement,
    not merely the same lock."""
    common = set(cfg.nodes[read].enclosing_with) & set(
        cfg.nodes[write].enclosing_with
    )
    for stmt in common:
        items = getattr(stmt, "items", [])
        if any(lock_key(item.context_expr) is not None for item in items):
            return True
    return False


@register
class AsyncInterleavingRace(Rule):
    name = "async-interleaving-race"
    description = (
        "read of shared state and a dependent write are separated by an "
        "await with no lock covering both; a concurrent coroutine can "
        "interleave and the write clobbers its update"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        globals_ = frozenset(
            name
            for stmt in walk_expressions(fn)
            if isinstance(stmt, ast.Global)
            for name in stmt.names
        )
        cfg = build_cfg(fn)
        loads: dict[int, set[str]] = {}
        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            keys = _keys_loaded(expression_parts(node.stmt), globals_)
            if keys:
                loads[node.index] = keys
        rdefs = reaching_definitions(cfg)

        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            for key, value in _writes_of(node.stmt, globals_):
                read_nodes: set[int] = set()
                rhs_keys = _keys_loaded([value], globals_)
                if key in rhs_keys and node.is_yield:
                    # e.g. ``self.x = await f(self.x)``: read, suspend,
                    # then store — interleavable within one statement.
                    read_nodes.add(node.index)
                rhs_names = {
                    part.id
                    for part in walk_expressions(value)
                    if isinstance(part, ast.Name)
                    and isinstance(part.ctx, ast.Load)
                }
                for name, definition in rdefs[node.index]:
                    if name in rhs_names and key in loads.get(definition, ()):
                        read_nodes.add(definition)
                racy = sorted(
                    read
                    for read in read_nodes
                    if yield_on_some_path(cfg, read, node.index)
                    and not _shares_lock_frame(cfg, read, node.index)
                )
                if racy:
                    read_line = cfg.nodes[racy[0]].line
                    yield source.finding(
                        self.name,
                        node.stmt,
                        f"{key} is read (line {read_line}) and a dependent "
                        f"write lands here with an await between them on "
                        f"some path and no async with lock covering both; "
                        f"a concurrent request can interleave at the yield "
                        f"point and this write clobbers its update",
                    )
