"""Rule: ``wire-protocol-consistency``.

The serve wire protocol has three surfaces that must agree: the
server's ``_dispatch`` command chain, the blocking
``ServeClient``'s ``self.request("<cmd>", ...)`` methods, and the
command table in ``docs/serving.md``. They live in three files, so no
per-file rule can hold them together — a handler added server-side
without a client method is dead weight, a client method without a
handler is a guaranteed ``bad_request`` at runtime, and an
undocumented command is invisible to operators.

Detection is structural, not name-based: the *server* is any file with
a ``_dispatch`` function comparing a ``command``/``cmd`` variable
against string literals; the *client* is any file issuing
``self.request("<literal>", ...)`` calls. Documentation is a word
match in ``<root>/docs/serving.md``. Files that match neither shape
are ignored, so the rule is silent on unrelated trees.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from ..base import CrossFileRule, SourceFile, register
from ..findings import Finding

__all__ = ["WireProtocolConsistency"]

_DOCS_RELPATH = Path("docs") / "serving.md"
_COMMAND_VARS = {"command", "cmd"}


def _dispatch_commands(source: SourceFile) -> dict[str, int]:
    """``{command: line}`` from a ``_dispatch`` equality chain, if any."""
    assert source.tree is not None
    commands: dict[str, int] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name != "_dispatch":
            continue
        for compare in ast.walk(node):
            if not isinstance(compare, ast.Compare):
                continue
            if len(compare.ops) != 1 or not isinstance(compare.ops[0], ast.Eq):
                continue
            left, right = compare.left, compare.comparators[0]
            name_node, literal = (
                (left, right)
                if isinstance(left, ast.Name)
                else (right, left)
                if isinstance(right, ast.Name)
                else (None, None)
            )
            if (
                isinstance(name_node, ast.Name)
                and name_node.id in _COMMAND_VARS
                and isinstance(literal, ast.Constant)
                and isinstance(literal.value, str)
            ):
                commands.setdefault(literal.value, compare.lineno)
    return commands


def _client_requests(source: SourceFile) -> dict[str, int]:
    """``{command: line}`` from ``self.request("<cmd>", ...)`` calls."""
    assert source.tree is not None
    requests: dict[str, int] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "request"
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                requests.setdefault(value, node.lineno)
    return requests


@register
class WireProtocolConsistency(CrossFileRule):
    name = "wire-protocol-consistency"
    description = (
        "server command handlers, ServeClient methods, and "
        "docs/serving.md must stay in step"
    )

    def check_project(
        self, files: Iterable[SourceFile], root: Path
    ) -> Iterator[Finding]:
        servers: list[tuple[SourceFile, dict[str, int]]] = []
        client_commands: dict[str, tuple[SourceFile, int]] = {}
        for source in files:
            if source.tree is None:
                continue
            dispatched = _dispatch_commands(source)
            if dispatched:
                servers.append((source, dispatched))
            for command, line in _client_requests(source).items():
                client_commands.setdefault(command, (source, line))
        if not servers:
            return  # nothing protocol-shaped in this tree

        docs_path = root / _DOCS_RELPATH
        docs_text = (
            docs_path.read_text(encoding="utf-8") if docs_path.exists() else None
        )

        server_commands: set[str] = set()
        for source, dispatched in servers:
            server_commands.update(dispatched)
            for command, line in sorted(dispatched.items()):
                if command not in client_commands:
                    yield source.finding(
                        self.name,
                        None,
                        f"server command {command!r} has no ServeClient "
                        f"method issuing self.request({command!r}, ...)",
                        line=line,
                    )
                if docs_text is None:
                    yield source.finding(
                        self.name,
                        None,
                        f"server command {command!r} cannot be checked "
                        f"against {_DOCS_RELPATH.as_posix()}: file missing",
                        line=line,
                    )
                elif re.search(rf"\b{re.escape(command)}\b", docs_text) is None:
                    yield source.finding(
                        self.name,
                        None,
                        f"server command {command!r} is not documented in "
                        f"{_DOCS_RELPATH.as_posix()}",
                        line=line,
                    )

        for command, (source, line) in sorted(client_commands.items()):
            if command not in server_commands:
                yield source.finding(
                    self.name,
                    None,
                    f"client sends command {command!r} that no server "
                    f"_dispatch handler answers",
                    line=line,
                )
