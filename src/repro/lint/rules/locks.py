"""Rule: ``lock-discipline``.

Three invariants about locks in the serve tier, each of which has
burned a real asyncio codebase:

1. **Acquire with ``async with``, never bare ``.acquire()``.** A
   manual acquire needs a manual release on *every* exit path; one
   missed exception path deadlocks every later request. The context
   manager form makes the release structural. (Receivers are matched
   by name — see :func:`~repro.lint.rules._util.lock_key` — so a
   semaphore wrapped in ``wait_for(sem.acquire(), timeout)`` under a
   non-lock name stays expressible.)

2. **Never hold a lock across a blocking call.** A blocked thread
   holding an asyncio lock stalls not just the loop but every
   coroutine queued on that lock. The check is flow-sensitive: the
   locks-held lattice says which locks are held on *every* path into a
   statement, the blocking set is the PR-8 table shared with
   ``blocking-io-in-async``, and module-local helpers are resolved
   through the call graph so hiding the ``open()`` one call deep does
   not help.

3. **Acquire multiple locks in one global order.** Two functions
   nesting the same pair of locks in opposite orders deadlock the
   first time they interleave. Lock identity is textual per file
   (``self._a_lock`` before ``self._b_lock`` everywhere); the later
   inversion site in the file is the one flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ..flow import ModuleGraph, locks_held
from ..flow.cfg import expression_parts, walk_expressions
from .async_hygiene import _BLOCKING_ATTRS, _BLOCKING_DOTTED
from ._util import call_name, lock_key

__all__ = ["LockDiscipline"]


def _is_blocking_call(call: ast.Call) -> bool:
    """The PR-8 blocking-primitive table, shared with
    ``blocking-io-in-async``."""
    target = call_name(call)
    if target is not None and target in _BLOCKING_DOTTED:
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _BLOCKING_ATTRS
    )


def _blocking_label(call: ast.Call) -> str:
    target = call_name(call)
    if target is not None and target in _BLOCKING_DOTTED:
        return target
    if isinstance(call.func, ast.Attribute):
        return f"<obj>.{call.func.attr}"
    return "<call>"


@register
class LockDiscipline(Rule):
    name = "lock-discipline"
    description = (
        "locks must be acquired via async with, never held across "
        "blocking calls, and nested in one consistent order"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        yield from self._check_bare_acquire(source)
        yield from self._check_blocking_under_lock(source)
        yield from self._check_ordering(source)

    # -- 1: bare acquire/release --------------------------------------

    def _check_bare_acquire(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("acquire", "release")
                and lock_key(func.value) is not None
            ):
                yield source.finding(
                    self.name,
                    node,
                    f"bare .{func.attr}() on lock "
                    f"{ast.unparse(func.value)}; acquire locks with "
                    f"'async with' so every exit path releases",
                )

    # -- 2: blocking call while a lock is held ------------------------

    def _check_blocking_under_lock(
        self, source: SourceFile
    ) -> Iterator[Finding]:
        assert source.tree is not None
        graph = ModuleGraph(source.tree)
        may_block = graph.may_block(_is_blocking_call)
        for qualname, info in graph.functions.items():
            if not isinstance(info.node, ast.AsyncFunctionDef):
                continue
            cfg = graph.cfg(qualname)
            held = locks_held(cfg, lock_key)
            for node in cfg.stmt_nodes():
                locks = held[node.index]
                if not locks:
                    continue
                assert node.stmt is not None
                for part in expression_parts(node.stmt):
                    for child in walk_expressions(part):
                        if not isinstance(child, ast.Call):
                            continue
                        lock_list = ", ".join(sorted(locks))
                        if _is_blocking_call(child):
                            yield source.finding(
                                self.name,
                                child,
                                f"blocking call "
                                f"{_blocking_label(child)}() while "
                                f"holding {lock_list}; every coroutine "
                                f"queued on the lock stalls with it",
                            )
                        else:
                            callee = graph.resolve_call(child, info)
                            if callee is not None and may_block[callee]:
                                yield source.finding(
                                    self.name,
                                    child,
                                    f"call to {callee}() may block "
                                    f"(resolved through the module call "
                                    f"graph) while holding {lock_list}",
                                )

    # -- 3: consistent acquisition order ------------------------------

    def _check_ordering(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        edges: dict[tuple[str, str], ast.stmt] = {}

        def scan(node: ast.AST, stack: list[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    scan(child, [])  # fresh lexical lock stack per function
                    continue
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    inner = list(stack)
                    for item in child.items:
                        key = lock_key(item.context_expr)
                        if key is None:
                            continue
                        for outer in inner:
                            if outer != key:
                                edges.setdefault((outer, key), child)
                        inner.append(key)
                    scan(child, inner)
                    continue
                scan(child, stack)

        scan(source.tree, [])

        reported: set[frozenset[str]] = set()
        for (first, second), site in sorted(
            edges.items(), key=lambda kv: (kv[1].lineno, kv[0])
        ):
            reverse = edges.get((second, first))
            pair = frozenset((first, second))
            if reverse is None or pair in reported:
                continue
            reported.add(pair)
            later = site if site.lineno >= reverse.lineno else reverse
            inner_name, outer_name = (
                (second, first) if later is site else (first, second)
            )
            yield source.finding(
                self.name,
                later,
                f"locks {first} and {second} are nested in both orders "
                f"in this module; acquiring {inner_name} under "
                f"{outer_name} here inverts the order used at line "
                f"{min(site.lineno, reverse.lineno)} and can deadlock",
            )
