"""The shipped rule set. Importing this package registers every rule.

To add a rule: create a module here, subclass
:class:`~repro.lint.base.Rule` (or ``CrossFileRule``), decorate it
with :func:`~repro.lint.base.register`, import the module below, and
add a good/bad fixture pair under ``tests/lint_fixtures/`` plus a
table entry in ``tests/test_lint_rules.py``. See
``docs/static-analysis.md`` for the full checklist.
"""

from . import (  # noqa: F401  (imports register the rules)
    async_hygiene,
    determinism,
    durability,
    exception_flow,
    exceptions,
    floats,
    interleaving,
    locks,
    metrics,
    spans,
    wire_protocol,
)

__all__ = [
    "async_hygiene",
    "determinism",
    "durability",
    "exception_flow",
    "exceptions",
    "floats",
    "interleaving",
    "locks",
    "metrics",
    "spans",
    "wire_protocol",
]
