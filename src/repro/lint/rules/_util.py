"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "call_name",
    "dotted_name",
    "iter_calls",
    "literal_str_arg",
    "lock_key",
    "walk_skipping_defs",
]

#: identifier segments that mark a name as a concurrency lock. Matched
#: against underscore-split segments, not substrings — ``blocked``
#: contains "lock" but is not one.
_LOCK_TOKENS = frozenset({"lock", "locks", "mutex", "sem", "semaphore"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        if prefix is None:
            return None
        return f"{prefix}.{node.attr}"
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name a call targets, when statically resolvable."""
    return dotted_name(call.func)


def walk_skipping_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Every descendant of ``node``, not descending into nested
    function/class definitions or lambdas (their bodies execute in a
    different context than the enclosing one)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Calls in ``node``'s own execution context (skips nested defs)."""
    for child in walk_skipping_defs(node):
        if isinstance(child, ast.Call):
            yield child


def lock_key(expr: ast.AST) -> Optional[str]:
    """A stable identity string when ``expr`` names a lock, else None.

    Locks are recognized by name: the terminal identifier of the
    dotted chain (``self._topology_lock`` → ``_topology_lock``,
    ``upstreams.lock(shard)`` → ``lock``) must contain a lock-ish
    segment. Calls keep a ``()`` suffix so a lock factory is not
    conflated with an attribute of the same name.
    """
    base = expr.func if isinstance(expr, ast.Call) else expr
    dotted = dotted_name(base)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1]
    segments = terminal.lower().split("_")
    if not any(segment in _LOCK_TOKENS for segment in segments if segment):
        return None
    return f"{dotted}()" if isinstance(expr, ast.Call) else dotted


def literal_str_arg(call: ast.Call, position: int, keyword: str) -> Optional[str]:
    """The given argument when it is a literal string, else None."""
    node: Optional[ast.expr] = None
    if len(call.args) > position:
        node = call.args[position]
    else:
        for kw in call.keywords:
            if kw.arg == keyword:
                node = kw.value
                break
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
