"""Rule: ``swallowed-exception``.

A broad ``except Exception`` that neither re-raises, logs, forwards,
nor increments an observability counter turns failures into silence —
the exact failure mode PR 2's review fixes chased through
``serve/server.py`` by hand. The contract this rule encodes: a broad
handler must leave a *visible trace*. Acceptable traces, any one of:

* a ``raise`` anywhere in the handler (re-raise or translate);
* an obs-counter bump — a call to ``.inc()`` / ``.increment()`` /
  ``.internal_error()`` / ``.observe()``;
* forwarding — ``future.set_exception(...)``;
* logging — ``logging``-style ``.warning/.error/.exception/...`` or a
  ``print(...)`` (stderr diagnostics in CLI paths count).

Narrow handlers (``except ValueError``) are exempt: catching a named
exception is a statement of intent; catching *everything* without a
trace is a bug magnet.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding

__all__ = ["SwallowedException"]

_BROAD = {"Exception", "BaseException"}

_TRACE_ATTRS = {
    "inc",
    "increment",
    "internal_error",
    "observe",
    "set_exception",
    "warning",
    "error",
    "exception",
    "critical",
    "fatal",
    "log",
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            return True
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD:
            return True
    return False


def _leaves_trace(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _TRACE_ATTRS:
                return True
            if isinstance(func, ast.Name) and func.id == "print":
                return True
    return False


@register
class SwallowedException(Rule):
    name = "swallowed-exception"
    description = (
        "broad except handler leaves no visible trace (no re-raise, "
        "log, counter increment, or future.set_exception)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _leaves_trace(node):
                caught = "bare except" if node.type is None else "except Exception"
                yield source.finding(
                    self.name,
                    node,
                    f"{caught} swallows the failure silently; re-raise, "
                    f"log, or increment an obs counter "
                    f"(e.g. serve_internal_errors_total)",
                )
