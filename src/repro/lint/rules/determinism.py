"""Rule: ``nondeterminism``.

The reproduction substitutes *deterministic seeded substrates* for the
paper's BGP / Verfploeter / Atlas measurements (PAPER.md §2): two runs
with the same seed must produce byte-identical catchment series, or
"rediscovering recurring results" stops meaning anything — a recurring
mode might just be a re-rolled RNG. The codebase's idiom is an
explicit ``rng: random.Random`` (or ``np.random.default_rng(seed)``)
threaded through every builder.

Inside :mod:`repro.core`, :mod:`repro.bgp`, and :mod:`repro.datasets`
this rule therefore flags the ambient sources of nondeterminism:

* module-level RNG calls — ``random.random()``, ``random.choice()``,
  an unseeded ``random.Random()`` or ``np.random.default_rng()``, or
  any legacy ``np.random.*`` global-state function;
* wall-clock reads — ``time.time()``, ``datetime.now()``,
  ``date.today()`` and friends. (``perf_counter`` is *not* flagged:
  measuring elapsed time is fine, deriving data from the clock is
  not.)

Seeded construction (``random.Random(seed)``,
``np.random.default_rng(seed)``) and calls on an ``rng`` object are
exempt by construction — they are the fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ._util import call_name

__all__ = ["Nondeterminism"]

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "date.today",
    "datetime.date.today",
}


def _violation(call: ast.Call) -> Optional[str]:
    dotted = call_name(call)
    if dotted is None:
        return None
    if dotted in _CLOCK_CALLS:
        return f"wall-clock read {dotted}()"
    if dotted == "random.Random" or dotted.endswith(".default_rng"):
        prefix = dotted.rsplit(".", 1)[0]
        if dotted == "random.Random" or prefix in ("np.random", "numpy.random"):
            if not call.args and not call.keywords:
                return f"unseeded {dotted}()"
            return None
    if dotted.startswith("random."):
        return f"module-level RNG call {dotted}()"
    if dotted.startswith(("np.random.", "numpy.random.")):
        return f"global-state RNG call {dotted}()"
    return None


@register
class Nondeterminism(Rule):
    name = "nondeterminism"
    description = (
        "ambient RNG or wall-clock in seeded-substrate code; thread an "
        "explicit rng/clock parameter so runs are reproducible"
    )
    scopes = ("core", "bgp", "datasets", "classify")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        # Unlike the async rule, nesting context is irrelevant here: an
        # ambient RNG call is a violation wherever it sits, so walk
        # every Call in the file.
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            message = _violation(node)
            if message is not None:
                yield source.finding(
                    self.name,
                    node,
                    f"{message} breaks seeded reproducibility; accept an "
                    f"explicit rng/clock parameter instead",
                )
