"""Rule: ``blocking-io-in-async``.

One synchronous syscall inside a coroutine stalls the whole event loop
— in ``repro.serve`` that means *every* monitor's ingest path, not
just the offender's, because one process multiplexes them all. The
rule flags direct calls to unambiguously blocking primitives inside
``async def`` bodies; the fix is ``await asyncio.to_thread(...)`` /
``run_in_executor`` or restructuring.

The blocking set is deliberately tight (no ``Path.mkdir``, no
``.exists()``): sub-millisecond metadata calls on startup paths are
not worth an executor hop, and a rule that cries wolf gets disabled.
Nested ``def``/``lambda`` bodies are skipped — they run wherever they
are *called*, which per-file AST analysis cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ._util import call_name, iter_calls

__all__ = ["BlockingIoInAsync"]

#: dotted call targets that always block the calling thread.
_BLOCKING_DOTTED = {
    "open",
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "os.replace",
    "os.rename",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
}

#: attribute names that block regardless of receiver: Path I/O, plus
#: the classic blocking socket methods (``repro.serve.aio`` multiplexes
#: over asyncio streams — a raw ``sendall``/``recv`` in a coroutine
#: would stall every request in flight, exactly the failure mode the
#: async client exists to avoid).
_BLOCKING_ATTRS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "sendall",
    "recv",
    "recv_into",
    "accept",
}


@register
class BlockingIoInAsync(Rule):
    name = "blocking-io-in-async"
    description = (
        "blocking I/O primitive called directly inside an async def; "
        "one stalled coroutine stalls every monitor on the loop"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in iter_calls(node):
                target = call_name(call)
                blocking = None
                if target is not None and target in _BLOCKING_DOTTED:
                    blocking = target
                elif (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _BLOCKING_ATTRS
                ):
                    blocking = f"<obj>.{call.func.attr}"
                if blocking is not None:
                    yield source.finding(
                        self.name,
                        call,
                        f"blocking call {blocking}() inside async def "
                        f"{node.name!r}; offload with asyncio.to_thread or "
                        f"run_in_executor",
                    )
