"""Rule: ``unguarded-span``.

Tracing is free when disabled *only* because every span goes through
``repro.obs.span(...)``, which checks one module boolean and hands
back a shared no-op before touching the clock or allocating. Code
that builds spans directly — ``get_tracer().span(...)``,
``tracer.span(...)``, or instantiating ``Span(...)`` — bypasses that
``REPRO_OBS`` gate and pays allocation + context-var + clock cost on
every call even with observability off, which is exactly the overhead
the bench_serve obs gate (<= 3%) exists to prevent.

The rule flags span construction outside :mod:`repro.obs` itself (the
package that *implements* the gate is the one place allowed to touch
the internals).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ._util import dotted_name

__all__ = ["UnguardedSpan"]


def _is_unguarded(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "Span":
        return "Span(...) constructed directly"
    if isinstance(func, ast.Attribute):
        if func.attr == "Span":
            return "Span(...) constructed directly"
        if func.attr == "span":
            receiver = func.value
            dotted = dotted_name(receiver)
            if dotted is not None and "tracer" in dotted.lower():
                return f"{dotted}.span(...)"
            if isinstance(receiver, ast.Call):
                inner = dotted_name(receiver.func)
                if inner is not None and "tracer" in inner.lower():
                    return f"{inner}().span(...)"
    return None


@register
class UnguardedSpan(Rule):
    name = "unguarded-span"
    description = (
        "span created without the REPRO_OBS no-op gate; use "
        "repro.obs.span(...) so disabled tracing stays free"
    )
    exclude_scopes = ("obs",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            how = _is_unguarded(node)
            if how is not None:
                yield source.finding(
                    self.name,
                    node,
                    f"{how} bypasses the REPRO_OBS no-op gate; use "
                    f"repro.obs.span(...) instead",
                )
