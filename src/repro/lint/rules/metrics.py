"""Rule: ``metric-naming``.

Every metric in the repo flows through one :class:`repro.obs.
MetricsRegistry` and out one Prometheus exposition; naming discipline
is what keeps that surface queryable. The conventions (PR 4,
docs/observability.md):

* ``snake_case`` — ``^[a-z][a-z0-9_]*$``;
* counters end ``_total`` (Prometheus counter convention);
* histograms end in a base unit — ``_seconds`` or ``_bytes`` (or
  ``_ratio``);
* gauges must *not* end ``_total`` (that suffix promises a counter).

Checked at registration sites: literal first arguments of
``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` calls on a
registry-ish receiver (``*registry*`` or ``get_registry()``), so
``itertools``-style lookalikes never fire. f-string names are checked
on their constant tail when there is one (the ``serve_*_total`` mirror
idiom), and skipped when fully dynamic.

This is a cross-file pass: besides per-site naming it also detects the
same metric name registered with two different *kinds* in different
files — a clash the registry can only catch at runtime, on whichever
process happens to touch both sites first.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..base import CrossFileRule, SourceFile, register
from ..findings import Finding
from ._util import dotted_name

__all__ = ["MetricNaming"]

_KINDS = ("counter", "gauge", "histogram")
_SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")
_HISTOGRAM_UNITS = ("_seconds", "_bytes", "_ratio")


def _registryish(receiver: ast.AST) -> bool:
    dotted = dotted_name(receiver)
    if dotted is not None:
        return "registry" in dotted.lower()
    if isinstance(receiver, ast.Call):
        func = dotted_name(receiver.func)
        return func is not None and "registry" in func.lower()
    return False


def _name_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _registration_sites(
    source: SourceFile,
) -> Iterator[tuple[ast.Call, str, Optional[str], Optional[str]]]:
    """(call, kind, literal_name, constant_tail) per registration."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _KINDS):
            continue
        if not _registryish(func.value):
            continue
        argument = _name_argument(node)
        literal: Optional[str] = None
        tail: Optional[str] = None
        if isinstance(argument, ast.Constant) and isinstance(argument.value, str):
            literal = argument.value
            tail = argument.value
        elif isinstance(argument, ast.JoinedStr) and argument.values:
            last = argument.values[-1]
            if isinstance(last, ast.Constant) and isinstance(last.value, str):
                tail = last.value
        yield node, func.attr, literal, tail


@register
class MetricNaming(CrossFileRule):
    name = "metric-naming"
    description = (
        "metric name breaks Prometheus conventions (snake_case, _total "
        "counters, unit-suffixed histograms) or clashes kinds cross-file"
    )

    def check_project(
        self, files: Iterable[SourceFile], root: Path
    ) -> Iterator[Finding]:
        first_seen: dict[str, tuple[str, str]] = {}  # name -> (kind, relpath)
        for source in files:
            if source.tree is None:
                continue
            for call, kind, literal, tail in _registration_sites(source):
                if literal is not None:
                    yield from self._check_name(source, call, kind, literal)
                    previous = first_seen.get(literal)
                    if previous is None:
                        first_seen[literal] = (kind, source.relpath)
                    elif previous[0] != kind:
                        yield source.finding(
                            self.name,
                            call,
                            f"metric {literal!r} registered as a {kind} "
                            f"here but as a {previous[0]} in {previous[1]}; "
                            f"one name maps to one kind",
                        )
                elif tail is not None:
                    # Dynamic name with a constant suffix: enforce the
                    # kind conventions on what we can see.
                    yield from self._check_suffix(source, call, kind, tail)

    def _check_name(
        self, source: SourceFile, call: ast.Call, kind: str, name: str
    ) -> Iterator[Finding]:
        if not _SNAKE.match(name):
            yield source.finding(
                self.name,
                call,
                f"metric name {name!r} is not snake_case "
                f"([a-z][a-z0-9_]*)",
            )
            return
        yield from self._check_suffix(source, call, kind, name)

    def _check_suffix(
        self, source: SourceFile, call: ast.Call, kind: str, name: str
    ) -> Iterator[Finding]:
        if kind == "counter" and not name.endswith("_total"):
            yield source.finding(
                self.name,
                call,
                f"counter {name!r} must end with '_total' "
                f"(Prometheus counter convention)",
            )
        elif kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            yield source.finding(
                self.name,
                call,
                f"histogram {name!r} must end with a base unit suffix "
                f"({', '.join(_HISTOGRAM_UNITS)})",
            )
        elif kind == "gauge" and name.endswith("_total"):
            yield source.finding(
                self.name,
                call,
                f"gauge {name!r} must not end with '_total' (that suffix "
                f"promises a counter)",
            )
