"""Rule: ``float-similarity-compare``.

Φ and mode-similarity values are accumulated floats (weighted sums of
per-network agreement); ``==``/``!=`` on them encodes an assumption
about bit-exact arithmetic that vectorization, tiling, and summation
order all quietly break — the PR 3 fast path is *tolerance*-equal to
the scalar oracle, not bit-equal. Comparisons on similarity-ish names
must go through ``math.isclose`` / ``np.isclose`` / an explicit
epsilon, or be rewritten as the threshold comparison they usually
meant (``phi >= mode_threshold``).

A name is similarity-ish when one of its underscore-separated tokens
is ``phi`` (token match, so ``graph`` never fires) or contains
``similarity``. Comparisons against strings, ``None``, or booleans
are ignored — those are sentinel checks, not float math.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Rule, SourceFile, register
from ..findings import Finding

__all__ = ["FloatSimilarityCompare"]


def _similarity_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    tokens = name.lower().split("_")
    if "phi" in tokens or any("similarity" in token for token in tokens):
        return name
    return None


def _non_float_sentinel(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (str, bool))
    )


@register
class FloatSimilarityCompare(Rule):
    name = "float-similarity-compare"
    description = (
        "exact ==/!= on a Φ/similarity float; use math.isclose or a "
        "threshold compare (vectorized paths are tolerance-equal only)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _non_float_sentinel(left) or _non_float_sentinel(right):
                    continue
                name = _similarity_name(left) or _similarity_name(right)
                if name is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield source.finding(
                        self.name,
                        node,
                        f"exact {symbol} on similarity float {name!r}; use "
                        f"math.isclose/np.isclose or a threshold compare",
                    )
