"""Rule: ``journal-durability``.

The write-ahead journal's contract (PR 2/3) is *acknowledged iff
replayable*: a record is flushed to the OS before the tracker applies
it and the ack goes out. A ``.write(...)`` to the journal stream that
can reach a ``return`` without an intervening ``flush()`` leaves the
record in userspace buffers — the process dies, the ack was sent, the
round is gone, and no test notices until a kill lands in exactly that
window.

The rule finds writes to journal-ish streams (receiver named
``*stream*``, ``*journal*``, or ``*wal*``) and walks the statements
that execute *after* the write, level by level out of nested blocks,
asking whether a flush is guaranteed before the function can return:

* a flush call (``.flush()``, ``os.fsync``, or any helper whose name
  contains ``flush``) guarantees it — including when it sits in an
  ``if`` with *both* branches flushing, a ``with`` body, or a ``try``
  ``finally``;
* a ``return`` reached first is a violation — that path exits with
  buffered data;
* a ``raise`` reached first is fine: the append failed, so no ack can
  have gone out — durability of unacknowledged data is not promised;
* a flush inside only *one* branch of an ``if``, or inside a loop
  body, guarantees nothing and the scan continues outward.

This is a conservative approximation of per-path analysis, tuned so
that ``journal.py``'s real flush discipline (two-branch append with an
early return, group commit, histogram-timed commit) passes untouched
— see the good fixture — while dropped flushes on any branch fail.
"""

from __future__ import annotations

import ast
from enum import Enum
from typing import Iterator, Optional

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ._util import dotted_name, walk_skipping_defs

__all__ = ["JournalDurability"]

_STREAM_TOKENS = ("stream", "journal", "wal")
_FSYNC_DOTTED = {"os.fsync", "os.fdatasync"}


def _is_journal_write(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "write"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        terminal = receiver.attr
    elif isinstance(receiver, ast.Name):
        terminal = receiver.id
    else:
        return False
    lowered = terminal.lower()
    return any(token in lowered for token in _STREAM_TOKENS)


def _is_flush_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and "flush" in func.attr.lower():
        return True
    if isinstance(func, ast.Name) and "flush" in func.id.lower():
        return True
    dotted = dotted_name(func)
    return dotted in _FSYNC_DOTTED


def _contains_flush(node: ast.AST) -> bool:
    if isinstance(node, ast.Call) and _is_flush_call(node):
        return True
    for child in walk_skipping_defs(node):
        if isinstance(child, ast.Call) and _is_flush_call(child):
            return True
    return False


def _guarantees_flush(stmt: ast.stmt) -> bool:
    """Does executing ``stmt`` unconditionally flush?"""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(stmt, ast.If):
        return (
            bool(stmt.orelse)
            and any(_guarantees_flush(s) for s in stmt.body)
            and any(_guarantees_flush(s) for s in stmt.orelse)
        )
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(_guarantees_flush(s) for s in stmt.body)
    if isinstance(stmt, ast.Try):
        if any(_guarantees_flush(s) for s in stmt.finalbody):
            return True
        return any(_guarantees_flush(s) for s in stmt.body)
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        return False  # may run zero iterations
    return _contains_flush(stmt)


class _Verdict(Enum):
    FLUSH = "flush"
    EXIT_NO_FLUSH = "exit-no-flush"
    EXIT_OK = "exit-ok"
    NEUTRAL = "neutral"


def _verdict(stmt: ast.stmt) -> _Verdict:
    if _guarantees_flush(stmt):
        return _Verdict.FLUSH
    if isinstance(stmt, ast.Return):
        return _Verdict.EXIT_NO_FLUSH
    if isinstance(stmt, ast.Raise):
        return _Verdict.EXIT_OK  # no ack without a normal return
    if isinstance(stmt, (ast.Continue, ast.Break)):
        return _Verdict.EXIT_NO_FLUSH  # conservative: next iteration/exit
    return _Verdict.NEUTRAL


def _expression_parts(stmt: ast.stmt) -> list[ast.AST]:
    """The expression-level children of ``stmt`` — the parts that
    execute at the statement's own position, excluding nested blocks."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, (ast.While,)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _sub_blocks(stmt: ast.stmt) -> list[tuple[ast.stmt, list[ast.stmt]]]:
    blocks: list[tuple[ast.stmt, list[ast.stmt]]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append((stmt, block))
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append((stmt, handler.body))
    return blocks


@register
class JournalDurability(Rule):
    name = "journal-durability"
    description = (
        "journal stream write can reach a return without a flush/fsync; "
        "an acked record would not survive a kill"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        writes: list[tuple[ast.Call, list[tuple[Optional[ast.stmt], list, int]]]]
        writes = []

        def scan(
            block: list[ast.stmt],
            owner: Optional[ast.stmt],
            stack: list[tuple[Optional[ast.stmt], list, int]],
        ) -> None:
            for index, stmt in enumerate(block):
                position = stack + [(owner, block, index)]
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    for part in _expression_parts(stmt):
                        for call in [
                            c
                            for c in walk_skipping_defs(part)
                            if isinstance(c, ast.Call)
                        ] + ([part] if isinstance(part, ast.Call) else []):
                            if _is_journal_write(call):
                                writes.append((call, position))
                    for sub_owner, sub_block in _sub_blocks(stmt):
                        scan(sub_block, sub_owner, position)

        scan(fn.body, None, [])

        for call, position in writes:
            if not self._flush_guaranteed(position):
                yield source.finding(
                    self.name,
                    call,
                    "journal write is not followed by a guaranteed "
                    "flush/fsync on every path before returning; the "
                    "acknowledged-iff-replayable contract needs "
                    "write -> flush -> apply -> ack",
                )

    @staticmethod
    def _flush_guaranteed(
        position: list[tuple[Optional[ast.stmt], list, int]]
    ) -> bool:
        for level in range(len(position) - 1, -1, -1):
            owner, block, index = position[level]
            for stmt in block[index + 1 :]:
                verdict = _verdict(stmt)
                if verdict is _Verdict.FLUSH:
                    return True
                if verdict is _Verdict.EXIT_NO_FLUSH:
                    return False
                if verdict is _Verdict.EXIT_OK:
                    return True
            # Ascending out of a try body/handler: the finally block (if
            # any) runs before anything after the try statement.
            if (
                isinstance(owner, ast.Try)
                and block is not owner.finalbody
                and any(_guarantees_flush(s) for s in owner.finalbody)
            ):
                return True
        return False  # fell off the end of the function: implicit return
