"""Rule: ``journal-durability``.

The write-ahead journal's contract (PR 2/3) is *acknowledged iff
replayable*: a record is flushed to the OS before the tracker applies
it and the ack goes out. A ``.write(...)`` to the journal stream that
can reach a ``return`` without an intervening ``flush()`` leaves the
record in userspace buffers — the process dies, the ack was sent, the
round is gone, and no test notices until a kill lands in exactly that
window.

The rule finds writes to journal-ish streams (receiver named
``*stream*``, ``*journal*``, or ``*wal*``) and walks the statements
that execute *after* the write, level by level out of nested blocks,
asking whether a flush is guaranteed before the function can return:

* a flush call guarantees it — including when it sits in an ``if``
  with *both* branches flushing, a ``with`` body, or a ``try``
  ``finally``;
* a ``return`` reached first is a violation — that path exits with
  buffered data;
* a ``raise`` reached first is fine: the append failed, so no ack can
  have gone out — durability of unacknowledged data is not promised;
* a flush inside only *one* branch of an ``if``, or inside a loop
  body, guarantees nothing and the scan continues outward.

What counts as a flush is *interprocedural* (module-local): a direct
``.flush()`` / ``os.fsync`` / ``os.fdatasync``, any helper whose name
contains ``flush``, **or any module-local function proven by its
control flow to flush on every normal-return path** — the
``guarantees-flush`` effect summary from :mod:`repro.lint.flow`. A
group-commit helper named ``_commit`` no longer needs a flush-ish name
or a suppression; its CFG proves it.

Write obligations travel the other way too: a call to a module-local
helper that performs a journal write *without* flushing internally is
itself a write site in the caller, and must be followed by a
guaranteed flush there. When such a helper has local callers, the
helper's own body is not separately flagged — the obligation lives at
the call sites (that is the write-in-helper / flush-in-caller
group-commit split). A helper nobody local calls keeps the old
behavior: its write must flush before it returns.
"""

from __future__ import annotations

import ast
from enum import Enum
from typing import Callable, Iterator, Optional

from ..base import Rule, SourceFile, register
from ..findings import Finding
from ..flow import FunctionInfo, ModuleGraph
from ._util import dotted_name, walk_skipping_defs

__all__ = ["JournalDurability"]

_STREAM_TOKENS = ("stream", "journal", "wal")
_FSYNC_DOTTED = {"os.fsync", "os.fdatasync"}

_IsCall = Callable[[ast.Call], bool]

#: position of one statement: (owning compound stmt, block, index).
_Position = list[tuple[Optional[ast.stmt], list, int]]


def _is_journal_write(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "write"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        terminal = receiver.attr
    elif isinstance(receiver, ast.Name):
        terminal = receiver.id
    else:
        return False
    lowered = terminal.lower()
    return any(token in lowered for token in _STREAM_TOKENS)


def _is_flush_call(call: ast.Call) -> bool:
    """Syntactic flushes: named like one, or the os sync primitives."""
    func = call.func
    if isinstance(func, ast.Attribute) and "flush" in func.attr.lower():
        return True
    if isinstance(func, ast.Name) and "flush" in func.id.lower():
        return True
    dotted = dotted_name(func)
    return dotted in _FSYNC_DOTTED


def _contains_flush(node: ast.AST, is_flush: _IsCall) -> bool:
    if isinstance(node, ast.Call) and is_flush(node):
        return True
    for child in walk_skipping_defs(node):
        if isinstance(child, ast.Call) and is_flush(child):
            return True
    return False


def _guarantees_flush(stmt: ast.stmt, is_flush: _IsCall) -> bool:
    """Does executing ``stmt`` unconditionally flush?"""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(stmt, ast.If):
        return (
            bool(stmt.orelse)
            and any(_guarantees_flush(s, is_flush) for s in stmt.body)
            and any(_guarantees_flush(s, is_flush) for s in stmt.orelse)
        )
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(_guarantees_flush(s, is_flush) for s in stmt.body)
    if isinstance(stmt, ast.Try):
        if any(_guarantees_flush(s, is_flush) for s in stmt.finalbody):
            return True
        return any(_guarantees_flush(s, is_flush) for s in stmt.body)
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        return False  # may run zero iterations
    return _contains_flush(stmt, is_flush)


class _Verdict(Enum):
    FLUSH = "flush"
    EXIT_NO_FLUSH = "exit-no-flush"
    EXIT_OK = "exit-ok"
    NEUTRAL = "neutral"


def _verdict(stmt: ast.stmt, is_flush: _IsCall) -> _Verdict:
    if _guarantees_flush(stmt, is_flush):
        return _Verdict.FLUSH
    if isinstance(stmt, ast.Return):
        return _Verdict.EXIT_NO_FLUSH
    if isinstance(stmt, ast.Raise):
        return _Verdict.EXIT_OK  # no ack without a normal return
    if isinstance(stmt, (ast.Continue, ast.Break)):
        return _Verdict.EXIT_NO_FLUSH  # conservative: next iteration/exit
    return _Verdict.NEUTRAL


def _expression_parts(stmt: ast.stmt) -> list[ast.AST]:
    """The expression-level children of ``stmt`` — the parts that
    execute at the statement's own position, excluding nested blocks."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, (ast.While,)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _sub_blocks(stmt: ast.stmt) -> list[tuple[ast.stmt, list[ast.stmt]]]:
    blocks: list[tuple[ast.stmt, list[ast.stmt]]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append((stmt, block))
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append((stmt, handler.body))
    return blocks


def _scan_writes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, is_write: _IsCall
) -> list[tuple[ast.Call, _Position]]:
    """Every write-site call in ``fn`` with its nested block position."""
    writes: list[tuple[ast.Call, _Position]] = []

    def scan(
        block: list[ast.stmt],
        owner: Optional[ast.stmt],
        stack: _Position,
    ) -> None:
        for index, stmt in enumerate(block):
            position = stack + [(owner, block, index)]
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                for part in _expression_parts(stmt):
                    for call in [
                        c
                        for c in walk_skipping_defs(part)
                        if isinstance(c, ast.Call)
                    ] + ([part] if isinstance(part, ast.Call) else []):
                        if is_write(call):
                            writes.append((call, position))
                for sub_owner, sub_block in _sub_blocks(stmt):
                    scan(sub_block, sub_owner, position)

    scan(fn.body, None, [])
    return writes


def _flush_guaranteed(position: _Position, is_flush: _IsCall) -> bool:
    for level in range(len(position) - 1, -1, -1):
        owner, block, index = position[level]
        for stmt in block[index + 1 :]:
            verdict = _verdict(stmt, is_flush)
            if verdict is _Verdict.FLUSH:
                return True
            if verdict is _Verdict.EXIT_NO_FLUSH:
                return False
            if verdict is _Verdict.EXIT_OK:
                return True
        # Ascending out of a try body/handler: the finally block (if
        # any) runs before anything after the try statement.
        if (
            isinstance(owner, ast.Try)
            and block is not owner.finalbody
            and any(_guarantees_flush(s, is_flush) for s in owner.finalbody)
        ):
            return True
    return False  # fell off the end of the function: implicit return


@register
class JournalDurability(Rule):
    name = "journal-durability"
    description = (
        "journal stream write can reach a return without a flush/fsync; "
        "an acked record would not survive a kill"
    )
    scopes = ("serve",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        graph = ModuleGraph(source.tree)
        proven = graph.flush_guarantees(_is_flush_call)
        unflushed = self._unflushed_helpers(graph, proven)
        by_node = {info.node: info for info in graph.functions.values()}

        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = by_node.get(node)
                yield from self._check_function(
                    source, node, graph, info, proven, unflushed
                )

    @staticmethod
    def _flush_predicate(
        graph: ModuleGraph,
        info: Optional[FunctionInfo],
        proven: dict[str, bool],
    ) -> _IsCall:
        """Direct flushes plus module-local callees proven to flush."""

        def is_flush(call: ast.Call) -> bool:
            if _is_flush_call(call):
                return True
            if info is None:
                return False
            callee = graph.resolve_call(call, info)
            return callee is not None and proven[callee]

        return is_flush

    @staticmethod
    def _write_predicate(
        graph: ModuleGraph,
        info: Optional[FunctionInfo],
        unflushed: dict[str, bool],
    ) -> _IsCall:
        """Direct journal writes plus calls to module-local helpers
        that write without flushing internally."""

        def is_write(call: ast.Call) -> bool:
            if _is_journal_write(call):
                return True
            if info is None:
                return False
            callee = graph.resolve_call(call, info)
            return callee is not None and unflushed[callee]

        return is_write

    def _unflushed_helpers(
        self, graph: ModuleGraph, proven: dict[str, bool]
    ) -> dict[str, bool]:
        """Which functions leave a journal write unflushed on some
        normal-return path (transitively through local helper calls)."""
        unflushed = {qualname: False for qualname in graph.functions}
        changed = True
        while changed:
            changed = False
            for qualname, info in graph.functions.items():
                if unflushed[qualname]:
                    continue
                is_flush = self._flush_predicate(graph, info, proven)
                is_write = self._write_predicate(graph, info, unflushed)
                writes = _scan_writes(info.node, is_write)
                if any(
                    not _flush_guaranteed(position, is_flush)
                    for _, position in writes
                ):
                    unflushed[qualname] = True
                    changed = True
        return unflushed

    def _check_function(
        self,
        source: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        graph: ModuleGraph,
        info: Optional[FunctionInfo],
        proven: dict[str, bool],
        unflushed: dict[str, bool],
    ) -> Iterator[Finding]:
        is_flush = self._flush_predicate(graph, info, proven)
        is_write = self._write_predicate(graph, info, unflushed)
        has_local_callers = (
            info is not None and bool(graph.callers_of(info.qualname))
        )
        for call, position in _scan_writes(fn, is_write):
            if _flush_guaranteed(position, is_flush):
                continue
            if _is_journal_write(call):
                if has_local_callers:
                    # The obligation lives at the local call sites,
                    # where this call counts as a write site.
                    continue
                yield source.finding(
                    self.name,
                    call,
                    "journal write is not followed by a guaranteed "
                    "flush/fsync on every path before returning; the "
                    "acknowledged-iff-replayable contract needs "
                    "write -> flush -> apply -> ack",
                )
            else:
                callee = (
                    graph.resolve_call(call, info)
                    if info is not None
                    else None
                )
                yield source.finding(
                    self.name,
                    call,
                    f"call to {callee}() performs a journal write without "
                    f"flushing internally, and no flush is guaranteed "
                    f"here after it; group commits need the caller to "
                    f"flush before returning",
                )
