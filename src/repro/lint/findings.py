"""The :class:`Finding` record every rule emits.

A finding pins a rule violation to a file position, but its
*fingerprint* deliberately excludes the line number: baselines must
survive unrelated edits above a grandfathered finding, so identity is
(rule, file, enclosing definition, message) — stable under line drift,
invalidated the moment the offending code actually changes shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position."""

    path: str  # project-relative, POSIX separators
    line: int  # 1-based
    col: int  # 0-based, matching ast.col_offset
    rule: str
    message: str
    context: str = ""  # dotted enclosing class/function chain, if any
    #: the producing rule's severity ("error" or "warning"); stamped by
    #: the engine, rendered by the GitHub/JSON reporters, excluded from
    #: the fingerprint (a severity re-grade must not invalidate a
    #: baseline).
    severity: str = "error"

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        body = f"{self.rule}::{self.path}::{self.context}::{self.message}"
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    def to_document(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "context": self.context,
            "severity": self.severity,
            "fingerprint": self.fingerprint(),
        }
