"""The committed JSON baseline of grandfathered findings.

The baseline maps finding fingerprints (line-independent — see
:meth:`repro.lint.findings.Finding.fingerprint`) to how many findings
with that fingerprint are tolerated. A lint run subtracts matches from
the budget and reports only the overflow, so pre-existing debt can be
frozen without letting *new* instances of the same violation in the
same function slip past.

The repo policy (docs/static-analysis.md) is an **empty baseline**:
every rule's true positives were fixed when the rule shipped, and the
file exists so the mechanism is exercised and future grandfathering is
a reviewed, committed diff rather than a lint flag nobody sees.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "fenlint-baseline.json"
_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> tolerated-count budget, with a provenance note."""

    counts: dict[str, int] = field(default_factory=dict)
    notes: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if document.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {document.get('version')!r} "
                f"in {path} (expected {_VERSION})"
            )
        findings = document.get("findings", {})
        counts: dict[str, int] = {}
        notes: dict[str, str] = {}
        for fingerprint, entry in findings.items():
            counts[fingerprint] = int(entry["count"])
            if entry.get("note"):
                notes[fingerprint] = str(entry["note"])
        return cls(counts=counts, notes=notes)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fingerprint = finding.fingerprint()
            baseline.counts[fingerprint] = baseline.counts.get(fingerprint, 0) + 1
            baseline.notes.setdefault(
                fingerprint,
                f"{finding.rule} at {finding.path}"
                + (f" in {finding.context}" if finding.context else ""),
            )
        return baseline

    def write(self, path: Path) -> None:
        document = {
            "version": _VERSION,
            "findings": {
                fingerprint: {
                    "count": count,
                    **(
                        {"note": self.notes[fingerprint]}
                        if fingerprint in self.notes
                        else {}
                    ),
                }
                for fingerprint, count in sorted(self.counts.items())
            },
        }
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def filter(self, findings: Iterable[Finding]) -> tuple[list[Finding], int]:
        """(surviving findings, number absorbed by the baseline)."""
        budget = dict(self.counts)
        surviving: list[Finding] = []
        absorbed = 0
        for finding in findings:
            fingerprint = finding.fingerprint()
            if budget.get(fingerprint, 0) > 0:
                budget[fingerprint] -= 1
                absorbed += 1
            else:
                surviving.append(finding)
        return surviving, absorbed
