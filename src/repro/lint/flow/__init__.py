"""Flow-sensitive analysis for fenlint rules.

Layers, bottom up: :mod:`.cfg` builds one control-flow graph per
function with yield points marked; :mod:`.dataflow` runs worklist
analyses over a graph (reaching definitions, locks-held, guaranteed
effect); :mod:`.summaries` lifts the per-function results to a
module-local call graph with effect summaries. All dependency-free,
all pure ``ast`` — see docs/static-analysis.md ("Flow analysis").
"""

from .cfg import (
    CFG,
    CFGNode,
    ENTRY,
    EXIT,
    RAISE_EXIT,
    STMT,
    WITH_EXIT,
    build_cfg,
    expression_parts,
    walk_expressions,
)
from .dataflow import (
    Definition,
    assigned_names,
    guarantees_effect,
    locks_held,
    reaching_definitions,
    yield_on_some_path,
)
from .summaries import DYNAMIC, FunctionInfo, ModuleGraph

__all__ = [
    "CFG",
    "CFGNode",
    "DYNAMIC",
    "Definition",
    "ENTRY",
    "EXIT",
    "FunctionInfo",
    "ModuleGraph",
    "RAISE_EXIT",
    "STMT",
    "WITH_EXIT",
    "assigned_names",
    "build_cfg",
    "expression_parts",
    "guarantees_effect",
    "locks_held",
    "reaching_definitions",
    "walk_expressions",
    "yield_on_some_path",
]
