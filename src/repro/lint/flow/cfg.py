"""Intraprocedural control-flow graphs for Python functions.

One :class:`CFG` per ``def``/``async def``. Every statement in the
function body (not descending into nested function/class definitions)
maps to exactly one node; three synthetic nodes bound the graph:

* ``entry`` — where parameters are bound;
* ``exit`` — the single normal-return target (explicit ``return`` and
  falling off the end both edge here);
* ``raise-exit`` — where uncaught ``raise`` statements land. Analyses
  that reason about the *acknowledged* path (durability) treat it as
  benign: no normal return means no ack went out.

Compound statements get a node for their header — the part that
executes at the statement's own position (``if``/``while`` tests,
``for`` iterables, ``with`` context expressions) — and their blocks
are wired with the usual edges: both arms of an ``if`` rejoin, loops
get back edges and a false-exit, ``try`` bodies edge into every
handler (any statement may raise), and ``break``/``continue``/
``return``/``raise`` are routed *through* every enclosing ``finally``
block before reaching their target. ``with`` statements additionally
get a synthetic ``with-exit`` node so a "locks held" analysis sees the
release as an explicit kill point.

*Yield points* are nodes whose header contains an ``await`` (or a
``yield``), plus ``async for`` headers and both ends of ``async
with``: the places where the event loop may run another coroutine.
The async-interleaving-race rule is built entirely on this marking.

The graph is an over-approximation: a single ``finally`` instance
serves every continuation that routes through it, so paths exist in
the CFG that no execution takes. That is the safe direction for the
must-analyses layered on top (a lock is "held" on fewer nodes, a
flush is "guaranteed" on fewer writes than in reality).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

__all__ = [
    "CFG",
    "CFGNode",
    "ENTRY",
    "EXIT",
    "FunctionNode",
    "RAISE_EXIT",
    "STMT",
    "WITH_EXIT",
    "build_cfg",
    "expression_parts",
    "walk_expressions",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"
STMT = "stmt"
WITH_EXIT = "with-exit"

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def expression_parts(stmt: ast.stmt) -> list[ast.AST]:
    """The expression-level children evaluated at ``stmt``'s own CFG
    node — header expressions for compound statements, the whole
    statement for simple ones, nothing for ``try`` (it evaluates no
    expression of its own) and nested definitions (their bodies run
    elsewhere)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, (ast.Try, *_SCOPE_BARRIERS[:-1])):
        return []
    return [stmt]


def walk_expressions(node: ast.AST) -> Iterator[ast.AST]:
    """``node`` and every descendant, not descending into nested
    function/class definitions or lambdas."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_BARRIERS):
                continue
            stack.append(child)


@dataclass
class CFGNode:
    """One vertex: a statement, a ``with`` exit, or a synthetic bound."""

    index: int
    kind: str
    stmt: Optional[ast.stmt] = None
    #: the ``with``/``async with`` statement a ``with-exit`` node closes.
    ref: Optional[ast.stmt] = None
    is_yield: bool = False
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)
    #: enclosing ``with``/``async with`` statements, outermost first.
    enclosing_with: tuple[ast.stmt, ...] = ()

    @property
    def line(self) -> int:
        anchor = self.stmt if self.stmt is not None else self.ref
        return getattr(anchor, "lineno", 0)


@dataclass
class CFG:
    """The finished graph plus the statement-to-node index."""

    function: FunctionNode
    nodes: list[CFGNode]
    entry: int
    exit: int
    raise_exit: int
    by_stmt: dict[ast.stmt, int]

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def stmt_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.kind == STMT:
                yield node

    def reachable(self, start: Optional[int] = None) -> set[int]:
        """Node indices reachable from ``start`` (default: entry)."""
        frontier = [self.entry if start is None else start]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for succ in self.nodes[current].succs:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen


@dataclass
class _LoopFrame:
    head: int
    breaks: list[int] = field(default_factory=list)


@dataclass
class _FinallyFrame:
    abrupt_preds: set[int] = field(default_factory=set)
    kinds: set[str] = field(default_factory=set)


_Frame = Union[_LoopFrame, _FinallyFrame]


class _Builder:
    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.nodes: list[CFGNode] = []
        self.by_stmt: dict[ast.stmt, int] = {}
        self.with_stack: list[ast.stmt] = []
        self.entry = self._new(ENTRY).index
        self.exit = self._new(EXIT).index
        self.raise_exit = self._new(RAISE_EXIT).index

    def build(self) -> CFG:
        frontier = self._block(self.fn.body, {self.entry}, [])
        for pred in frontier:
            self._edge(pred, self.exit)
        return CFG(
            function=self.fn,
            nodes=self.nodes,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
            by_stmt=self.by_stmt,
        )

    # -- graph assembly ----------------------------------------------

    def _new(
        self,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        ref: Optional[ast.stmt] = None,
    ) -> CFGNode:
        node = CFGNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            ref=ref,
            enclosing_with=tuple(self.with_stack),
        )
        self.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    def _block(
        self,
        stmts: list[ast.stmt],
        preds: set[int],
        frames: list[_Frame],
    ) -> set[int]:
        current = set(preds)
        for stmt in stmts:
            node = self._stmt_node(stmt)
            for pred in current:
                self._edge(pred, node.index)
            current = self._visit(stmt, node, frames)
        return current

    def _stmt_node(self, stmt: ast.stmt) -> CFGNode:
        node = self._new(STMT, stmt=stmt)
        self.by_stmt[stmt] = node.index
        node.is_yield = self._yields(stmt)
        return node

    @staticmethod
    def _yields(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
            return True
        for part in expression_parts(stmt):
            for child in walk_expressions(part):
                if isinstance(child, (ast.Await, ast.Yield, ast.YieldFrom)):
                    return True
        return False

    # -- statement dispatch ------------------------------------------

    def _visit(
        self, stmt: ast.stmt, node: CFGNode, frames: list[_Frame]
    ) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, node, frames)
        if isinstance(stmt, (ast.While,)):
            return self._visit_loop(stmt, node, frames, may_skip=True)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, node, frames, may_skip=False)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, node, frames)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, node, frames)
        if isinstance(stmt, ast.Return):
            self._route("return", {node.index}, frames)
            return set()
        if isinstance(stmt, ast.Raise):
            self._route("raise", {node.index}, frames)
            return set()
        if isinstance(stmt, ast.Break):
            self._route("break", {node.index}, frames)
            return set()
        if isinstance(stmt, ast.Continue):
            self._route("continue", {node.index}, frames)
            return set()
        if isinstance(stmt, _SCOPE_BARRIERS[:-1]):
            return {node.index}
        return self._visit_generic(stmt, node, frames)

    def _route(self, kind: str, preds: set[int], frames: list[_Frame]) -> None:
        """Wire an abrupt exit to its target, detouring through the
        innermost enclosing ``finally`` when one exists."""
        for frame in reversed(frames):
            if isinstance(frame, _FinallyFrame):
                frame.abrupt_preds |= preds
                frame.kinds.add(kind)
                return
            if isinstance(frame, _LoopFrame) and kind in ("break", "continue"):
                if kind == "break":
                    frame.breaks.extend(sorted(preds))
                else:
                    for pred in preds:
                        self._edge(pred, frame.head)
                return
        target = self.raise_exit if kind == "raise" else self.exit
        for pred in preds:
            self._edge(pred, target)

    def _visit_if(
        self, stmt: ast.If, node: CFGNode, frames: list[_Frame]
    ) -> set[int]:
        body = self._block(stmt.body, {node.index}, frames)
        orelse = (
            self._block(stmt.orelse, {node.index}, frames)
            if stmt.orelse
            else {node.index}
        )
        return body | orelse

    def _visit_loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        node: CFGNode,
        frames: list[_Frame],
        may_skip: bool,
    ) -> set[int]:
        loop = _LoopFrame(head=node.index)
        body = self._block(stmt.body, {node.index}, frames + [loop])
        for pred in body:
            self._edge(pred, node.index)
        infinite = (
            may_skip
            and isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        exits: set[int] = set() if infinite else {node.index}
        if stmt.orelse:
            exits = self._block(stmt.orelse, exits, frames)
        return exits | set(loop.breaks)

    def _visit_with(
        self,
        stmt: Union[ast.With, ast.AsyncWith],
        node: CFGNode,
        frames: list[_Frame],
    ) -> set[int]:
        self.with_stack.append(stmt)
        try:
            body = self._block(stmt.body, {node.index}, frames)
        finally:
            self.with_stack.pop()
        if not body:
            return set()  # every path in the body exits abruptly
        exit_node = self._new(WITH_EXIT, ref=stmt)
        exit_node.is_yield = isinstance(stmt, ast.AsyncWith)
        for pred in body:
            self._edge(pred, exit_node.index)
        return {exit_node.index}

    def _visit_try(
        self, stmt: ast.Try, node: CFGNode, frames: list[_Frame]
    ) -> set[int]:
        fin = _FinallyFrame() if stmt.finalbody else None
        inner: list[_Frame] = frames + [fin] if fin is not None else frames
        body_start = len(self.nodes)
        body = self._block(stmt.body, {node.index}, inner)
        # Any statement in the body may raise into any handler.
        raise_sources = {node.index} | set(range(body_start, len(self.nodes)))
        handler_frontier: set[int] = set()
        for handler in stmt.handlers:
            handler_frontier |= self._block(
                handler.body, set(raise_sources), inner
            )
        else_frontier = (
            self._block(stmt.orelse, body, inner) if stmt.orelse else body
        )
        after = else_frontier | handler_frontier
        if fin is None:
            return after
        fin_preds = after | fin.abrupt_preds
        if not fin_preds:
            fin_preds = {node.index}
        fin_frontier = self._block(stmt.finalbody, fin_preds, frames)
        # Re-dispatch the abrupt continuations from the finally's end.
        for kind in sorted(fin.kinds):
            self._route(kind, set(fin_frontier), frames)
        return fin_frontier if after else set()

    def _visit_generic(
        self, stmt: ast.stmt, node: CFGNode, frames: list[_Frame]
    ) -> set[int]:
        """Unknown compound statements (e.g. ``match``): every block
        hangs off the header and all frontiers merge — conservative."""
        frontier = {node.index}
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                frontier |= self._block(list(block), {node.index}, frames)
        for case in getattr(stmt, "cases", []) or []:
            frontier |= self._block(list(case.body), {node.index}, frames)
        return frontier


def build_cfg(fn: FunctionNode) -> CFG:
    """The control-flow graph of one function body."""
    return _Builder(fn).build()
