"""Module-level call graph with per-function effect summaries.

fenlint is per-file, so "interprocedural" here means *module-local*:
``self.helper()`` resolves to a method on the same class, ``helper()``
to a module-level function, and anything else (other objects, imports,
dynamic dispatch) resolves to nothing and contributes no effects.
That keeps every summary grounded in code the rule can actually see —
a *must* property (``guarantees_flush``) is never asserted on faith,
and a *may* property (``may_block``, escaping exceptions) never
invents behavior for foreign callees.

Summaries:

* ``may_await`` — syntactic: the body contains an ``await`` /
  ``async for`` / ``async with`` (only coroutines can await, so there
  is nothing to propagate through sync callees).
* ``may_block`` — the body calls a blocking primitive, or any resolved
  callee may block; fixpoint over the call graph.
* ``flush_guarantees`` — every path from entry to the normal exit
  passes a flush (direct flush call, or a call to a module-local
  callee already proven to guarantee one); computed with
  :func:`~repro.lint.flow.dataflow.guarantees_effect` to a fixpoint,
  so a helper named ``_commit`` proves itself by its control flow, not
  by its name.
* ``escaping_exceptions`` — which exception types can propagate out of
  each function, tracking ``raise`` sites through enclosing handlers
  and resolved call sites; the ``absorbing`` callback lets a rule
  demand more of a handler than merely catching (the dispatch rule
  requires an ``ERR_*`` mapping).

Exception-type reasoning is by name with a small builtin hierarchy
(``FileNotFoundError`` is caught by ``except OSError``); custom types
are assumed to derive from ``Exception``, and a raise of a non-class
expression is tracked as ``<dynamic>`` — caught only by broad
handlers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .cfg import (
    CFG,
    CFGNode,
    FunctionNode,
    build_cfg,
    expression_parts,
    walk_expressions,
)
from .dataflow import guarantees_effect

__all__ = ["DYNAMIC", "FunctionInfo", "ModuleGraph"]

#: stand-in type name for raises whose class is not statically known.
DYNAMIC = "<dynamic>"

_BROAD = ("Exception", "BaseException")

#: just enough of the builtin exception hierarchy for handler matching.
_BUILTIN_PARENTS = {
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "NotADirectoryError": "OSError",
    "IsADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "BrokenPipeError": "ConnectionError",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "JSONDecodeError": "ValueError",
}


def _ancestry(name: str) -> set[str]:
    chain = {name}
    current = name
    while current in _BUILTIN_PARENTS:
        current = _BUILTIN_PARENTS[current]
        chain.add(current)
    chain.update(_BROAD)  # assume Exception-derived
    return chain


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def handler_catches(handler: ast.ExceptHandler, name: str) -> bool:
    """Would ``except <handler.type>`` catch an exception named ``name``?"""
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    if name == DYNAMIC:
        return any(_terminal_name(t) in _BROAD for t in types)
    ancestry = _ancestry(name)
    return any(_terminal_name(t) in ancestry for t in types)


def handler_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    """The type names a handler catches (``<dynamic>`` when broad)."""
    if handler.type is None:
        return (DYNAMIC,)
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = tuple(
        name for name in (_terminal_name(t) for t in types) if name is not None
    )
    if not names or any(name in _BROAD for name in names):
        return (DYNAMIC,)
    return names


@dataclass
class FunctionInfo:
    """One module-level function or method in the call graph."""

    qualname: str
    name: str
    class_name: Optional[str]
    node: FunctionNode


@dataclass
class _Site:
    """One place a function can originate or propagate an exception."""

    anchor: ast.stmt
    handlers: tuple[ast.ExceptHandler, ...]
    raised: tuple[str, ...] = ()
    callee: Optional[str] = None


class ModuleGraph:
    """Call graph + effect summaries for one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        for child in tree.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[child.name] = FunctionInfo(
                    qualname=child.name,
                    name=child.name,
                    class_name=None,
                    node=child,
                )
            elif isinstance(child, ast.ClassDef):
                for member in child.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = f"{child.name}.{member.name}"
                        self.functions[qualname] = FunctionInfo(
                            qualname=qualname,
                            name=member.name,
                            class_name=child.name,
                            node=member,
                        )
        self._cfgs: dict[str, CFG] = {}
        self._calls: dict[str, list[tuple[ast.Call, Optional[str]]]] = {}
        self._callers: Optional[dict[str, set[str]]] = None

    # -- structure ----------------------------------------------------

    def cfg(self, qualname: str) -> CFG:
        if qualname not in self._cfgs:
            self._cfgs[qualname] = build_cfg(self.functions[qualname].node)
        return self._cfgs[qualname]

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[str]:
        """Qualname of a module-local callee, or None (foreign call)."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id if func.id in self.functions else None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            qualname = f"{caller.class_name}.{func.attr}"
            return qualname if qualname in self.functions else None
        return None

    def calls_in(self, qualname: str) -> list[tuple[ast.Call, Optional[str]]]:
        """Every call in the function body (skipping nested defs),
        paired with its resolved module-local callee when there is one."""
        if qualname not in self._calls:
            info = self.functions[qualname]
            found: list[tuple[ast.Call, Optional[str]]] = []
            for node in walk_expressions(info.node):
                if isinstance(node, ast.Call):
                    found.append((node, self.resolve_call(node, info)))
            self._calls[qualname] = found
        return self._calls[qualname]

    def callers_of(self, qualname: str) -> set[str]:
        if self._callers is None:
            callers: dict[str, set[str]] = {q: set() for q in self.functions}
            for caller in self.functions:
                for _, callee in self.calls_in(caller):
                    if callee is not None:
                        callers[callee].add(caller)
            self._callers = callers
        return self._callers.get(qualname, set())

    # -- effect summaries ---------------------------------------------

    def may_await(self, qualname: str) -> bool:
        for node in walk_expressions(self.functions[qualname].node):
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                return True
        return False

    def may_block(
        self, is_blocking: Callable[[ast.Call], bool]
    ) -> dict[str, bool]:
        """Transitive may-block over the module-local call graph."""
        blocks = {
            qualname: any(
                is_blocking(call) for call, _ in self.calls_in(qualname)
            )
            for qualname in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname in self.functions:
                if blocks[qualname]:
                    continue
                if any(
                    callee is not None and blocks[callee]
                    for _, callee in self.calls_in(qualname)
                ):
                    blocks[qualname] = True
                    changed = True
        return blocks

    def flush_guarantees(
        self, is_direct_flush: Callable[[ast.Call], bool]
    ) -> dict[str, bool]:
        """Which functions flush on every normal-return path.

        Grows monotonically: a function proven to flush lets its
        callers count a call to it as a flush, which may prove them in
        the next round.
        """
        proven = {qualname: False for qualname in self.functions}
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if proven[qualname]:
                    continue

                def is_flush_call(call: ast.Call) -> bool:
                    if is_direct_flush(call):
                        return True
                    callee = self.resolve_call(call, info)
                    return callee is not None and proven[callee]

                def node_flushes(node: CFGNode) -> bool:
                    if node.stmt is None:
                        return False
                    for part in expression_parts(node.stmt):
                        for child in walk_expressions(part):
                            if isinstance(child, ast.Call) and is_flush_call(
                                child
                            ):
                                return True
                    return False

                cfg = self.cfg(qualname)
                if guarantees_effect(cfg, cfg.entry, node_flushes):
                    proven[qualname] = True
                    changed = True
        return proven

    # -- escaping exceptions ------------------------------------------

    def _exception_sites(self, info: FunctionInfo) -> list[_Site]:
        sites: list[_Site] = []

        def add_calls(
            stmt: ast.stmt, handlers: tuple[ast.ExceptHandler, ...]
        ) -> None:
            for part in expression_parts(stmt):
                for node in walk_expressions(part):
                    if isinstance(node, ast.Call):
                        callee = self.resolve_call(node, info)
                        if callee is not None:
                            sites.append(
                                _Site(
                                    anchor=stmt,
                                    handlers=handlers,
                                    callee=callee,
                                )
                            )

        def raised_names(
            stmt: ast.Raise, current: Optional[ast.ExceptHandler]
        ) -> tuple[str, ...]:
            if stmt.exc is None:  # bare re-raise
                return handler_names(current) if current is not None else (DYNAMIC,)
            target = stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            name = _terminal_name(target)
            if name is None or not name[:1].isupper():
                # ``raise exc`` of a captured variable re-raises the
                # handler's types; anything else is dynamic.
                if (
                    current is not None
                    and isinstance(stmt.exc, ast.Name)
                    and stmt.exc.id == current.name
                ):
                    return handler_names(current)
                return (DYNAMIC,)
            return (name,)

        def walk_block(
            stmts: list[ast.stmt],
            handlers: tuple[ast.ExceptHandler, ...],
            current: Optional[ast.ExceptHandler],
        ) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Raise):
                    sites.append(
                        _Site(
                            anchor=stmt,
                            handlers=handlers,
                            raised=raised_names(stmt, current),
                        )
                    )
                    continue
                add_calls(stmt, handlers)
                if isinstance(stmt, ast.Try):
                    walk_block(
                        stmt.body, handlers + tuple(stmt.handlers), current
                    )
                    for handler in stmt.handlers:
                        walk_block(handler.body, handlers, handler)
                    walk_block(stmt.orelse, handlers, current)
                    walk_block(stmt.finalbody, handlers, current)
                else:
                    for attr in ("body", "orelse", "finalbody"):
                        block = getattr(stmt, attr, None)
                        if (
                            isinstance(block, list)
                            and block
                            and isinstance(block[0], ast.stmt)
                        ):
                            walk_block(list(block), handlers, current)

        walk_block(info.node.body, (), None)
        return sites

    def escaping_exceptions(
        self,
        absorbing: Optional[
            Callable[[FunctionInfo, ast.ExceptHandler], bool]
        ] = None,
    ) -> dict[str, dict[str, ast.stmt]]:
        """Per function: exception type name → the raise statement it
        originates from (module-local), for types that can escape.

        ``absorbing(info, handler)`` may veto a handler: a vetoed
        handler still *catches* syntactically but does not absorb, so
        the type keeps escaping (used to demand ERR_* mapping in
        dispatch functions). Default: every catching handler absorbs.
        """
        sites = {
            qualname: self._exception_sites(info)
            for qualname, info in self.functions.items()
        }
        escaping: dict[str, dict[str, ast.stmt]] = {
            qualname: {} for qualname in self.functions
        }
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                for site in sites[qualname]:
                    items: Iterator[tuple[str, ast.stmt]]
                    if site.callee is not None:
                        items = iter(escaping[site.callee].items())
                    else:
                        items = iter(
                            (name, site.anchor) for name in site.raised
                        )
                    for name, anchor in items:
                        if any(
                            handler_catches(handler, name)
                            and (
                                absorbing is None
                                or absorbing(info, handler)
                            )
                            for handler in site.handlers
                        ):
                            continue
                        if name not in escaping[qualname]:
                            escaping[qualname][name] = anchor
                            changed = True
        return escaping
