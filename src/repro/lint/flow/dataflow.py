"""Worklist dataflow analyses over :mod:`repro.lint.flow.cfg` graphs.

Three analyses, each a small fixpoint over the finite lattices the
flow rules need:

* :func:`reaching_definitions` — forward *may*: which assignments of
  each local can reach a node. The interleaving-race rule uses it to
  taint locals that were computed from ``self`` state.
* :func:`locks_held` — forward *must*: which ``with``-acquired locks
  are held on every path into a node. Acquisition happens at the
  ``with`` header node, release at the synthetic ``with-exit`` node,
  and the meet is intersection, so a lock only counts as held where
  *all* paths hold it.
* :func:`guarantees_effect` — backward *must*: from a given node, does
  every path to the normal exit pass a node satisfying the effect
  predicate first? Paths ending at the raise-exit are vacuously fine
  (no normal return, no ack). This is the engine behind the
  interprocedural ``guarantees-flush`` summaries.

:func:`yield_on_some_path` is the *may* query the race detector asks:
is there any path from a read to a write that crosses a yield point?
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Optional

from .cfg import CFG, CFGNode, STMT, WITH_EXIT, expression_parts, walk_expressions

__all__ = [
    "Definition",
    "assigned_names",
    "guarantees_effect",
    "locks_held",
    "reaching_definitions",
    "yield_on_some_path",
]

#: one definition: (local name, index of the defining CFG node).
Definition = tuple[str, int]


def _target_names(target: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def assigned_names(stmt: Optional[ast.stmt]) -> set[str]:
    """Local names ``stmt`` (re)binds at its own CFG node."""
    if stmt is None:
        return set()
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names |= _target_names(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        names |= _target_names(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names |= _target_names(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names |= _target_names(item.optional_vars)
    for part in expression_parts(stmt):
        for node in walk_expressions(part):
            if isinstance(node, ast.NamedExpr):
                names |= _target_names(node.target)
    return names


def reaching_definitions(cfg: CFG) -> dict[int, frozenset[Definition]]:
    """Definitions reaching each node (state *before* the node runs).

    Function parameters count as definitions at the entry node.
    """
    gen: dict[int, frozenset[Definition]] = {}
    defs_of: dict[str, set[int]] = {}
    for node in cfg.nodes:
        names = assigned_names(node.stmt) if node.kind == STMT else set()
        if node.index == cfg.entry:
            args = cfg.function.args
            names = {
                arg.arg
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *((args.vararg,) if args.vararg else ()),
                    *((args.kwarg,) if args.kwarg else ()),
                )
            }
        gen[node.index] = frozenset((name, node.index) for name in names)
        for name in names:
            defs_of.setdefault(name, set()).add(node.index)

    incoming: dict[int, frozenset[Definition]] = {
        node.index: frozenset() for node in cfg.nodes
    }
    outgoing: dict[int, frozenset[Definition]] = dict(incoming)
    worklist = deque(node.index for node in cfg.nodes)
    while worklist:
        index = worklist.popleft()
        node = cfg.nodes[index]
        in_state = frozenset().union(*(outgoing[p] for p in node.preds)) if node.preds else frozenset()
        killed = {
            name for name, _ in gen[index]
        }
        out_state = gen[index] | frozenset(
            d for d in in_state if d[0] not in killed
        )
        if in_state != incoming[index] or out_state != outgoing[index]:
            incoming[index] = in_state
            outgoing[index] = out_state
            worklist.extend(node.succs)
    return incoming


def locks_held(
    cfg: CFG, lock_key: Callable[[ast.expr], Optional[str]]
) -> dict[int, frozenset[str]]:
    """Locks held on *every* path into each node (must-analysis).

    ``lock_key`` names the lock a ``with`` item acquires, or returns
    None for non-lock context managers.
    """

    def keys_of(stmt: Optional[ast.stmt]) -> frozenset[str]:
        if not isinstance(stmt, (ast.With, ast.AsyncWith)):
            return frozenset()
        found = {lock_key(item.context_expr) for item in stmt.items}
        return frozenset(key for key in found if key is not None)

    gen: dict[int, frozenset[str]] = {}
    kill: dict[int, frozenset[str]] = {}
    universe: set[str] = set()
    for node in cfg.nodes:
        acquired = keys_of(node.stmt) if node.kind == STMT else frozenset()
        released = keys_of(node.ref) if node.kind == WITH_EXIT else frozenset()
        gen[node.index] = acquired
        kill[node.index] = released
        universe |= acquired

    top = frozenset(universe)
    incoming: dict[int, frozenset[str]] = {
        node.index: top for node in cfg.nodes
    }
    incoming[cfg.entry] = frozenset()
    outgoing: dict[int, frozenset[str]] = {
        index: (state | gen[index]) - kill[index]
        for index, state in incoming.items()
    }
    worklist = deque(node.index for node in cfg.nodes)
    while worklist:
        index = worklist.popleft()
        if index == cfg.entry:
            continue
        node = cfg.nodes[index]
        preds = [outgoing[p] for p in node.preds]
        in_state = frozenset.intersection(*preds) if preds else top
        out_state = (in_state | gen[index]) - kill[index]
        if in_state != incoming[index] or out_state != outgoing[index]:
            incoming[index] = in_state
            outgoing[index] = out_state
            worklist.extend(node.succs)
    return incoming


def guarantees_effect(
    cfg: CFG, start: int, is_effect: Callable[[CFGNode], bool]
) -> bool:
    """Does every path from ``start`` to the normal exit pass an
    effect node first? Paths that end at the raise-exit are fine."""
    ok = [True] * len(cfg.nodes)
    ok[cfg.exit] = False
    ok[cfg.raise_exit] = True
    effect = [
        node.index != cfg.exit
        and node.index != cfg.raise_exit
        and is_effect(node)
        for node in cfg.nodes
    ]
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.index in (cfg.exit, cfg.raise_exit) or effect[node.index]:
                continue
            value = (
                all(ok[s] for s in node.succs) if node.succs else False
            )
            if value != ok[node.index]:
                ok[node.index] = value
                changed = True
    succs = cfg.nodes[start].succs
    if not succs:
        return False
    return all(ok[s] for s in succs)


def yield_on_some_path(cfg: CFG, src: int, dst: int) -> bool:
    """Is there a path ``src`` → ``dst`` that crosses a yield point?

    The endpoints count: an ``await`` inside the source statement runs
    after its reads, one inside the destination before its store.
    """
    start_crossed = cfg.nodes[src].is_yield
    if src == dst:
        return start_crossed
    seen: set[tuple[int, bool]] = set()
    queue: deque[tuple[int, bool]] = deque([(src, start_crossed)])
    while queue:
        index, crossed = queue.popleft()
        for succ in cfg.nodes[index].succs:
            now = crossed or cfg.nodes[succ].is_yield
            if succ == dst and now:
                return True
            if (succ, now) not in seen:
                seen.add((succ, now))
                queue.append((succ, now))
    return False
