"""``python -m repro.lint`` — same entry point as ``repro lint``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
