"""``repro.lint`` ("fenlint"): repo-specific static analysis.

Generic linters check style; fenlint checks the *invariants* the other
subsystems' correctness rests on — the conventions that no amount of
ruff configuration can express:

* the write-ahead journal's write-then-flush discipline
  (:mod:`repro.serve.journal`), where a buffered-but-unflushed append
  silently voids the acknowledged-iff-replayable durability contract;
* the determinism of the seeded measurement substrates
  (:mod:`repro.core`, :mod:`repro.bgp`, :mod:`repro.datasets`), where a
  stray ``random.random()`` or ``time.time()`` breaks the
  reproducibility of catchment inputs that the whole reproduction is
  built on;
* async hygiene in :mod:`repro.serve`, where one blocking call in a
  coroutine stalls every monitor on the loop;
* the observability conventions from PR 4 — Prometheus metric naming,
  the ``REPRO_OBS`` no-op span gate, and the rule that a broad
  ``except Exception`` must leave a visible trace (log, counter, or
  re-raise) rather than swallow the failure.

The framework is dependency-free (stdlib ``ast`` + ``tokenize``-level
line scanning) and pluggable: subclass :class:`~repro.lint.base.Rule`
for per-file AST passes or :class:`~repro.lint.base.CrossFileRule` for
whole-project consistency checks, register with
:func:`~repro.lint.base.register`, and the engine picks the rule up.
Findings can be suppressed line-by-line with ``# fenlint:
disable=<rule>`` or grandfathered in a committed JSON baseline.

Entry points: ``repro lint`` and ``python -m repro.lint``. See
``docs/static-analysis.md`` for the rule catalog and operator guide.
"""

from .base import ALL_RULES, CrossFileRule, Rule, SourceFile, all_rules, register
from .baseline import Baseline
from .engine import LintResult, lint_files, lint_paths
from .findings import Finding
from .report import render_github, render_json, render_text

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CrossFileRule",
    "Finding",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "lint_files",
    "lint_paths",
    "register",
    "render_github",
    "render_json",
    "render_text",
]
