"""Output formats: human text, stable JSON, GitHub annotations.

JSON output is deterministic by construction — findings arrive
pre-sorted from the engine, keys are sorted, and nothing volatile
(timestamps, absolute paths, durations) is included — so two runs over
the same tree produce byte-identical reports, which is what lets CI
diff or cache them.
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["render_github", "render_json", "render_text"]


def render_text(result: LintResult) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule}: {finding.message}"
        for finding in result.findings
    ]
    tail = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
        f" ({result.suppressed} suppressed, {result.baselined} baselined)"
    )
    lines.append(tail)
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    document = {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [finding.to_document() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _escape_github(text: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(result: LintResult) -> str:
    """``::error``/``::warning`` workflow commands, one per finding,
    for CI logs — the level follows the producing rule's severity."""
    lines = [
        f"::{finding.severity} file={finding.path},line={finding.line},"
        f"col={finding.col + 1},title=fenlint({finding.rule})::"
        f"{_escape_github(finding.message)}"
        for finding in result.findings
    ]
    lines.append(
        f"fenlint: {len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    return "\n".join(lines) + "\n"
