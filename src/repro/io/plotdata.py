"""Plot-data exporters: CSV series behind each paper figure.

The library renders text visualizations (``repro.core.viz``); for real
figures, analysts want the underlying data in a plotting tool. These
exporters write the exact series each figure type needs:

* heatmap matrix (Figure 2b/3b/5/6b) — a dense CSV of Φ values with
  timestamps on both axes;
* stack plot (Figure 1/2a/3a/6a) — per-state counts over time;
* latency timeseries (Figure 4) — per-catchment percentile over time;
* Sankey links (Figures 7/8) — ``level,source,target,value`` rows.
"""

from __future__ import annotations

import csv
from typing import Mapping, Sequence, TextIO

import numpy as np

from ..core.pipeline import FenrirReport

__all__ = [
    "write_heatmap_csv",
    "write_stackplot_csv",
    "write_latency_csv",
    "write_sankey_csv",
    "export_report",
]

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


def write_heatmap_csv(report: FenrirReport, stream: TextIO) -> int:
    """Dense Φ matrix with time labels; returns rows written."""
    times = [t.strftime(_TIME_FORMAT) for t in report.cleaned.times]
    writer = csv.writer(stream)
    writer.writerow(["time", *times])
    for label, row in zip(times, report.similarity):
        writer.writerow([label, *(f"{value:.6f}" for value in row)])
    return len(times)


def write_stackplot_csv(report: FenrirReport, stream: TextIO) -> int:
    """Per-state (weighted) totals over time."""
    aggregates = report.cleaned.aggregate_over_time(report.weights)
    states = sorted(aggregates)
    writer = csv.writer(stream)
    writer.writerow(["time", *states])
    count = 0
    for index, when in enumerate(report.cleaned.times):
        writer.writerow(
            [
                when.strftime(_TIME_FORMAT),
                *(f"{aggregates[state][index]:.3f}" for state in states),
            ]
        )
        count += 1
    return count


def write_latency_csv(
    latency: Mapping[str, np.ndarray],
    times: Sequence,
    stream: TextIO,
) -> int:
    """Per-catchment latency series (as from ``latency_timeseries``)."""
    sites = sorted(latency)
    writer = csv.writer(stream)
    writer.writerow(["time", *sites])
    count = 0
    for index, when in enumerate(times):
        row = [when.strftime(_TIME_FORMAT)]
        for site in sites:
            value = latency[site][index]
            row.append("" if np.isnan(value) else f"{value:.3f}")
        writer.writerow(row)
        count += 1
    return count


def write_sankey_csv(
    flows: Sequence[tuple[int, str, str, float]], stream: TextIO
) -> int:
    """Sankey links as ``level,source,target,value`` rows."""
    writer = csv.writer(stream)
    writer.writerow(["level", "source", "target", "value"])
    for level, source, target, value in flows:
        writer.writerow([level, source, target, f"{value:.3f}"])
    return len(flows)


def export_report(report: FenrirReport, directory) -> dict[str, str]:
    """Write a report's heatmap + stackplot CSVs into ``directory``.

    Returns ``{artifact: path}`` for the files written.
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    heatmap_path = directory / "heatmap.csv"
    with heatmap_path.open("w", newline="") as stream:
        write_heatmap_csv(report, stream)
    written["heatmap"] = str(heatmap_path)
    stack_path = directory / "stackplot.csv"
    with stack_path.open("w", newline="") as stream:
        write_stackplot_csv(report, stream)
    written["stackplot"] = str(stack_path)
    return written
