"""Dataset release bundles.

The paper commits to releasing its enterprise and top-website datasets
to researchers. A *bundle* is that release unit: a directory holding
the routing series (JSONL), a metadata document (what was measured,
when, how, with which generator and parameters), and a manifest with
SHA-256 checksums so recipients can verify integrity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.series import VectorSeries
from .formats import read_series_jsonl, write_series_jsonl

__all__ = ["Bundle", "BundleError", "write_bundle", "read_bundle"]

_SERIES_FILE = "series.jsonl"
_METADATA_FILE = "metadata.json"
_MANIFEST_FILE = "MANIFEST.json"


class BundleError(ValueError):
    """Raised for malformed or tampered bundles."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as stream:
        for chunk in iter(lambda: stream.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class Bundle:
    """A loaded dataset bundle."""

    name: str
    series: VectorSeries
    metadata: dict
    directory: Path

    @property
    def observations(self) -> int:
        return len(self.series)


def write_bundle(
    directory: Path | str,
    name: str,
    series: VectorSeries,
    metadata: Optional[dict] = None,
) -> Path:
    """Write a verifiable dataset bundle; returns its directory.

    ``metadata`` is free-form JSON-serializable provenance (generator,
    seed, parameters); the bundle adds the structural facts itself.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    series_path = directory / _SERIES_FILE
    with series_path.open("w") as stream:
        write_series_jsonl(series, stream)

    document = {
        "name": name,
        "networks": len(series.networks),
        "observations": len(series),
        "states": list(series.catalog.labels),
        "first_observation": series.times[0].isoformat() if len(series) else None,
        "last_observation": series.times[-1].isoformat() if len(series) else None,
        "provenance": metadata or {},
    }
    metadata_path = directory / _METADATA_FILE
    metadata_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    manifest = {
        "name": name,
        "files": {
            _SERIES_FILE: _sha256(series_path),
            _METADATA_FILE: _sha256(metadata_path),
        },
    }
    (directory / _MANIFEST_FILE).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return directory


def read_bundle(directory: Path | str, verify: bool = True) -> Bundle:
    """Load a bundle, verifying checksums unless told otherwise."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_FILE
    if not manifest_path.exists():
        raise BundleError(f"no manifest in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise BundleError(f"unreadable manifest in {directory}") from exc

    for filename, expected in manifest.get("files", {}).items():
        path = directory / filename
        if not path.exists():
            raise BundleError(f"bundle file missing: {filename}")
        if verify and _sha256(path) != expected:
            raise BundleError(f"checksum mismatch for {filename}")

    metadata = json.loads((directory / _METADATA_FILE).read_text())
    with (directory / _SERIES_FILE).open() as stream:
        series = read_series_jsonl(stream)
    if metadata.get("observations") != len(series):
        raise BundleError("metadata observation count disagrees with series")
    return Bundle(
        name=manifest.get("name", metadata.get("name", "unnamed")),
        series=series,
        metadata=metadata,
        directory=directory,
    )
