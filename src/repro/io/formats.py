"""Serialization of routing vectors and series.

Two formats:

* **JSONL** — one observation per line: timestamp plus the
  network→state assignment (sparse: unknown networks omitted). The
  format round-trips a :class:`~repro.core.series.VectorSeries`
  losslessly and diffs cleanly in version control.
* **CSV** — a dense matrix (rows = observations, columns = networks),
  convenient for spreadsheets and external tools.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from datetime import datetime
from typing import Optional, TextIO

from ..core.series import VectorSeries
from ..core.vector import UNKNOWN, StateCatalog

__all__ = [
    "DroppedTail",
    "write_series_jsonl",
    "read_series_jsonl",
    "recover_series_jsonl",
    "write_series_csv",
    "read_series_csv",
]

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


def write_series_jsonl(series: VectorSeries, stream: TextIO) -> int:
    """Write one JSON object per observation; returns lines written.

    A header line carries the network universe so sparse rows can omit
    unknown networks without losing them.
    """
    header = {"type": "header", "networks": list(series.networks)}
    stream.write(json.dumps(header, separators=(",", ":")) + "\n")
    count = 0
    for vector in series:
        assignment = {
            network: state
            for network, state in vector.to_mapping().items()
            if state != UNKNOWN
        }
        row = {
            "type": "observation",
            "time": vector.time.strftime(_TIME_FORMAT),  # type: ignore[union-attr]
            "states": assignment,
        }
        stream.write(json.dumps(row, separators=(",", ":")) + "\n")
        count += 1
    return count


@dataclass(frozen=True)
class DroppedTail:
    """What a recovering JSONL read threw away.

    A truncated or garbage record means everything after it is suspect
    (the writer died mid-stream), so recovery keeps the valid *prefix*
    and reports the rest: the 1-based line number of the first bad
    line, how many lines were dropped from there to EOF, and why the
    first one failed to parse.
    """

    first_bad_line: int
    dropped_lines: int
    reason: str

    def __str__(self) -> str:
        plural = "s" if self.dropped_lines != 1 else ""
        return (
            f"dropped {self.dropped_lines} line{plural} from line "
            f"{self.first_bad_line}: {self.reason}"
        )


def _parse_series_line(series: Optional[VectorSeries], line: str):
    """Apply one JSONL line; returns the (possibly new) series."""
    obj = json.loads(line)
    if obj.get("type") == "header":
        return VectorSeries(obj["networks"], StateCatalog())
    if obj.get("type") == "observation":
        if series is None:
            raise ValueError("observation before header line")
        time = datetime.strptime(obj["time"], _TIME_FORMAT)
        series.append_mapping(obj["states"], time)
        return series
    raise ValueError(f"unknown line type: {obj.get('type')!r}")


def recover_series_jsonl(
    stream: TextIO,
) -> tuple[VectorSeries, Optional[DroppedTail]]:
    """Read as much valid prefix as the stream holds.

    Unlike :func:`read_series_jsonl` this never raises on a truncated
    or garbage tail (the usual aftermath of a crashed writer): reading
    stops at the first invalid record and everything from there on is
    dropped and reported. A stream whose *header* is unreadable still
    raises — there is no universe to recover into.
    """
    series: Optional[VectorSeries] = None
    dropped: Optional[DroppedTail] = None
    for line_number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            series = _parse_series_line(series, stripped)
        except (ValueError, KeyError, TypeError) as exc:
            if series is None:
                raise ValueError(f"unreadable header line: {exc}") from exc
            remaining = sum(1 for _ in stream)
            dropped = DroppedTail(
                first_bad_line=line_number,
                dropped_lines=1 + remaining,
                reason=str(exc),
            )
            break
    if series is None:
        raise ValueError("empty stream: no header line")
    return series, dropped


def read_series_jsonl(stream: TextIO, *, errors: str = "strict") -> VectorSeries:
    """Read a series written by :func:`write_series_jsonl`.

    ``errors="strict"`` (default) raises on any malformed line;
    ``errors="recover"`` tolerates a truncated/garbage tail, keeping
    the valid prefix (use :func:`recover_series_jsonl` to also learn
    what was dropped).
    """
    if errors not in ("strict", "recover"):
        raise ValueError(f"errors must be 'strict' or 'recover', got {errors!r}")
    if errors == "recover":
        series, _dropped = recover_series_jsonl(stream)
        return series
    series: VectorSeries | None = None
    for line in stream:
        line = line.strip()
        if not line:
            continue
        series = _parse_series_line(series, line)
    if series is None:
        raise ValueError("empty stream: no header line")
    return series


def write_series_csv(series: VectorSeries, stream: TextIO) -> int:
    """Dense CSV: header of networks, one row per observation."""
    writer = csv.writer(stream)
    writer.writerow(["time", *series.networks])
    count = 0
    for vector in series:
        mapping = vector.to_mapping()
        writer.writerow(
            [
                vector.time.strftime(_TIME_FORMAT),  # type: ignore[union-attr]
                *(mapping[network] for network in series.networks),
            ]
        )
        count += 1
    return count


def read_series_csv(stream: TextIO) -> VectorSeries:
    """Read a series written by :func:`write_series_csv`."""
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV") from None
    if not header or header[0] != "time":
        raise ValueError("CSV header must start with 'time'")
    networks = header[1:]
    series = VectorSeries(networks, StateCatalog())
    for row in reader:
        if not row:
            continue
        time = datetime.strptime(row[0], _TIME_FORMAT)
        assignment = dict(zip(networks, row[1:]))
        series.append_mapping(assignment, time)
    return series
