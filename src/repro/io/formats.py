"""Serialization of routing vectors and series.

Two formats:

* **JSONL** — one observation per line: timestamp plus the
  network→state assignment (sparse: unknown networks omitted). The
  format round-trips a :class:`~repro.core.series.VectorSeries`
  losslessly and diffs cleanly in version control.
* **CSV** — a dense matrix (rows = observations, columns = networks),
  convenient for spreadsheets and external tools.
"""

from __future__ import annotations

import csv
import json
from datetime import datetime
from typing import TextIO

from ..core.series import VectorSeries
from ..core.vector import UNKNOWN, StateCatalog

__all__ = ["write_series_jsonl", "read_series_jsonl", "write_series_csv", "read_series_csv"]

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


def write_series_jsonl(series: VectorSeries, stream: TextIO) -> int:
    """Write one JSON object per observation; returns lines written.

    A header line carries the network universe so sparse rows can omit
    unknown networks without losing them.
    """
    header = {"type": "header", "networks": list(series.networks)}
    stream.write(json.dumps(header, separators=(",", ":")) + "\n")
    count = 0
    for vector in series:
        assignment = {
            network: state
            for network, state in vector.to_mapping().items()
            if state != UNKNOWN
        }
        row = {
            "type": "observation",
            "time": vector.time.strftime(_TIME_FORMAT),  # type: ignore[union-attr]
            "states": assignment,
        }
        stream.write(json.dumps(row, separators=(",", ":")) + "\n")
        count += 1
    return count


def read_series_jsonl(stream: TextIO) -> VectorSeries:
    """Read a series written by :func:`write_series_jsonl`."""
    series: VectorSeries | None = None
    for line in stream:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("type") == "header":
            series = VectorSeries(obj["networks"], StateCatalog())
        elif obj.get("type") == "observation":
            if series is None:
                raise ValueError("observation before header line")
            time = datetime.strptime(obj["time"], _TIME_FORMAT)
            series.append_mapping(obj["states"], time)
        else:
            raise ValueError(f"unknown line type: {obj.get('type')!r}")
    if series is None:
        raise ValueError("empty stream: no header line")
    return series


def write_series_csv(series: VectorSeries, stream: TextIO) -> int:
    """Dense CSV: header of networks, one row per observation."""
    writer = csv.writer(stream)
    writer.writerow(["time", *series.networks])
    count = 0
    for vector in series:
        mapping = vector.to_mapping()
        writer.writerow(
            [
                vector.time.strftime(_TIME_FORMAT),  # type: ignore[union-attr]
                *(mapping[network] for network in series.networks),
            ]
        )
        count += 1
    return count


def read_series_csv(stream: TextIO) -> VectorSeries:
    """Read a series written by :func:`write_series_csv`."""
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV") from None
    if not header or header[0] != "time":
        raise ValueError("CSV header must start with 'time'")
    networks = header[1:]
    series = VectorSeries(networks, StateCatalog())
    for row in reader:
        if not row:
            continue
        time = datetime.strptime(row[0], _TIME_FORMAT)
        assignment = dict(zip(networks, row[1:]))
        series.append_mapping(assignment, time)
    return series
