"""RIPE Atlas result-format I/O.

Atlas archives measurement results as JSON objects with a stable,
documented shape; the paper's B-Root/Atlas pipeline consumes a decade
of them. This module writes and reads the subset Fenrir needs — DNS
(TXT/NSID server identification) and ping (RTT) results — and distills
a stream of DNS results into a routing-vector series using the same
identifier mapping as the live Atlas simulator.

The field names follow the real API (``prb_id``, ``msm_id``,
``timestamp``, ``result.abuf``-free simplified answers), so tooling
written against these files transfers to real archives with minimal
changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Iterator, Optional, TextIO

from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from ..dns.chaos import IdentifierMap

__all__ = [
    "AtlasDnsResult",
    "AtlasPingResult",
    "write_results",
    "read_results",
    "dns_results_to_series",
]


@dataclass(frozen=True, slots=True)
class AtlasDnsResult:
    """One DNS identification result from one probe."""

    prb_id: int
    msm_id: int
    timestamp: int  # epoch seconds
    identifier: Optional[str]  # None = timeout / no answer
    rt_ms: Optional[float] = None

    def to_json(self) -> dict:
        record: dict = {
            "type": "dns",
            "prb_id": self.prb_id,
            "msm_id": self.msm_id,
            "timestamp": self.timestamp,
        }
        if self.identifier is None:
            record["error"] = {"timeout": 5000}
        else:
            result: dict = {
                "answers": [{"TYPE": "TXT", "RDATA": [self.identifier]}],
            }
            if self.rt_ms is not None:
                result["rt"] = self.rt_ms
            record["result"] = result
        return record

    @classmethod
    def from_json(cls, record: dict) -> "AtlasDnsResult":
        if record.get("type") != "dns":
            raise ValueError(f"not a dns result: {record.get('type')!r}")
        identifier: Optional[str] = None
        rt: Optional[float] = None
        result = record.get("result")
        if result is not None:
            rt = float(result["rt"]) if "rt" in result else None
            answers = result.get("answers", [])
            if answers and answers[0].get("RDATA"):
                identifier = str(answers[0]["RDATA"][0])
        return cls(
            prb_id=int(record["prb_id"]),
            msm_id=int(record["msm_id"]),
            timestamp=int(record["timestamp"]),
            identifier=identifier,
            rt_ms=rt,
        )


@dataclass(frozen=True, slots=True)
class AtlasPingResult:
    """One ping result: min/avg/max RTT from one probe."""

    prb_id: int
    msm_id: int
    timestamp: int
    rtts_ms: tuple[float, ...]  # per-packet; empty = all lost

    def to_json(self) -> dict:
        return {
            "type": "ping",
            "prb_id": self.prb_id,
            "msm_id": self.msm_id,
            "timestamp": self.timestamp,
            "sent": max(len(self.rtts_ms), 3),
            "rcvd": len(self.rtts_ms),
            "result": [
                {"rtt": rtt} for rtt in self.rtts_ms
            ] + [{"x": "*"} for _ in range(max(0, 3 - len(self.rtts_ms)))],
            "min": min(self.rtts_ms) if self.rtts_ms else -1,
            "avg": (sum(self.rtts_ms) / len(self.rtts_ms)) if self.rtts_ms else -1,
            "max": max(self.rtts_ms) if self.rtts_ms else -1,
        }

    @classmethod
    def from_json(cls, record: dict) -> "AtlasPingResult":
        if record.get("type") != "ping":
            raise ValueError(f"not a ping result: {record.get('type')!r}")
        rtts = tuple(
            float(item["rtt"])
            for item in record.get("result", [])
            if isinstance(item, dict) and "rtt" in item
        )
        return cls(
            prb_id=int(record["prb_id"]),
            msm_id=int(record["msm_id"]),
            timestamp=int(record["timestamp"]),
            rtts_ms=rtts,
        )


def write_results(
    results: Iterable[AtlasDnsResult | AtlasPingResult], stream: TextIO
) -> int:
    """Write results as JSONL (the bulk-download format)."""
    count = 0
    for result in results:
        stream.write(json.dumps(result.to_json(), separators=(",", ":")) + "\n")
        count += 1
    return count


def read_results(stream: TextIO) -> Iterator[AtlasDnsResult | AtlasPingResult]:
    """Stream results back, dispatching on the ``type`` field."""
    for line in stream:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "dns":
            yield AtlasDnsResult.from_json(record)
        elif kind == "ping":
            yield AtlasPingResult.from_json(record)
        else:
            raise ValueError(f"unknown result type {kind!r}")


def dns_results_to_series(
    results: Iterable[AtlasDnsResult],
    identifier_map: IdentifierMap,
    round_seconds: int = 240,
) -> VectorSeries:
    """Distill archived DNS results into a routing-vector series.

    Results are bucketed into ``round_seconds`` rounds (Atlas's 4-minute
    cadence by default); per round, each probe's identifier maps to a
    site (unmappable → ``other``, timeout → ``err``), exactly as the
    paper's §2.3.1 pipeline does on the real archive.
    """
    buckets: dict[int, dict[int, Optional[str]]] = {}
    probes: set[int] = set()
    for result in results:
        bucket = result.timestamp // round_seconds
        buckets.setdefault(bucket, {})[result.prb_id] = result.identifier
        probes.add(result.prb_id)

    networks = [f"vp{prb_id}" for prb_id in sorted(probes)]
    series = VectorSeries(networks, StateCatalog())
    for bucket in sorted(buckets):
        assignment: dict[str, str] = {}
        for prb_id, identifier in buckets[bucket].items():
            if identifier is None:
                state = "err"
            else:
                mapped = identifier_map.site_of(identifier)
                state = mapped if mapped is not None else "other"
            assignment[f"vp{prb_id}"] = state
        when = datetime.fromtimestamp(bucket * round_seconds, tz=timezone.utc).replace(
            tzinfo=None
        )
        series.append_mapping(assignment, when)
    return series
