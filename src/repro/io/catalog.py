"""The dataset catalog: Table 2 of the paper, as data.

Each entry records the case study, the service measured, what a
catchment means there, the network universe, and the collection window
— and names the scenario generator in :mod:`repro.datasets` that
produces this repository's synthetic equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

__all__ = ["DatasetInfo", "CATALOG", "dataset"]


@dataclass(frozen=True, slots=True)
class DatasetInfo:
    name: str
    case_study: str
    service: str
    catchment: str
    network_universe: str
    start: date
    duration_days: int
    generator: str  # module path of the scenario generator


CATALOG: tuple[DatasetInfo, ...] = (
    DatasetInfo(
        name="B-Root/Verfploeter",
        case_study="anycast",
        service="DNS or anycasted services",
        catchment="anycast sites",
        network_universe="5M IPv4 /24 blocks",
        start=date(2019, 9, 1),
        duration_days=5 * 365,
        generator="repro.datasets.broot",
    ),
    DatasetInfo(
        name="B-Root/Atlas",
        case_study="anycast",
        service="DNS or anycasted services",
        catchment="anycast sites",
        network_universe="13k RIPE Atlas VPs",
        start=date(2019, 9, 1),
        duration_days=5 * 365,
        generator="repro.datasets.groundtruth",
    ),
    DatasetInfo(
        name="USC/traceroute",
        case_study="multi-homed enterprise",
        service="an enterprise",
        catchment="upstream providers",
        network_universe="1.6M IPv4 /24 blocks",
        start=date(2024, 8, 1),
        duration_days=8 * 30,
        generator="repro.datasets.usc",
    ),
    DatasetInfo(
        name="Google/EDNS-CS",
        case_study="top websites",
        service="a hypergiant website",
        catchment="website instances",
        network_universe="global networks",
        start=date(2024, 2, 17),
        duration_days=60,
        generator="repro.datasets.google",
    ),
    DatasetInfo(
        name="Wiki/EDNS-CS",
        case_study="top websites",
        service="a non-profit website",
        catchment="website instances",
        network_universe="global networks",
        start=date(2025, 3, 15),
        duration_days=45,
        generator="repro.datasets.wikipedia",
    ),
    DatasetInfo(
        name="G-Root/Atlas",
        case_study="anycast",
        service="DNS root service",
        catchment="anycast sites",
        network_universe="~9k RIPE Atlas VPs",
        start=date(2020, 3, 1),
        duration_days=10,
        generator="repro.datasets.groot",
    ),
)


def dataset(name: str) -> DatasetInfo:
    """Catalog lookup by dataset name."""
    for info in CATALOG:
        if info.name == name:
            return info
    raise KeyError(f"unknown dataset {name!r}; known: {[d.name for d in CATALOG]}")
