"""Dataset I/O: series serialization and the Table 2 catalog."""

from .atlasjson import (
    AtlasDnsResult,
    AtlasPingResult,
    dns_results_to_series,
    read_results,
    write_results,
)
from .bundle import Bundle, BundleError, read_bundle, write_bundle
from .catalog import CATALOG, DatasetInfo, dataset
from .plotdata import (
    export_report,
    write_heatmap_csv,
    write_latency_csv,
    write_sankey_csv,
    write_stackplot_csv,
)
from .formats import (
    DroppedTail,
    read_series_csv,
    read_series_jsonl,
    recover_series_jsonl,
    write_series_csv,
    write_series_jsonl,
)

__all__ = [
    "AtlasDnsResult",
    "AtlasPingResult",
    "Bundle",
    "dns_results_to_series",
    "read_results",
    "write_results",
    "BundleError",
    "CATALOG",
    "read_bundle",
    "write_bundle",
    "DatasetInfo",
    "dataset",
    "export_report",
    "read_series_csv",
    "write_heatmap_csv",
    "write_latency_csv",
    "write_sankey_csv",
    "write_stackplot_csv",
    "DroppedTail",
    "read_series_jsonl",
    "recover_series_jsonl",
    "write_series_csv",
    "write_series_jsonl",
]
