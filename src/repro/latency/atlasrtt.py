"""Atlas built-in RTT measurements toward an anycast service (§2.8.1).

RIPE Atlas VPs continuously measure RTT to the root servers; each
response carries the end-host-to-anycast-site RTT. The simulator
samples, per VP, the RTT to whichever site the VP's AS currently
routes to — so a catchment change moves a VP's latency, which is
exactly the signal Figure 4 visualizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Sequence

from ..anycast.atlas import AtlasVP
from ..anycast.service import UNREACHABLE, AnycastService
from ..net.geo import GeoPoint
from .model import RttModel

__all__ = ["AtlasRttMeasurement"]


@dataclass
class AtlasRttMeasurement:
    """Per-VP RTT samples to the current anycast site."""

    service: AnycastService
    vps: Sequence[AtlasVP]
    vp_locations: Mapping[int, GeoPoint]  # keyed by hosting ASN
    rng: random.Random
    model: RttModel = field(default_factory=RttModel)

    def measure(self, when: datetime) -> dict[str, float]:
        """One round: ``{vp network id: rtt_ms}`` for reachable VPs."""
        catchments = self.service.catchment_map(when)
        rtts: dict[str, float] = {}
        for vp in self.vps:
            site_label = catchments.get(vp.asn, UNREACHABLE)
            if site_label == UNREACHABLE or site_label not in self.service.sites:
                continue
            client = self.vp_locations.get(vp.asn)
            if client is None:
                continue
            site = self.service.location_of(site_label)
            rtts[vp.network_id] = self.model.sample(vp.network_id, client, site)
        return rtts
