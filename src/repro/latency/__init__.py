"""Latency substrate: geodesic RTT model, Trinocular, Atlas RTT streams."""

from .atlasrtt import AtlasRttMeasurement
from .model import RttModel, path_rtt_ms
from .trinocular import PROBE_INTERVAL, TrinocularProber

__all__ = ["AtlasRttMeasurement", "PROBE_INTERVAL", "RttModel",
    "path_rtt_ms", "TrinocularProber"]
