"""Geodesic RTT model with deterministic per-path dispersion.

Latency between a client network and a service site is dominated by
geography: great-circle propagation at fiber speed, inflated for real
path stretch, plus a per-path access/queueing component. The per-path
component is drawn deterministically from the (network, site) pair so
repeated measurements are stable, with optional per-sample jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional

from ..net.geo import GeoPoint
from ..webmap.frontends import stable_fraction

__all__ = ["RttModel", "path_rtt_ms"]


def path_rtt_ms(topology, as_path, per_hop_ms: float = 1.0) -> float:
    """Round-trip propagation along an AS path's geography.

    Unlike the endpoint model, this accumulates the great-circle RTT of
    every inter-AS segment, so a *detour* (the Baltic cable-cut effect:
    same endpoints, longer path) shows up as added latency.
    """
    total = 0.0
    previous: GeoPoint | None = None
    for asn in as_path:
        node = topology.nodes.get(asn)
        location = node.location if node is not None else None
        if location is None:
            continue
        if previous is not None:
            total += previous.rtt_ms(location)
        previous = location
    return total + per_hop_ms * max(len(as_path) - 1, 0)


@dataclass
class RttModel:
    """Samples RTTs between located networks and located sites."""

    access_ms_min: float = 2.0
    access_ms_max: float = 30.0
    jitter_ms: float = 1.5
    rng: Optional[random.Random] = None

    def base_rtt(self, network_id: str, client: GeoPoint, site: GeoPoint) -> float:
        """The stable component for one network-site path."""
        propagation = client.rtt_ms(site)
        spread = self.access_ms_max - self.access_ms_min
        access = self.access_ms_min + spread * stable_fraction(network_id, site.code)
        return propagation + access

    def sample(self, network_id: str, client: GeoPoint, site: GeoPoint) -> float:
        """One measured RTT: base plus (optional) symmetric jitter."""
        rtt = self.base_rtt(network_id, client, site)
        if self.rng is not None and self.jitter_ms > 0:
            rtt += self.rng.uniform(0.0, self.jitter_ms)
        return rtt

    def table(
        self,
        assignment: Mapping[str, str],
        client_locations: Mapping[str, GeoPoint],
        site_locations: Mapping[str, GeoPoint],
    ) -> dict[str, float]:
        """RTT per network under a catchment ``assignment``.

        Networks whose state is not a located site (err/other/unknown)
        are skipped — they have no service RTT.
        """
        rtts: dict[str, float] = {}
        for network, site_label in assignment.items():
            client = client_locations.get(network)
            site = site_locations.get(site_label)
            if client is None or site is None:
                continue
            rtts[network] = self.sample(network, client, site)
        return rtts
