"""A Trinocular-style block prober (§2.8.2).

Trinocular probes 1–16 targets per /24 block every 11 minutes from a
fixed pseudorandom target list, primarily for outage detection; the
paper reuses its echo-reply RTTs as the enterprise's latency source.
The simulator reproduces the schedule and the per-block availability
model, returning per-round RTT tables keyed by block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Mapping, Optional

from ..net.addr import IPv4Prefix
from ..net.geo import GeoPoint
from .model import RttModel

__all__ = ["TrinocularProber", "PROBE_INTERVAL"]

PROBE_INTERVAL = timedelta(minutes=11)


@dataclass
class TrinocularProber:
    """Probes blocks from one site and records echo-reply RTTs.

    ``availability`` maps a block to its probability of having a
    responsive target this round (defaults to 0.8 for all blocks).
    """

    site_location: GeoPoint
    block_locations: Mapping[str, GeoPoint]
    rng: random.Random
    model: RttModel = field(default_factory=RttModel)
    targets_per_block: int = 4
    availability: Optional[Mapping[str, float]] = None
    probes_sent: int = 0

    def _available(self, block: str) -> float:
        if self.availability is None:
            return 0.8
        return self.availability.get(block, 0.8)

    def round(self, when: datetime) -> dict[str, float]:
        """One 11-minute round: ``{block: rtt_ms}`` for answering blocks.

        Per the real system, several targets per block are probed; the
        round's RTT is the first (fastest-answering) response.
        """
        del when  # schedule bookkeeping is the caller's concern
        results: dict[str, float] = {}
        for block, location in self.block_locations.items():
            answered = False
            per_target_availability = self._available(block)
            for _target in range(self.targets_per_block):
                self.probes_sent += 1
                if self.rng.random() < per_target_availability:
                    answered = True
                    break
            if answered:
                results[block] = self.model.sample(block, location, self.site_location)
        return results

    def rounds_between(
        self, start: datetime, end: datetime
    ) -> list[tuple[datetime, dict[str, float]]]:
        """All rounds in ``[start, end)`` at the 11-minute cadence."""
        rounds = []
        when = start
        while when < end:
            rounds.append((when, self.round(when)))
            when += PROBE_INTERVAL
        return rounds


def parse_block(block: str) -> IPv4Prefix:
    """Convenience: block keys are /24 prefix strings."""
    return IPv4Prefix.from_string(block)
