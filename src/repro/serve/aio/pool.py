"""A bounded pool of pipelined connections.

Capacity is ``max_connections × max_inflight`` logical request slots,
guarded by one semaphore whose waiters are FIFO — request capacity+1
queues behind everyone already waiting instead of dialing without
bound or failing. Within that budget the pool keeps connections
least-loaded-first: each request picks the member with the fewest
checked-out slots, so depth stays even and no connection exceeds its
pipelining cap (the selection and counter bump happen with no ``await``
in between, hence atomically on the event loop).

Dead connections are replaced lazily, at the moment a request lands on
them: the re-dial is health-checked (a cheap ``topology`` round trip
must succeed, proving the far end *speaks the protocol* rather than
merely accepting TCP — exactly the difference between a restarting
shard's listener and a serving one) and retried under exponential
backoff with jitter, so a thousand concurrent requests against a
restarting server do not stampede it with synchronized dials.
"""

from __future__ import annotations

import asyncio
import random
from typing import List, Optional

from .. import protocol
from ..protocol import ServeClientError, ServeTimeout
from .connection import AsyncConnection, RequestNotSent

__all__ = ["ConnectionPool"]


class _Member:
    """One pool slot's connection and its checked-out request count."""

    __slots__ = ("connection", "checked_out", "dial_lock")

    def __init__(self) -> None:
        self.connection: Optional[AsyncConnection] = None
        self.checked_out = 0
        self.dial_lock = asyncio.Lock()


class ConnectionPool:
    """Bounded, self-healing pool of :class:`AsyncConnection`."""

    def __init__(
        self,
        host: str,
        port: int,
        max_connections: int = 4,
        max_inflight: int = 64,
        connect_timeout: Optional[float] = 5.0,
        max_frame: int = protocol.MAX_FRAME,
        reconnect_backoff: float = 0.05,
        reconnect_attempts: int = 5,
        health_check: bool = True,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if reconnect_attempts < 1:
            raise ValueError("reconnect_attempts must be at least 1")
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.connect_timeout = connect_timeout
        self.max_frame = max_frame
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_attempts = reconnect_attempts
        self.health_check = health_check
        self._members: List[_Member] = [_Member() for _ in range(max_connections)]
        self._slots = asyncio.Semaphore(max_connections * max_inflight)
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total logical request slots (connections × in-flight cap)."""
        return self.max_connections * self.max_inflight

    @property
    def in_flight(self) -> int:
        """Requests currently holding a slot."""
        return sum(member.checked_out for member in self._members)

    # -- requests ------------------------------------------------------------

    async def request(
        self, command: str, timeout: Optional[float] = None, **fields: object
    ) -> dict:
        """One command through the pool; waits FIFO when it is full.

        ``timeout`` bounds both the wait for a free slot and the wait
        for the response (each separately — a saturated pool is server
        backpressure, not a dead server, and deserves its own clock).
        A request whose frame provably never reached the server
        (:class:`RequestNotSent` — the connection died between pooled
        requests) is resent once on a fresh connection; a failure
        after the send is never retried here, because the request may
        already have been applied.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        try:
            await asyncio.wait_for(self._slots.acquire(), timeout)
        except asyncio.TimeoutError as exc:
            raise ServeTimeout(
                f"no free pool slot for {command!r} within {timeout}s "
                f"({self.capacity} slots, all in flight)"
            ) from exc
        try:
            member = min(self._members, key=lambda m: m.checked_out)
            member.checked_out += 1
            try:
                connection = await self._ensure(member)
                try:
                    return await connection.request(command, timeout, **fields)
                except RequestNotSent:
                    # Stale socket (server restarted between requests):
                    # the frame never left, so one resend is safe.
                    connection = await self._ensure(member)
                    return await connection.request(command, timeout, **fields)
            finally:
                member.checked_out -= 1
        finally:
            self._slots.release()

    # -- connection management -----------------------------------------------

    async def _ensure(self, member: _Member) -> AsyncConnection:
        """The member's live connection, (re)dialed if dead.

        The dial lock makes concurrent requests on a dead member wait
        for one re-dial rather than racing their own.
        """
        connection = member.connection
        if connection is not None and connection.healthy:
            return connection
        async with member.dial_lock:
            connection = member.connection
            if connection is not None and connection.healthy:
                return connection  # re-dialed while we waited on the lock
            if connection is not None:
                await connection.close()
                member.connection = None
            member.connection = await self._dial()
            return member.connection

    async def _dial(self) -> AsyncConnection:
        """Dial with health check, exponential backoff, and jitter."""
        delay = self.reconnect_backoff
        last_error: Exception | None = None
        for attempt in range(self.reconnect_attempts):
            if attempt:
                # Jitter in [0.5, 1.5)× so a fleet of waiters does not
                # re-dial a recovering server in lockstep.
                await asyncio.sleep(delay * (0.5 + random.random()))
                delay *= 2
            try:
                connection = await AsyncConnection.open(
                    self.host,
                    self.port,
                    connect_timeout=self.connect_timeout,
                    max_inflight=self.max_inflight,
                    max_frame=self.max_frame,
                )
            except (ConnectionError, OSError, ServeTimeout) as exc:
                last_error = exc
                continue
            if not self.health_check:
                return connection
            try:
                # topology is answered locally by both the single
                # server and the router — the cheapest proof that the
                # peer speaks the protocol and is actually serving.
                await connection.request("topology", self.connect_timeout)
                return connection
            except (ConnectionError, OSError, ServeTimeout) as exc:
                last_error = exc
                await connection.close()
            except ServeClientError:
                # An error *response* still proves a live server;
                # old servers without the command would answer
                # bad_request, which is healthy enough.
                return connection
        raise ConnectionError(
            f"could not reach {self.host}:{self.port} after "
            f"{self.reconnect_attempts} attempts: {last_error}"
        ) from last_error

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Close every member connection; pending requests fail fast."""
        self._closed = True
        for member in self._members:
            if member.connection is not None:
                await member.connection.close()
                member.connection = None

    async def __aenter__(self) -> "ConnectionPool":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
