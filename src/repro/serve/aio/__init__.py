"""``repro.serve.aio``: the asyncio client for the serve wire protocol.

The blocking :class:`~repro.serve.client.ServeClient` holds one
connection and one request in flight — fine for the CLI, hopeless for
a load generator or a service ingesting thousands of rounds a second
from one process. This package multiplexes instead:

* :mod:`~repro.serve.aio.connection` — one pipelined connection: many
  logical requests in flight, responses correlated back to waiting
  futures by ``id`` in whatever order the server finishes them;
* :mod:`~repro.serve.aio.pool` — a bounded pool of those connections
  with FIFO admission and health-checked, jitter-backoff reconnects;
* :mod:`~repro.serve.aio.client` — :class:`AsyncServeClient`, the
  blocking client's command surface as coroutines, plus an optional
  ring-aware mode that sends monitor commands straight to the owning
  shard and falls back to the router when the ring drifts.

See ``docs/async-client.md`` for pool sizing, backpressure semantics,
and the ring-aware tradeoffs.
"""

from .client import AsyncServeClient
from .connection import AsyncConnection, RequestNotSent
from .pool import ConnectionPool

__all__ = [
    "AsyncConnection",
    "AsyncServeClient",
    "ConnectionPool",
    "RequestNotSent",
]
