"""One pipelined connection: many logical requests, one socket.

The server answers pipelined frames out of order, correlated by
``id`` (see ``docs/serving.md``). :class:`AsyncConnection` exploits
that: each request registers a future in a table keyed by its
correlation id and writes its frame; a single background reader task
resolves futures as response frames arrive, in whatever order the
server finished them. ``N`` logical requests therefore share one
socket, one reader, and one TCP round-trip pipeline instead of ``N``
connections.

A timed-out request does **not** poison the connection the way it does
the blocking client's: the late response still carries its id, is
matched to the (by then cancelled) future, and is dropped — every
other request keeps its pairing. Only a transport failure kills the
connection, and then every pending future fails promptly with
:class:`ConnectionError` so callers can retry against a fresh one.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Dict, Optional, Tuple

from .. import protocol
from ..protocol import FrameError, RequestIds, ServeTimeout, check_response

__all__ = ["AsyncConnection", "RequestNotSent"]


class RequestNotSent(ConnectionError):
    """The request frame never reached the server.

    Raised when the write itself fails — the server cannot have seen
    any byte of the request, so resending on a fresh connection is
    always safe (the pool does exactly that, once). Contrast with a
    plain :class:`ConnectionError` after a successful write: the
    request's fate is unknown and an automatic retry could
    double-apply.
    """


class AsyncConnection:
    """A multiplexed client connection to one server or router."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_inflight: int = 64,
        max_frame: int = protocol.MAX_FRAME,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        self.max_frame = max_frame
        self._reader = reader
        self._writer = writer
        self._ids = RequestIds()
        self._pending: Dict[int, "asyncio.Future[dict]"] = {}
        self._closed: Optional[ConnectionError] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        connect_timeout: Optional[float] = None,
        max_inflight: int = 64,
        max_frame: int = protocol.MAX_FRAME,
    ) -> "AsyncConnection":
        """Dial ``host:port``; :class:`ServeTimeout` on a slow connect."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except asyncio.TimeoutError as exc:
            raise ServeTimeout(
                f"connecting to {host}:{port} exceeded {connect_timeout}s"
            ) from exc
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(reader, writer, max_inflight=max_inflight, max_frame=max_frame)

    # -- state ---------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while the transport and its reader task are alive."""
        return self._closed is None and not self._reader_task.done()

    @property
    def in_flight(self) -> int:
        """Requests awaiting a response right now."""
        return len(self._pending)

    # -- requests ------------------------------------------------------------

    def submit(self, command: str, **fields: object) -> "asyncio.Future[dict]":
        """Write one request *now* and return the future for its response.

        Synchronous by design: the frame goes into the transport buffer
        before this returns, so a sequence of ``submit`` calls is sent
        in exactly call order — the property pipelined same-monitor
        ingest depends on (the server applies one connection's ingests
        in frame order, see :meth:`FenrirServer._handle_connection`).
        Callers doing sustained submission should ``await drain()``
        between submits to respect transport backpressure.

        The future resolves to the *raw* response document; pass it
        through :func:`~repro.serve.protocol.check_response` to get the
        blocking client's exception mapping. Raises
        :class:`RequestNotSent` if the connection is already dead — the
        frame provably never left, so resending elsewhere is safe.
        """
        if self._closed is not None:
            raise RequestNotSent(f"connection is closed: {self._closed}")
        if len(self._pending) >= self.max_inflight:
            # The pool never lets this happen; direct users get a loud
            # error rather than silent unbounded queueing.
            raise RuntimeError(
                f"connection already has {len(self._pending)} requests in "
                f"flight (cap {self.max_inflight})"
            )
        request_id = self._ids.next()
        message = {"cmd": command, "id": request_id, **fields}
        frame = protocol.encode_frame(message, self.max_frame)
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(frame)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise RequestNotSent(f"send failed: {exc}") from exc
        return future

    async def drain(self) -> None:
        """Wait for the transport's write buffer to flush below its mark."""
        await self._writer.drain()

    async def request(
        self, command: str, timeout: Optional[float] = None, **fields: object
    ) -> dict:
        """Send one command; resolve when *its* response arrives.

        Many callers may be inside this method concurrently — that is
        the point. Error responses raise the same exceptions as the
        blocking client (via :func:`~repro.serve.protocol.check_response`);
        ``timeout`` bounds the wait for this request's response only
        and raises :class:`~repro.serve.protocol.ServeTimeout` without
        disturbing the other requests in flight — their correlation ids
        keep every other pairing intact, unlike the blocking client,
        which must burn its connection on timeout.
        """
        future = self.submit(command, **fields)
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            # The frame was handed to the transport before the failure:
            # its fate is unknown, so this is NOT RequestNotSent and
            # must not be auto-retried.
            raise ConnectionError(f"connection lost during send: {exc}") from exc
        try:
            if timeout is None:
                response = await future
            else:
                response = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError as exc:
            raise ServeTimeout(
                f"no response to {command!r} within {timeout}s"
            ) from exc
        return check_response(response)

    # -- reader task ---------------------------------------------------------

    async def _read_loop(self) -> None:
        """Resolve pending futures from response frames until EOF/error."""
        try:
            while True:
                response = await protocol.read_frame(self._reader, self.max_frame)
                if response is None:
                    self._fail(ConnectionError("server closed the connection"))
                    return
                self._resolve(response)
        except asyncio.CancelledError:
            self._fail(ConnectionError("connection closed"))
            raise
        except (FrameError, OSError) as exc:
            self._fail(ConnectionError(f"connection lost: {exc}"))

    def _resolve(self, response: dict) -> None:
        request_id = response.get("id")
        future = (
            self._pending.pop(request_id, None)
            if isinstance(request_id, int)
            else None
        )
        if future is not None and not future.done():
            future.set_result(response)
        # Unknown or already-done ids are dropped on the floor: the
        # late answer to a request that timed out, or (unknown) a
        # server bug we must not crash the reader over.

    def _fail(self, error: ConnectionError) -> None:
        """Mark the connection dead and fail everything in flight."""
        if self._closed is None:
            self._closed = error
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self._writer.close()

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Tear down: cancel the reader, fail pending, close the socket.

        ``_fail`` runs here too, not only in the reader's cancellation
        handler: a task cancelled before its first scheduling never
        executes that handler at all, and the transport would otherwise
        never be closed (``wait_closed`` would hang forever).
        """
        self._reader_task.cancel()
        await asyncio.gather(self._reader_task, return_exceptions=True)
        self._fail(ConnectionError("connection closed"))
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def peer(self) -> Optional[Tuple[str, int]]:
        """The remote ``(host, port)``, while the socket is open."""
        peername = self._writer.get_extra_info("peername")
        if peername is None:
            return None
        return str(peername[0]), int(peername[1])
