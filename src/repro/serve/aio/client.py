""":class:`AsyncServeClient`: the pooled, optionally ring-aware client.

The command surface mirrors the blocking
:class:`~repro.serve.client.ServeClient` coroutine-for-method, so
callers port by adding ``await``; under the hood every call borrows a
slot from a :class:`~repro.serve.aio.pool.ConnectionPool`, which means
thousands of logical requests can be in flight from one process over a
handful of sockets.

Ring-aware mode (``ring_aware=True``) additionally learns the cluster
shape from the ``topology`` command and sends monitor-scoped commands
straight to the owning shard, skipping the router's proxy hop. The
router stays the fallback: an unreachable shard (failover in progress)
or a detected ring drift (ownership math gone stale) sends the request
through the router, which always knows the current addresses, and the
cached topology is refetched before trusting direct routing again.
See ``docs/async-client.md`` for when the direct path is worth it.
"""

from __future__ import annotations

import asyncio
import time
from datetime import datetime
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .. import protocol
from ..protocol import (
    ERR_NO_SUCH_MONITOR,
    BatchRejectedError,
    OverloadedError,
    ServeTimeout,
)
from ..ring import HashRing
from .pool import ConnectionPool

__all__ = ["AsyncServeClient"]


class _Topology:
    """A cached ``topology`` response, decoded for local routing."""

    __slots__ = ("ring", "addresses", "digest", "generation", "router", "fetched")

    def __init__(self, response: dict, fetched: float) -> None:
        shards = {
            int(shard): (str(address[0]), int(address[1]))
            for shard, address in response.get("shards", {}).items()
        }
        self.addresses: Dict[int, Tuple[str, int]] = shards
        self.ring = HashRing(shards or [0], vnodes=int(response.get("vnodes", 1)))
        self.digest = str(response.get("ring_digest", ""))
        self.generation = int(response.get("generation", 0))
        self.router = bool(response.get("router", False))
        self.fetched = fetched


class AsyncServeClient:
    """Async client for one server or a cluster router.

    Use as an async context manager::

        async with AsyncServeClient(host, port) as client:
            await client.create("mon", networks)
            await asyncio.gather(*(client.ingest("mon", ...) for ...))
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7339,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        max_frame: int = protocol.MAX_FRAME,
        max_connections: int = 4,
        max_inflight: int = 64,
        ring_aware: bool = False,
        topology_ttl: float = 5.0,
        reconnect_backoff: float = 0.05,
        reconnect_attempts: int = 5,
    ) -> None:
        """Configure the client; connections are dialed on first use.

        ``timeout`` bounds each request's slot wait and response wait
        (:class:`~repro.serve.protocol.ServeTimeout` on expiry), as in
        the blocking client. ``max_connections × max_inflight`` is the
        hard cap on requests in flight; the excess waits FIFO.
        ``ring_aware`` turns on direct-to-shard routing against a
        router, refreshed every ``topology_ttl`` seconds.
        """
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.max_frame = max_frame
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.ring_aware = ring_aware
        self.topology_ttl = topology_ttl
        self._reconnect_backoff = reconnect_backoff
        self._reconnect_attempts = reconnect_attempts
        self._pool = self._make_pool(host, port)
        self._shard_pools: Dict[Tuple[str, int], ConnectionPool] = {}
        self._topology: Optional[_Topology] = None
        self._topology_lock = asyncio.Lock()

    def _make_pool(self, host: str, port: int) -> ConnectionPool:
        return ConnectionPool(
            host,
            port,
            max_connections=self.max_connections,
            max_inflight=self.max_inflight,
            connect_timeout=self.connect_timeout,
            max_frame=self.max_frame,
            reconnect_backoff=self._reconnect_backoff,
            reconnect_attempts=self._reconnect_attempts,
        )

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        await self._pool.close()
        for pool in self._shard_pools.values():
            await pool.close()
        self._shard_pools.clear()

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- request plumbing ----------------------------------------------------

    async def request(self, command: str, **fields: object) -> dict:
        """Send one command; same exception mapping as the blocking client."""
        monitor = fields.get("monitor")
        if (
            self.ring_aware
            and command in protocol.MONITOR_COMMANDS
            and isinstance(monitor, str)
        ):
            return await self._request_ring_aware(command, monitor, fields)
        return await self._pool.request(command, self.timeout, **fields)

    async def _request_ring_aware(
        self, command: str, monitor: str, fields: Mapping[str, object]
    ) -> dict:
        """Direct-to-owner dispatch with router fallback.

        Fallback triggers, in order of likelihood:

        * no usable topology (single server, or fetch failed) — the
          router path *is* the request path;
        * owning shard unreachable — failover in progress; the router
          answers ``shard_unavailable`` or routes to the successor, and
          the cached topology is dropped so the next request refetches;
        * ``no_such_monitor`` from the direct shard while the ring
          digest moved — the monitor was rebalanced off the shard our
          stale ring chose. Nothing was applied, so routing the same
          request through the router is safe.
        """
        topology = await self._current_topology()
        if topology is None or not topology.router:
            return await self._pool.request(command, self.timeout, **fields)
        shard = topology.ring.owner(monitor)
        address = topology.addresses.get(shard)
        if address is None:
            return await self._pool.request(command, self.timeout, **fields)
        pool = self._shard_pool(address)
        try:
            return await pool.request(command, self.timeout, **fields)
        except (ConnectionError, ServeTimeout):
            self._topology = None
            return await self._pool.request(command, self.timeout, **fields)
        except protocol.ServeClientError as exc:
            if exc.code == ERR_NO_SUCH_MONITOR:
                refreshed = await self._refresh_topology()
                if refreshed is not None and refreshed.digest != topology.digest:
                    return await self._pool.request(
                        command, self.timeout, **fields
                    )
            raise

    def _shard_pool(self, address: Tuple[str, int]) -> ConnectionPool:
        pool = self._shard_pools.get(address)
        if pool is None:
            pool = self._shard_pools[address] = self._make_pool(*address)
        return pool

    # -- topology cache ------------------------------------------------------

    async def _current_topology(self) -> Optional[_Topology]:
        cached = self._topology
        if cached is not None and (
            time.monotonic() - cached.fetched < self.topology_ttl
        ):
            return cached
        return await self._refresh_topology()

    async def _refresh_topology(self) -> Optional[_Topology]:
        """Fetch ``topology`` through the router; None when unavailable.

        The lock collapses a thundering herd of expired-TTL callers
        into one wire fetch; latecomers reuse the fresh cache.
        """
        async with self._topology_lock:
            cached = self._topology
            if cached is not None and (
                time.monotonic() - cached.fetched < self.topology_ttl
            ):
                return cached
            try:
                response = await self._pool.request("topology", self.timeout)
            except (ConnectionError, ServeTimeout, protocol.ServeClientError):
                # No topology is not an error: fall back to routed mode
                # until the tier answers again.
                self._topology = None
                return None
            self._topology = _Topology(response, time.monotonic())
            return self._topology

    # -- commands (mirror ServeClient) ---------------------------------------

    async def create(
        self,
        monitor: str,
        networks: Sequence[str],
        event_threshold: float = 0.1,
        mode_threshold: float = 0.7,
        policy: str = "pessimistic",
    ) -> dict:
        return await self.request(
            "create",
            monitor=monitor,
            networks=list(networks),
            event_threshold=event_threshold,
            mode_threshold=mode_threshold,
            policy=policy,
        )

    async def ingest(
        self, monitor: str, states: Mapping[str, str], when: datetime | str
    ) -> dict:
        time_text = when.isoformat() if isinstance(when, datetime) else when
        return await self.request(
            "ingest", monitor=monitor, states=dict(states), time=time_text
        )

    async def ingest_series(
        self, monitor: str, rounds: Iterable[Tuple[Mapping[str, str], datetime]]
    ) -> list[dict]:
        """Ingest rounds one request each, *serially* — a monitor's
        timestamps must arrive in order, so its rounds cannot be raced.
        Concurrency comes from many monitors, not one monitor's rounds.
        """
        results = []
        for states, when in rounds:
            results.append(await self.ingest(monitor, states, when))
        return results

    async def ingest_batch(
        self,
        monitor: str,
        rounds: Sequence[Tuple[Mapping[str, str], datetime | str]],
    ) -> dict:
        documents = []
        for states, when in rounds:
            time_text = when.isoformat() if isinstance(when, datetime) else when
            documents.append({"time": time_text, "states": dict(states)})
        return await self.request("ingest_batch", monitor=monitor, rounds=documents)

    async def ingest_many(
        self,
        monitor: str,
        rounds: Sequence[Tuple[Mapping[str, str], datetime | str]],
        batch_size: int = 128,
        retry_overload: bool = True,
        backoff_seconds: float = 0.05,
    ) -> list[dict]:
        """Batched streaming ingest with overload retry, as in the
        blocking client (see :meth:`ServeClient.ingest_many`); batches
        go serially because rounds are ordered.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        applied: list[dict] = []
        for start in range(0, len(rounds), batch_size):
            chunk = rounds[start : start + batch_size]
            while True:
                try:
                    response = await self.ingest_batch(monitor, chunk)
                except OverloadedError:
                    if not retry_overload:
                        raise
                    await asyncio.sleep(backoff_seconds)
                    continue
                break
            applied.extend(response["results"])
            failed = response.get("failed")
            if failed is not None:
                raise BatchRejectedError(
                    failed["error"],
                    failed["message"],
                    response,
                    index=start + failed["index"],
                    applied=applied,
                )
        return applied

    async def query(
        self, monitor: str, states: Optional[Mapping[str, str]] = None
    ) -> dict:
        if states is None:
            return await self.request("query", monitor=monitor)
        return await self.request("query", monitor=monitor, states=dict(states))

    async def timeline(self, monitor: str) -> dict:
        return await self.request("timeline", monitor=monitor)

    async def stats(self) -> dict:
        return await self.request("stats")

    async def metrics(self) -> str:
        response = await self.request("metrics")
        return str(response["text"])

    async def snapshot(self, monitor: str) -> dict:
        return await self.request("snapshot", monitor=monitor)

    async def vps(
        self,
        monitor: str,
        plan: Optional[Mapping[str, object]] = None,
        dedup: bool = True,
        **options: object,
    ) -> dict:
        if plan is None:
            return await self.request("vps", monitor=monitor)
        return await self.request(
            "vps", monitor=monitor, plan=dict(plan), dedup=dedup, **options
        )

    async def dedup(self, monitor: str, mode: Optional[str] = None) -> dict:
        if mode is None:
            return await self.request("dedup", monitor=monitor)
        return await self.request("dedup", monitor=monitor, mode=mode)

    async def classify(
        self,
        monitor: str,
        *,
        model: Optional[Mapping[str, object]] = None,
        stream: Optional[str] = None,
        features: Optional[Sequence[float]] = None,
        before: Optional[Mapping[str, str]] = None,
        after: Optional[Mapping[str, str]] = None,
        revert: Optional[Mapping[str, str]] = None,
    ) -> dict:
        """Async mirror of :meth:`ServeClient.classify` — one optional
        argument group per request shape (docs/classification.md)."""
        fields: dict = {}
        if model is not None:
            fields["model"] = dict(model)
        if stream is not None:
            fields["stream"] = stream
        if features is not None:
            fields["features"] = [float(value) for value in features]
        if before is not None:
            fields["before"] = dict(before)
        if after is not None:
            fields["after"] = dict(after)
        if revert is not None:
            fields["revert"] = dict(revert)
        return await self.request("classify", monitor=monitor, **fields)

    async def list_monitors(self) -> list[str]:
        response = await self.request("list")
        return list(response["monitors"])

    async def handoff(
        self, monitor: str, after_rounds: Optional[int] = None
    ) -> dict:
        if after_rounds is None:
            return await self.request("handoff", monitor=monitor)
        return await self.request(
            "handoff", monitor=monitor, after_rounds=after_rounds
        )

    async def install(
        self, monitor: str, seq: int, state: Mapping[str, object]
    ) -> dict:
        return await self.request(
            "install", monitor=monitor, seq=seq, state=dict(state)
        )

    async def retire(self, monitor: str) -> dict:
        return await self.request("retire", monitor=monitor)

    async def promote(self) -> dict:
        return await self.request("promote")

    async def topology(self) -> dict:
        return await self.request("topology")
