"""Operational counters and latency percentiles for the server.

Latencies are kept per command in a bounded ring (the most recent
samples), so ``stats`` reports recent behaviour rather than a lifetime
average that hides regressions, and memory stays constant under
sustained load.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Deque, Dict

__all__ = ["LatencyRecorder", "ServerMetrics"]

_DEFAULT_WINDOW = 4096


class LatencyRecorder:
    """Per-command ring buffer of recent latencies, in seconds."""

    def __init__(self, window: int = _DEFAULT_WINDOW) -> None:
        self.window = window
        self._samples: Dict[str, Deque[float]] = {}

    def observe(self, command: str, seconds: float) -> None:
        ring = self._samples.get(command)
        if ring is None:
            ring = self._samples[command] = deque(maxlen=self.window)
        ring.append(seconds)

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile: the smallest sample with at least
        ``fraction`` of the distribution at or below it.

        The rank is ``ceil(fraction · n)`` (1-based); the once-used
        ``int(fraction · n)`` 0-based index over-read by one position —
        p50 of ``[1, 2]`` came back 2.
        """
        if not ordered:
            return 0.0
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[min(len(ordered) - 1, index)]

    def summary(self) -> dict:
        """``{command: {count, p50_ms, p99_ms, max_ms}}`` for stats."""
        report = {}
        for command, ring in sorted(self._samples.items()):
            ordered = sorted(ring)
            report[command] = {
                "count": len(ordered),
                "p50_ms": round(self._percentile(ordered, 0.50) * 1000, 3),
                "p99_ms": round(self._percentile(ordered, 0.99) * 1000, 3),
                "max_ms": round(ordered[-1] * 1000, 3) if ordered else 0.0,
            }
        return report


class ServerMetrics:
    """Everything the ``stats`` command reports about the server."""

    def __init__(self, latency_window: int = _DEFAULT_WINDOW) -> None:
        self.counters: Counter[str] = Counter()
        self.latency = LatencyRecorder(latency_window)

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "latency": self.latency.summary(),
        }
