"""Server metrics, backed by the unified ``repro.obs`` registry.

Historically this module owned its own ``Counter`` and latency rings;
both now live in :mod:`repro.obs` and this is the serve-flavoured view
over one :class:`~repro.obs.MetricsRegistry`. The ``stats`` command's
wire format is unchanged — plain counters plus exact recent
percentiles from the bounded :class:`~repro.obs.LatencyRecorder`
windows — but every observation also lands in the registry (counters
as ``serve_<name>_total``, latencies as cumulative
``serve_command_latency_seconds{command=...}`` histograms), which is
what the ``metrics`` wire command and ``repro client metrics`` render
as Prometheus text.

Each :class:`FenrirServer` gets its own registry so servers sharing a
process (tests, embedded use) never mix their numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs import Counter, LatencyRecorder, MetricsRegistry

__all__ = ["LatencyRecorder", "ServerMetrics"]

_DEFAULT_WINDOW = 4096

#: Prometheus naming for the registry mirror of each stats counter.
_COUNTER_PREFIX = "serve_"
_COUNTER_SUFFIX = "_total"


class ServerMetrics:
    """Everything the ``stats`` command reports about the server.

    ``increment``/``counters``/``latency``/``snapshot`` keep their PR 2
    semantics; the registry passed in (or created here) is the single
    sink both the ``stats`` and ``metrics`` commands read from.
    """

    def __init__(
        self,
        latency_window: int = _DEFAULT_WINDOW,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency = LatencyRecorder(
            latency_window,
            registry=self.registry,
            histogram_name="serve_command_latency_seconds",
            label_name="command",
        )
        self._counters: Dict[str, Counter] = {}  # stats name -> registry counter
        self._internal_errors: Dict[str, Counter] = {}  # site -> labeled counter

    def increment(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = self.registry.counter(
                f"{_COUNTER_PREFIX}{name}{_COUNTER_SUFFIX}"
            )
        counter.inc(amount)

    def internal_error(self, site: str) -> None:
        """Count a broad-except recovery, labeled by handler site.

        Every ``except Exception`` in the server answers the client and
        keeps serving, which makes the failure easy to never notice.
        This is the visible trace: one ``serve_internal_errors_total``
        series per site (``recover``, ``writer``, ``ingest``,
        ``ingest_batch``, ``dispatch``), rendered by the ``metrics``
        wire command and ``repro client metrics``.
        """
        counter = self._internal_errors.get(site)
        if counter is None:
            counter = self._internal_errors[site] = self.registry.counter(
                "serve_internal_errors_total",
                labels={"site": site},
                help="exceptions caught and answered by broad handlers",
            )
        counter.inc()

    @property
    def counters(self) -> dict:
        """Stats-shaped ``{name: count}`` view of the registry counters."""
        return {
            name: int(counter.value)
            for name, counter in sorted(self._counters.items())
        }

    def snapshot(self) -> dict:
        return {
            "counters": self.counters,
            "latency": self.latency.summary(),
        }
