"""The cluster front-end: one address, N shards behind it.

:class:`ShardRouter` speaks the exact wire protocol of a single
``repro serve`` process, so existing clients need no changes. Each
request is routed by the consistent-hash ring: monitor-scoped commands
go verbatim to the owning shard, ``list``/``stats`` fan out to every
shard and come back merged, and ``metrics`` answers from the router's
own registry (pass ``"shard": <id>`` to proxy a specific shard's
exposition instead).

Proxy hot path: the router never re-serializes a routed request or its
response. The payload bytes are read once, the command and monitor
name are extracted with an anchored regex over the canonical key order
our clients emit (full JSON parse as fallback), and the same bytes are
relayed upstream; the response bytes come back the same way. Routing a
round therefore costs two frame copies, not two JSON round trips.

Liveness is the supervisor's job, not the router's: when a shard's
connection fails the router answers ``shard_unavailable`` (a retryable
error — the supervisor is already restarting or failing over the
shard) and drops its cached connection so the next request dials the
current address.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..obs import CONTENT_TYPE, MetricsRegistry, render_prometheus
from . import protocol
from .protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_FRAME_TOO_LARGE,
    ERR_OVERLOADED,
    ERR_SHARD_DOWN,
    FrameError,
    FrameTooLarge,
    error_response,
)
from .ring import HashRing

__all__ = ["ClusterState", "ShardRouter"]


@dataclass
class ClusterState:
    """What the router needs to know about the shards, live-updated.

    The supervisor mutates ``addresses`` (and bumps ``generation``) on
    restart and failover; the router reads it per request. One object
    is shared — there is no copy to go stale.
    """

    ring: HashRing
    addresses: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    generation: int = 0

    def set_address(self, shard: int, address: Optional[Tuple[str, int]]) -> None:
        if address is None:
            self.addresses.pop(shard, None)
        else:
            self.addresses[shard] = address
        self.generation += 1

    def owner(self, monitor: str) -> int:
        return self.ring.owner(monitor)


#: Canonical request prefix: ``{"cmd":"<x>","id":<n>`` with an optional
#: ``,"monitor":"<name>"`` right after — exactly what ServeClient (and
#: any json.dumps of ``{"cmd", "id", "monitor", ...}``) emits. Anchored
#: at byte 0, so a match can only be the real top-level keys.
_FAST_REQUEST = re.compile(
    rb'^\{"cmd":"([a-z_]+)","id":(\d+)(?:,"monitor":"([A-Za-z0-9._-]+)")?'
)

#: Per-shard upstream connection as cached by one client connection.
_Upstream = Tuple[int, asyncio.StreamReader, asyncio.StreamWriter]


class _Upstreams:
    """One client connection's cache of shard connections.

    Pipelined requests serialize per shard (each upstream connection is
    strictly request/response, so a round trip must finish before the
    next begins) but run concurrently across shards — that is where the
    pipelined router's parallelism comes from. The shard lock also
    covers dialing, so two racing requests never double-dial one shard.
    """

    __slots__ = ("connections", "_locks")

    def __init__(self) -> None:
        self.connections: Dict[int, _Upstream] = {}
        self._locks: Dict[int, asyncio.Lock] = {}

    def lock(self, shard: int) -> asyncio.Lock:
        lock = self._locks.get(shard)
        if lock is None:
            lock = self._locks[shard] = asyncio.Lock()
        return lock

    def drop(self, shard: int) -> None:
        cached = self.connections.pop(shard, None)
        if cached is not None:
            cached[2].close()

    def drop_all(self) -> None:
        for shard in list(self.connections):
            self.drop(shard)


class ShardRouter:
    """Protocol-transparent front-end multiplexing N shard servers."""

    def __init__(
        self,
        state: ClusterState,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = protocol.MAX_FRAME,
        max_inflight: int = 512,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.state = state
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.max_inflight = max_inflight
        self.registry = registry if registry is not None else MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.time()
        self.registry.gauge(
            "cluster_uptime_seconds", help="Seconds since this router constructed"
        ).set_function(lambda: time.time() - self._started)
        self._requests_total = self.registry.counter(
            "cluster_requests_total", help="Requests handled by the router"
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- upstream connections ------------------------------------------------

    async def _upstream(self, upstreams: _Upstreams, shard: int) -> _Upstream:
        """The cached connection to ``shard``, re-dialed when stale.

        A connection is stale when the cluster generation moved (the
        supervisor restarted or failed over some shard — cheap to
        re-dial, and correctness demands it when the address changed).
        Callers hold the shard's lock, so there is never a racing dial.
        """
        cached = upstreams.connections.pop(shard, None)
        if cached is not None:
            if cached[0] == self.state.generation:
                upstreams.connections[shard] = cached
                return cached
            cached[2].close()
        address = self.state.addresses.get(shard)
        if address is None:
            raise ConnectionError(f"shard {shard} has no live address")
        reader, writer = await asyncio.open_connection(address[0], address[1])
        fresh: _Upstream = (self.state.generation, reader, writer)
        upstreams.connections[shard] = fresh
        return fresh

    async def _forward(
        self, upstreams: _Upstreams, shard: int, payload: bytes
    ) -> bytes:
        """Relay ``payload`` to ``shard`` and return the response bytes."""
        async with upstreams.lock(shard):
            _generation, reader, writer = await self._upstream(upstreams, shard)
            await protocol.write_frame_bytes(writer, payload)
            response = await protocol.read_frame_bytes(reader, self.max_frame)
        if response is None:
            raise ConnectionError(f"shard {shard} closed mid request")
        return response

    async def _request_shard(
        self, upstreams: _Upstreams, shard: int, message: dict
    ) -> dict:
        """A parsed request/response round trip (the fan-out path)."""
        payload = protocol.encode_frame(message, self.max_frame)[4:]
        return protocol.decode_payload(
            await self._forward(upstreams, shard, payload)
        )

    def _count_shard_error(self, shard: int) -> None:
        self.registry.counter(
            "cluster_shard_errors_total",
            labels={"shard": str(shard)},
            help="Upstream shard failures observed by the router",
        ).inc()

    def _drop_upstream(self, upstreams: _Upstreams, shard: int) -> None:
        upstreams.drop(shard)

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Pipelined per-connection loop, mirroring the server's contract.

        Each frame is routed as its own task and its response written in
        completion order — requests for *different* shards overlap even
        though each shard's upstream round trips stay serialized (see
        :class:`_Upstreams`). A one-at-a-time client sees unchanged
        behaviour; past ``max_inflight`` pending requests further frames
        get the same explicit ``overloaded`` answer the single server
        gives.
        """
        self.registry.counter(
            "cluster_connections_total", help="Client connections accepted"
        ).inc()
        upstreams = _Upstreams()
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()

        async def reply_bytes(response: bytes) -> None:
            async with write_lock:
                await protocol.write_frame_bytes(writer, response)

        async def reply(response: dict) -> None:
            await reply_bytes(self._encode(response))

        async def route_and_reply(payload: bytes) -> None:
            try:
                await reply_bytes(await self._route(upstreams, payload))
            except (ConnectionError, OSError):
                pass  # client vanished mid-response; reader loop will notice

        try:
            while True:
                try:
                    payload = await protocol.read_frame_bytes(
                        reader, self.max_frame
                    )
                except FrameTooLarge as exc:
                    await reply(error_response(ERR_FRAME_TOO_LARGE, str(exc)))
                    break
                except FrameError as exc:
                    try:
                        await reply(error_response(ERR_BAD_FRAME, str(exc)))
                    except (ConnectionError, OSError):
                        pass
                    break
                if payload is None:
                    break
                if len(inflight) >= self.max_inflight:
                    match = _FAST_REQUEST.match(payload)
                    request_id = int(match.group(2)) if match else None
                    await reply(
                        error_response(
                            ERR_OVERLOADED,
                            f"connection has {len(inflight)} requests in "
                            f"flight (cap {self.max_inflight})",
                            request_id,
                            in_flight=len(inflight),
                        )
                    )
                    continue
                task = loop.create_task(route_and_reply(payload))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except (ConnectionError, OSError):
            pass  # client vanished; nothing to answer
        finally:
            for task in list(inflight):
                task.cancel()
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            upstreams.drop_all()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _route(self, upstreams: _Upstreams, payload: bytes) -> bytes:
        """One request in, one response out — both as raw payload bytes."""
        command: Optional[str] = None
        monitor: Optional[str] = None
        request_id: object = None
        request: Optional[dict] = None
        match = _FAST_REQUEST.match(payload)
        if match is not None:
            command = match.group(1).decode("ascii")
            request_id = int(match.group(2))
            if match.group(3) is not None:
                monitor = match.group(3).decode("ascii")
        if command is None or (
            monitor is None and command in protocol.MONITOR_COMMANDS
        ):
            # Non-canonical key order (hand-rolled client) or a command
            # that needs fields the fast path does not extract.
            try:
                request = protocol.decode_payload(payload)
            except FrameError as exc:
                return self._encode(error_response(ERR_BAD_FRAME, str(exc)))
            command = str(request.get("cmd"))
            request_id = request.get("id")
            raw_monitor = request.get("monitor")
            monitor = raw_monitor if isinstance(raw_monitor, str) else None
        self._requests_total.inc()
        if command in protocol.MONITOR_COMMANDS:
            if monitor is None:
                return self._encode(
                    error_response(
                        ERR_BAD_REQUEST, "request needs a 'monitor' name", request_id
                    )
                )
            return await self._route_to_owner(upstreams, monitor, payload, request_id)
        # The remaining commands need parsed fields (id, shard).
        if request is None:
            try:
                request = protocol.decode_payload(payload)
            except FrameError as exc:
                return self._encode(error_response(ERR_BAD_FRAME, str(exc)))
            request_id = request.get("id")
        if command == "list":
            return self._encode(await self._fan_out_list(upstreams, request_id))
        if command == "stats":
            return self._encode(await self._fan_out_stats(upstreams, request_id))
        if command == "metrics":
            return await self._metrics(upstreams, request, request_id)
        if command == "topology":
            return self._encode(self._topology(request_id))
        if command == "promote":
            # Promotion addresses one concrete server, never the tier.
            return self._encode(
                error_response(
                    ERR_BAD_REQUEST,
                    "promote must be sent to a shard directly, not the router",
                    request_id,
                )
            )
        return self._encode(
            error_response(ERR_BAD_REQUEST, f"unknown command: {command!r}", request_id)
        )

    def _encode(self, message: dict) -> bytes:
        return protocol.encode_frame(message, self.max_frame)[4:]

    def _topology(self, request_id: object) -> dict:
        """The cluster's live shape, for ring-aware clients.

        Carries everything needed to route monitor commands locally:
        each shard's dialable address, the ring parameters, and a
        ``ring_digest``/``generation`` pair for cheap drift detection
        (a client whose cached digest stops matching refetches before
        trusting its ownership math).
        """
        return {
            "id": request_id,
            "ok": True,
            "shards": {
                str(shard): list(address)
                for shard, address in sorted(self.state.addresses.items())
            },
            "vnodes": self.state.ring.vnodes,
            "ring_digest": self.state.ring.digest(),
            "generation": self.state.generation,
            "router": True,
        }

    async def _route_to_owner(
        self,
        upstreams: _Upstreams,
        monitor: str,
        payload: bytes,
        request_id: object,
    ) -> bytes:
        shard = self.state.owner(monitor)
        try:
            return await self._forward(upstreams, shard, payload)
        except (ConnectionError, OSError, asyncio.IncompleteReadError, FrameError):
            self._drop_upstream(upstreams, shard)
            self._count_shard_error(shard)
            return self._encode(
                error_response(
                    ERR_SHARD_DOWN,
                    f"shard {shard} (owner of {monitor!r}) is unavailable; "
                    "retry after failover",
                    request_id,
                    shard=shard,
                )
            )

    async def _fan_out_list(
        self, upstreams: _Upstreams, request_id: object
    ) -> dict:
        """Union of every live shard's monitors, sorted."""
        monitors: set[str] = set()
        down: list[int] = []
        for shard in self.state.ring.shards:
            try:
                response = await self._request_shard(
                    upstreams, shard, {"cmd": "list", "id": request_id}
                )
                monitors.update(response.get("monitors", ()))
            except (ConnectionError, OSError, FrameError):
                self._drop_upstream(upstreams, shard)
                self._count_shard_error(shard)
                down.append(shard)
        document: dict = {"id": request_id, "ok": True, "monitors": sorted(monitors)}
        if down:
            document["shards_down"] = down
        return document

    async def _fan_out_stats(
        self, upstreams: _Upstreams, request_id: object
    ) -> dict:
        """Every shard's stats, merged: summed counters, tagged monitors."""
        counters: Dict[str, float] = {}
        monitors: dict = {}
        failed: dict = {}
        per_shard: dict = {}
        for shard in self.state.ring.shards:
            try:
                response = await self._request_shard(
                    upstreams, shard, {"cmd": "stats", "id": request_id}
                )
            except (ConnectionError, OSError, FrameError):
                self._drop_upstream(upstreams, shard)
                self._count_shard_error(shard)
                per_shard[str(shard)] = {"up": False}
                continue
            for name, value in response.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, document in response.get("monitors", {}).items():
                monitors[name] = {**document, "shard": shard}
            for name, message in response.get("failed_monitors", {}).items():
                failed[name] = message
            per_shard[str(shard)] = {
                "up": True,
                "uptime_seconds": response.get("uptime_seconds"),
                "monitors": len(response.get("monitors", {})),
            }
        return {
            "id": request_id,
            "ok": True,
            "cluster": {
                "shards": len(self.state.ring.shards),
                "router_uptime_seconds": round(time.time() - self._started, 3),
                "shard_status": per_shard,
            },
            "counters": counters,
            "monitors": dict(sorted(monitors.items())),
            "failed_monitors": dict(sorted(failed.items())),
        }

    async def _metrics(
        self, upstreams: _Upstreams, request: dict, request_id: object
    ) -> bytes:
        """Router registry by default; one shard's exposition on demand."""
        shard = request.get("shard")
        if shard is None:
            return self._encode(
                {
                    "id": request_id,
                    "ok": True,
                    "content_type": CONTENT_TYPE,
                    "text": render_prometheus(self.registry),
                }
            )
        if not isinstance(shard, int) or shard not in self.state.ring.shards:
            return self._encode(
                error_response(ERR_BAD_REQUEST, f"unknown shard: {shard!r}", request_id)
            )
        try:
            response = await self._request_shard(
                upstreams, shard, {"cmd": "metrics", "id": request_id}
            )
        except (ConnectionError, OSError, FrameError):
            self._drop_upstream(upstreams, shard)
            self._count_shard_error(shard)
            return self._encode(
                error_response(
                    ERR_SHARD_DOWN, f"shard {shard} is unavailable", request_id
                )
            )
        return self._encode(response)
