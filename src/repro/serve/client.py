"""Blocking client for the ``repro serve`` wire protocol.

A thin convenience layer over one TCP connection: requests are
numbered, sent as length-prefixed JSON frames, and answered in order.
Blocking sockets keep the client trivially usable from the CLI, tests,
and thread-per-client load generators; the server side is where the
concurrency lives.
"""

from __future__ import annotations

import socket
from datetime import datetime
from typing import Iterable, Mapping, Optional, Sequence

from . import protocol

__all__ = ["ServeClientError", "OverloadedError", "ServeClient"]


class ServeClientError(RuntimeError):
    """An error response from the server."""

    def __init__(self, code: str, message: str, response: dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


class OverloadedError(ServeClientError):
    """The monitor's ingest queue is full; back off and retry."""


class ServeClient:
    """One connection to a Fenrir server; use as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7339,
        timeout: Optional[float] = 30.0,
        max_frame: int = protocol.MAX_FRAME,
    ) -> None:
        self.max_frame = max_frame
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------

    def request(self, command: str, **fields) -> dict:
        """Send one command and return its ``ok`` response.

        Error responses raise :class:`ServeClientError`
        (:class:`OverloadedError` for explicit backpressure, so callers
        can distinguish "retry later" from "you sent garbage").
        """
        self._next_id += 1
        message = {"cmd": command, "id": self._next_id, **fields}
        protocol.send_frame(self._sock, message, self.max_frame)
        response = protocol.recv_frame(self._sock, self.max_frame)
        if not response.get("ok"):
            code = response.get("error", "unknown")
            text = response.get("message", "")
            if code == protocol.ERR_OVERLOADED:
                raise OverloadedError(code, text, response)
            raise ServeClientError(code, text, response)
        return response

    # -- commands ------------------------------------------------------------

    def create(
        self,
        monitor: str,
        networks: Sequence[str],
        event_threshold: float = 0.1,
        mode_threshold: float = 0.7,
        policy: str = "pessimistic",
    ) -> dict:
        return self.request(
            "create",
            monitor=monitor,
            networks=list(networks),
            event_threshold=event_threshold,
            mode_threshold=mode_threshold,
            policy=policy,
        )

    def ingest(
        self, monitor: str, states: Mapping[str, str], when: datetime | str
    ) -> dict:
        time_text = when.isoformat() if isinstance(when, datetime) else when
        return self.request(
            "ingest", monitor=monitor, states=dict(states), time=time_text
        )

    def ingest_series(
        self, monitor: str, rounds: Iterable[tuple[Mapping[str, str], datetime]]
    ) -> list[dict]:
        """Ingest many rounds; returns the per-round responses."""
        return [self.ingest(monitor, states, when) for states, when in rounds]

    def query(
        self, monitor: str, states: Optional[Mapping[str, str]] = None
    ) -> dict:
        if states is None:
            return self.request("query", monitor=monitor)
        return self.request("query", monitor=monitor, states=dict(states))

    def timeline(self, monitor: str) -> dict:
        return self.request("timeline", monitor=monitor)

    def stats(self) -> dict:
        return self.request("stats")

    def snapshot(self, monitor: str) -> dict:
        return self.request("snapshot", monitor=monitor)

    def list_monitors(self) -> list[str]:
        return list(self.request("list")["monitors"])
