"""Blocking client for the ``repro serve`` wire protocol.

A thin convenience layer over one TCP connection: requests are
numbered, sent as length-prefixed JSON frames, and answered in order.
Blocking sockets keep the client trivially usable from the CLI, tests,
and thread-per-client load generators; the server side is where the
concurrency lives.
"""

from __future__ import annotations

import socket
import time as _time
from datetime import datetime
from typing import Iterable, Mapping, Optional, Sequence

from . import protocol
from .protocol import (
    BatchRejectedError,
    OverloadedError,
    RequestIds,
    ServeClientError,
    ServeTimeout,
    check_response,
)

__all__ = [
    "ServeClientError",
    "ServeTimeout",
    "OverloadedError",
    "BatchRejectedError",
    "ServeClient",
]


class ServeClient:
    """One connection to a Fenrir server; use as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7339,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = None,
        max_frame: int = protocol.MAX_FRAME,
    ) -> None:
        """Connect to ``host:port``.

        ``timeout`` bounds every subsequent socket read/write (None =
        block forever — only sensible in debugging); ``connect_timeout``
        bounds the initial connect and defaults to ``timeout``. Both
        raise :class:`ServeTimeout` on expiry.
        """
        self.max_frame = max_frame
        self.timeout = timeout
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self._ids = RequestIds()
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except socket.timeout as exc:
            raise ServeTimeout(
                f"connecting to {self.host}:{self.port} exceeded "
                f"{self.connect_timeout}s"
            ) from exc
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------

    def request(self, command: str, **fields: object) -> dict:
        """Send one command and return its ``ok`` response.

        Error responses raise :class:`ServeClientError`
        (:class:`OverloadedError` for explicit backpressure, so callers
        can distinguish "retry later" from "you sent garbage").

        A connection that died *between* requests — a pooled client
        reused after the server restarted, a NAT timeout — fails at
        send time with ``ECONNRESET``/``EPIPE``. The server cannot have
        seen any of the request, so one transparent reconnect-and-resend
        is always safe; a failure after the send phase is not retried
        (the request may have been applied).
        """
        message = {"cmd": command, "id": self._ids.next(), **fields}
        try:
            protocol.send_frame(self._sock, message, self.max_frame)
        except (ConnectionResetError, BrokenPipeError):
            # Stale socket: reconnect once and resend. The frame never
            # reached the server (sendall raised), so this cannot
            # double-apply.
            self._sock.close()
            self._sock = self._connect()
            protocol.send_frame(self._sock, message, self.max_frame)
        try:
            response = protocol.recv_frame(self._sock, self.max_frame)
        except socket.timeout as exc:
            # The stream position is now unknowable (a late response
            # would be mistaken for the next request's answer); close so
            # any further use fails fast instead of desynchronizing.
            self._sock.close()
            raise ServeTimeout(
                f"no response to {command!r} within {self.timeout}s"
            ) from exc
        return check_response(response)

    # -- commands ------------------------------------------------------------

    def create(
        self,
        monitor: str,
        networks: Sequence[str],
        event_threshold: float = 0.1,
        mode_threshold: float = 0.7,
        policy: str = "pessimistic",
    ) -> dict:
        return self.request(
            "create",
            monitor=monitor,
            networks=list(networks),
            event_threshold=event_threshold,
            mode_threshold=mode_threshold,
            policy=policy,
        )

    def ingest(
        self, monitor: str, states: Mapping[str, str], when: datetime | str
    ) -> dict:
        time_text = when.isoformat() if isinstance(when, datetime) else when
        return self.request(
            "ingest", monitor=monitor, states=dict(states), time=time_text
        )

    def ingest_series(
        self, monitor: str, rounds: Iterable[tuple[Mapping[str, str], datetime]]
    ) -> list[dict]:
        """Ingest many rounds one request each; per-round responses."""
        return [self.ingest(monitor, states, when) for states, when in rounds]

    def ingest_batch(
        self, monitor: str, rounds: Sequence[tuple[Mapping[str, str], datetime | str]]
    ) -> dict:
        """One ``ingest_batch`` request; returns the raw response.

        The response is ``ok: true`` even on partial failure — check
        ``failed`` (None when every round was applied). Most callers
        want :meth:`ingest_many`, which chunks, retries overload, and
        raises on rejected records.
        """
        documents = []
        for states, when in rounds:
            time_text = when.isoformat() if isinstance(when, datetime) else when
            documents.append({"time": time_text, "states": dict(states)})
        return self.request("ingest_batch", monitor=monitor, rounds=documents)

    def ingest_many(
        self,
        monitor: str,
        rounds: Sequence[tuple[Mapping[str, str], datetime | str]],
        batch_size: int = 128,
        retry_overload: bool = True,
        backoff_seconds: float = 0.05,
    ) -> list[dict]:
        """Stream ``rounds`` in batches; returns one update doc per round.

        Overload responses are retried after a short backoff (safe: an
        overloaded batch was rejected before anything was enqueued, so
        the retry cannot double-apply). A rejected record raises
        :class:`BatchRejectedError` carrying the absolute index of the
        bad round and every update applied before it.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        applied: list[dict] = []
        for start in range(0, len(rounds), batch_size):
            chunk = rounds[start : start + batch_size]
            while True:
                try:
                    response = self.ingest_batch(monitor, chunk)
                except OverloadedError:
                    if not retry_overload:
                        raise
                    _time.sleep(backoff_seconds)
                    continue
                break
            applied.extend(response["results"])
            failed = response.get("failed")
            if failed is not None:
                raise BatchRejectedError(
                    failed["error"],
                    failed["message"],
                    response,
                    index=start + failed["index"],
                    applied=applied,
                )
        return applied

    def query(
        self, monitor: str, states: Optional[Mapping[str, str]] = None
    ) -> dict:
        if states is None:
            return self.request("query", monitor=monitor)
        return self.request("query", monitor=monitor, states=dict(states))

    def timeline(self, monitor: str) -> dict:
        return self.request("timeline", monitor=monitor)

    def stats(self) -> dict:
        return self.request("stats")

    def metrics(self) -> str:
        """The server's metrics as Prometheus text exposition."""
        return self.request("metrics")["text"]

    def snapshot(self, monitor: str) -> dict:
        return self.request("snapshot", monitor=monitor)

    def vps(
        self,
        monitor: str,
        plan: Optional[Mapping] = None,
        dedup: bool = True,
        **options: object,
    ) -> dict:
        """Create a monitor from a VP plan, or query its stored plan.

        With ``plan`` (a ``VPPlan.to_document()`` mapping) the server
        creates a monitor over the plan's kept VPs with the plan's
        weight rescaling; ``dedup`` controls the new monitor's ingest
        dedup mode (on by default). Without ``plan`` the call reports
        the stored plan summary and live dedup stats. Extra keyword
        options (``event_threshold``, ``mode_threshold``, ``policy``)
        pass through to creation.
        """
        if plan is None:
            return self.request("vps", monitor=monitor)
        return self.request(
            "vps", monitor=monitor, plan=dict(plan), dedup=dedup, **options
        )

    def dedup(self, monitor: str, mode: Optional[str] = None) -> dict:
        """Report a monitor's dedup stats; ``mode='on'|'off'`` toggles."""
        if mode is None:
            return self.request("dedup", monitor=monitor)
        return self.request("dedup", monitor=monitor, mode=mode)

    def classify(
        self,
        monitor: str,
        *,
        model: Optional[Mapping] = None,
        stream: Optional[str] = None,
        features: Optional[Sequence[float]] = None,
        before: Optional[Mapping[str, str]] = None,
        after: Optional[Mapping[str, str]] = None,
        revert: Optional[Mapping[str, str]] = None,
    ) -> dict:
        """Classify a transition, manage the model, or report state.

        One optional argument group per request shape
        (docs/classification.md): ``model`` installs a
        ``ClassifierModel.to_document()`` mapping; ``stream`` toggles
        labeling at ingest time (``'on'``/``'off'``); ``features`` or
        ``before``/``after`` (plus optional ``revert``) classify one
        transition; no arguments reports the installed model summary,
        streaming flag, and recent streamed labels.
        """
        fields: dict = {}
        if model is not None:
            fields["model"] = dict(model)
        if stream is not None:
            fields["stream"] = stream
        if features is not None:
            fields["features"] = [float(value) for value in features]
        if before is not None:
            fields["before"] = dict(before)
        if after is not None:
            fields["after"] = dict(after)
        if revert is not None:
            fields["revert"] = dict(revert)
        return self.request("classify", monitor=monitor, **fields)

    def list_monitors(self) -> list[str]:
        return list(self.request("list")["monitors"])

    # -- cluster commands (state shipping and failover) ----------------------

    def handoff(self, monitor: str, after_rounds: Optional[int] = None) -> dict:
        """Export a monitor's state document for shipping elsewhere.

        Without ``after_rounds`` the response carries the full state
        (``kind: "full"``); with it, a delta covering only newer rounds
        (``kind: "delta"``, or ``"unchanged"`` when already current).
        """
        if after_rounds is None:
            return self.request("handoff", monitor=monitor)
        return self.request("handoff", monitor=monitor, after_rounds=after_rounds)

    def install(self, monitor: str, seq: int, state: Mapping) -> dict:
        """Install a state document shipped from a ``handoff``."""
        return self.request("install", monitor=monitor, seq=seq, state=dict(state))

    def retire(self, monitor: str) -> dict:
        """Drop a monitor after its state moved to another shard."""
        return self.request("retire", monitor=monitor)

    def promote(self) -> dict:
        """Tell a replication follower to stop following and serve."""
        return self.request("promote")

    def topology(self) -> dict:
        """The serving tier's shape: ring members, digest, addresses.

        Against a cluster router the response carries every shard's
        id and dialable address plus the ring parameters (``vnodes``,
        ``ring_digest``) a ring-aware client needs to compute ownership
        locally; against a single server it reports the one-shard
        degenerate topology. ``generation`` bumps on every failover or
        restart, so clients can detect drift cheaply.
        """
        return self.request("topology")
