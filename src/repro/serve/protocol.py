"""Length-prefixed JSON wire protocol for ``repro serve``.

Every message — request or response — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Length prefixes (rather than newline delimiting) keep framing robust
to payloads containing arbitrary text and make oversized-frame
rejection possible before a byte of JSON is parsed.

Requests carry ``{"cmd": ..., "id": ...}`` plus command arguments;
responses echo the ``id`` and carry ``{"ok": true, ...}`` or
``{"ok": false, "error": <code>, "message": ...}``. Error codes are
the ``ERR_*`` constants below; ``ERR_OVERLOADED`` is the explicit
backpressure signal (the monitor's bounded ingest queue is full — back
off and retry rather than buffering server-side without limit).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

__all__ = [
    "MAX_FRAME",
    "COMMANDS",
    "MONITOR_COMMANDS",
    "FrameError",
    "FrameTooLarge",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "read_frame_bytes",
    "write_frame",
    "write_frame_bytes",
    "send_frame",
    "recv_frame",
    "error_response",
    "ERR_BAD_FRAME",
    "ERR_BAD_REQUEST",
    "ERR_FRAME_TOO_LARGE",
    "ERR_NO_SUCH_MONITOR",
    "ERR_MONITOR_EXISTS",
    "ERR_OVERLOADED",
    "ERR_OUT_OF_ORDER",
    "ERR_INTERNAL",
    "ERR_SHARD_DOWN",
]

_LENGTH = struct.Struct(">I")

#: Default cap on a single frame's payload (4 MiB). Large enough for an
#: ingest round over hundreds of thousands of networks, small enough
#: that a garbage length prefix cannot make the server buffer gigabytes.
MAX_FRAME = 4 * 1024 * 1024

COMMANDS = (
    "create",
    "ingest",
    "ingest_batch",
    "query",
    "timeline",
    "stats",
    "metrics",
    "snapshot",
    "list",
    # VP-plan monitors and ingest dedup (docs/vps.md).
    "vps",
    "dedup",
    # Cluster support: state shipping and failover (docs/cluster.md).
    "handoff",
    "install",
    "retire",
    "promote",
)

#: Commands addressed to one monitor — the router routes these to the
#: ring owner's shard; everything else is answered by the router itself
#: or fanned out to every shard.
MONITOR_COMMANDS = frozenset(
    {
        "create",
        "ingest",
        "ingest_batch",
        "query",
        "timeline",
        "snapshot",
        "vps",
        "dedup",
        "handoff",
        "install",
        "retire",
    }
)

ERR_BAD_FRAME = "bad_frame"
ERR_BAD_REQUEST = "bad_request"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_NO_SUCH_MONITOR = "no_such_monitor"
ERR_MONITOR_EXISTS = "monitor_exists"
ERR_OVERLOADED = "overloaded"
ERR_OUT_OF_ORDER = "out_of_order"
ERR_INTERNAL = "internal"
#: Router-originated: the shard owning the addressed monitor is down or
#: unreachable. Retryable — the supervisor restarts or fails over the
#: shard; clients should back off and resend.
ERR_SHARD_DOWN = "shard_unavailable"


class FrameError(ValueError):
    """Malformed frame: bad length prefix, bad UTF-8, or bad JSON."""


class FrameTooLarge(FrameError):
    """Frame payload exceeds the configured maximum."""


def encode_frame(message: dict, max_frame: int = MAX_FRAME) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(f"frame of {len(payload)} bytes exceeds {max_frame}")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


def error_response(
    code: str, message: str, request_id: object = None, **extra: object
) -> dict:
    response = {"id": request_id, "ok": False, "error": code, "message": message}
    response.update(extra)
    return response


# -- asyncio (server side) ----------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Optional[dict]:
    """Read one frame; None on clean EOF before a length prefix."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc
    return decode_payload(payload)


async def read_frame_bytes(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Optional[bytes]:
    """Read one frame's raw payload bytes; None on clean EOF.

    The router's proxy path: a frame can be relayed to a shard (or
    back to the client) verbatim — length prefix recomputed, payload
    untouched — without a decode/re-encode round trip.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc


async def write_frame(
    writer: asyncio.StreamWriter, message: dict, max_frame: int = MAX_FRAME
) -> None:
    writer.write(encode_frame(message, max_frame))
    await writer.drain()


async def write_frame_bytes(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Relay an already-validated payload as one frame."""
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()


# -- blocking sockets (client side) ------------------------------------------


def send_frame(sock: socket.socket, message: dict, max_frame: int = MAX_FRAME) -> None:
    sock.sendall(encode_frame(message, max_frame))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise FrameError("connection closed mid frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME) -> dict:
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    return decode_payload(_recv_exactly(sock, length))
