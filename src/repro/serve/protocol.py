"""Length-prefixed JSON wire protocol for ``repro serve``.

Every message — request or response — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Length prefixes (rather than newline delimiting) keep framing robust
to payloads containing arbitrary text and make oversized-frame
rejection possible before a byte of JSON is parsed.

Requests carry ``{"cmd": ..., "id": ...}`` plus command arguments;
responses echo the ``id`` and carry ``{"ok": true, ...}`` or
``{"ok": false, "error": <code>, "message": ...}``. Error codes are
the ``ERR_*`` constants below; ``ERR_OVERLOADED`` is the explicit
backpressure signal (the monitor's bounded ingest queue is full — back
off and retry rather than buffering server-side without limit).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

__all__ = [
    "MAX_FRAME",
    "COMMANDS",
    "MONITOR_COMMANDS",
    "FrameError",
    "FrameTooLarge",
    "ServeClientError",
    "ServeTimeout",
    "OverloadedError",
    "BatchRejectedError",
    "RequestIds",
    "check_response",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "read_frame_bytes",
    "write_frame",
    "write_frame_bytes",
    "send_frame",
    "recv_frame",
    "error_response",
    "ERR_BAD_FRAME",
    "ERR_BAD_REQUEST",
    "ERR_FRAME_TOO_LARGE",
    "ERR_NO_SUCH_MONITOR",
    "ERR_MONITOR_EXISTS",
    "ERR_OVERLOADED",
    "ERR_OUT_OF_ORDER",
    "ERR_INTERNAL",
    "ERR_SHARD_DOWN",
]

_LENGTH = struct.Struct(">I")

#: Default cap on a single frame's payload (4 MiB). Large enough for an
#: ingest round over hundreds of thousands of networks, small enough
#: that a garbage length prefix cannot make the server buffer gigabytes.
MAX_FRAME = 4 * 1024 * 1024

COMMANDS = (
    "create",
    "ingest",
    "ingest_batch",
    "query",
    "timeline",
    "stats",
    "metrics",
    "snapshot",
    "list",
    # VP-plan monitors and ingest dedup (docs/vps.md).
    "vps",
    "dedup",
    # Route-change cause classification (docs/classification.md).
    "classify",
    # Cluster support: state shipping and failover (docs/cluster.md).
    "handoff",
    "install",
    "retire",
    "promote",
    # Cluster shape for ring-aware clients (docs/async-client.md).
    "topology",
)

#: Commands addressed to one monitor — the router routes these to the
#: ring owner's shard; everything else is answered by the router itself
#: or fanned out to every shard.
MONITOR_COMMANDS = frozenset(
    {
        "create",
        "ingest",
        "ingest_batch",
        "query",
        "timeline",
        "snapshot",
        "vps",
        "dedup",
        "classify",
        "handoff",
        "install",
        "retire",
    }
)

ERR_BAD_FRAME = "bad_frame"
ERR_BAD_REQUEST = "bad_request"
ERR_FRAME_TOO_LARGE = "frame_too_large"
ERR_NO_SUCH_MONITOR = "no_such_monitor"
ERR_MONITOR_EXISTS = "monitor_exists"
ERR_OVERLOADED = "overloaded"
ERR_OUT_OF_ORDER = "out_of_order"
ERR_INTERNAL = "internal"
#: Router-originated: the shard owning the addressed monitor is down or
#: unreachable. Retryable — the supervisor restarts or fails over the
#: shard; clients should back off and resend.
ERR_SHARD_DOWN = "shard_unavailable"


class FrameError(ValueError):
    """Malformed frame: bad length prefix, bad UTF-8, or bad JSON."""


class FrameTooLarge(FrameError):
    """Frame payload exceeds the configured maximum."""


# -- client-side error surface ------------------------------------------------
#
# Both clients — the blocking ServeClient and the asyncio
# AsyncServeClient — map error responses to the same exception types
# and allocate correlation ids the same way, so those pieces live here
# rather than being copied into each client module.


class ServeClientError(RuntimeError):
    """An error response from the server."""

    def __init__(self, code: str, message: str, response: dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


class ServeTimeout(OSError):
    """The server (or the route to it) stopped answering in time.

    Raised when connecting exceeds ``connect_timeout`` or a request
    exceeds ``timeout``. Distinct from :class:`ServeClientError`: no
    response was received at all, so the request's fate is unknown —
    behind a router this usually means the owning shard is dead and a
    restart or failover is in progress. The connection is closed (a
    late response would desynchronize the request/response pairing);
    reconnect before retrying.
    """


class OverloadedError(ServeClientError):
    """Explicit backpressure: a bounded queue or in-flight cap is full."""


class BatchRejectedError(ServeClientError):
    """A batched ingest hit an invalid record partway through.

    Everything before ``index`` was applied and durably acknowledged —
    ``applied`` holds those update documents — and nothing at or after
    ``index`` was. ``index`` is absolute into the rounds the caller
    passed, not relative to the failing wire batch.
    """

    def __init__(
        self, code: str, message: str, response: dict, index: int, applied: list[dict]
    ) -> None:
        super().__init__(code, f"round {index}: {message}", response)
        self.index = index
        self.applied = applied


class RequestIds:
    """Monotonic correlation-id allocator, one per connection.

    Ids only need to be unique among the requests in flight on one
    connection — the pipelined server echoes whatever it was sent — so
    a plain counter suffices and stays debuggable (id order == send
    order).
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        self._next += 1
        return self._next


def check_response(response: dict) -> dict:
    """Return an ``ok`` response, or raise the mapped client exception.

    ``overloaded`` raises :class:`OverloadedError` so callers can
    distinguish "back off and retry" from "you sent garbage"; every
    other error code raises plain :class:`ServeClientError` with the
    code preserved on the exception.
    """
    if not response.get("ok"):
        code = str(response.get("error", "unknown"))
        text = str(response.get("message", ""))
        if code == ERR_OVERLOADED:
            raise OverloadedError(code, text, response)
        raise ServeClientError(code, text, response)
    return response


def encode_frame(message: dict, max_frame: int = MAX_FRAME) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(f"frame of {len(payload)} bytes exceeds {max_frame}")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


def error_response(
    code: str, message: str, request_id: object = None, **extra: object
) -> dict:
    response = {"id": request_id, "ok": False, "error": code, "message": message}
    response.update(extra)
    return response


# -- asyncio (server side) ----------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Optional[dict]:
    """Read one frame; None on clean EOF before a length prefix."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc
    return decode_payload(payload)


async def read_frame_bytes(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Optional[bytes]:
    """Read one frame's raw payload bytes; None on clean EOF.

    The router's proxy path: a frame can be relayed to a shard (or
    back to the client) verbatim — length prefix recomputed, payload
    untouched — without a decode/re-encode round trip.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame") from exc


async def write_frame(
    writer: asyncio.StreamWriter, message: dict, max_frame: int = MAX_FRAME
) -> None:
    writer.write(encode_frame(message, max_frame))
    await writer.drain()


async def write_frame_bytes(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Relay an already-validated payload as one frame."""
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()


# -- blocking sockets (client side) ------------------------------------------


def send_frame(sock: socket.socket, message: dict, max_frame: int = MAX_FRAME) -> None:
    sock.sendall(encode_frame(message, max_frame))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise FrameError("connection closed mid frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME) -> dict:
    (length,) = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))
    if length > max_frame:
        raise FrameTooLarge(f"declared frame of {length} bytes exceeds {max_frame}")
    return decode_payload(_recv_exactly(sock, length))
