"""``repro.serve``: a durable streaming monitoring service.

The paper's operator question is online — "did routing just change,
and is it a mode we've seen before?" — and this package turns the
in-memory :class:`~repro.core.online.OnlineFenrir` answer to it into a
long-lived, queryable network service:

* :mod:`~repro.serve.protocol` — length-prefixed JSON frames over TCP;
* :mod:`~repro.serve.journal` — write-ahead journal + checksummed
  snapshots so acknowledged ingests survive a kill;
* :mod:`~repro.serve.monitor` — one durable OnlineFenrir per watched
  service;
* :mod:`~repro.serve.server` — the asyncio server multiplexing many
  monitors with bounded queues and explicit overload responses;
* :mod:`~repro.serve.client` — the blocking client used by the CLI,
  tests, and load generator;
* :mod:`~repro.serve.metrics` — counters and latency percentiles for
  the ``stats`` command, backed by the per-server
  :class:`repro.obs.MetricsRegistry` that the ``metrics`` command
  renders as Prometheus text.

See ``docs/serving.md`` for the wire protocol and durability model.
"""

from .client import (
    BatchRejectedError,
    OverloadedError,
    ServeClient,
    ServeClientError,
)
from .journal import JournalError, JournalRecord, JournalWriter, read_journal
from .metrics import LatencyRecorder, ServerMetrics
from .monitor import BatchResult, DurableMonitor, MonitorError, ReplayReport
from .protocol import FrameError, FrameTooLarge, MAX_FRAME
from .server import FenrirServer, ServeConfig

__all__ = [
    "BatchRejectedError",
    "BatchResult",
    "DurableMonitor",
    "FenrirServer",
    "FrameError",
    "FrameTooLarge",
    "JournalError",
    "JournalRecord",
    "JournalWriter",
    "LatencyRecorder",
    "MAX_FRAME",
    "MonitorError",
    "OverloadedError",
    "ReplayReport",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerMetrics",
    "read_journal",
]
