"""``repro.serve``: a durable streaming monitoring service.

The paper's operator question is online — "did routing just change,
and is it a mode we've seen before?" — and this package turns the
in-memory :class:`~repro.core.online.OnlineFenrir` answer to it into a
long-lived, queryable network service:

* :mod:`~repro.serve.protocol` — length-prefixed JSON frames over TCP;
* :mod:`~repro.serve.journal` — write-ahead journal + checksummed
  snapshots so acknowledged ingests survive a kill;
* :mod:`~repro.serve.monitor` — one durable OnlineFenrir per watched
  service;
* :mod:`~repro.serve.server` — the asyncio server multiplexing many
  monitors with bounded queues and explicit overload responses;
* :mod:`~repro.serve.client` — the blocking client used by the CLI,
  tests, and load generator;
* :mod:`~repro.serve.aio` — the asyncio client: pipelined connections
  multiplexing many requests by correlation id behind a bounded pool,
  with optional ring-aware direct-to-shard routing;
* :mod:`~repro.serve.metrics` — counters and latency percentiles for
  the ``stats`` command, backed by the per-server
  :class:`repro.obs.MetricsRegistry` that the ``metrics`` command
  renders as Prometheus text;
* :mod:`~repro.serve.ring` — consistent hashing (virtual nodes over a
  stable digest) assigning monitors to shards;
* :mod:`~repro.serve.router` — the cluster front-end proxying the same
  wire protocol to the owning shard;
* :mod:`~repro.serve.cluster` — the shard supervisor (spawn, watch,
  restart, failover, rebalance) and the replication follower loop.

See ``docs/serving.md`` for the wire protocol and durability model,
and ``docs/cluster.md`` for the sharded tier.
"""

from .aio import AsyncConnection, AsyncServeClient, ConnectionPool
from .client import (
    BatchRejectedError,
    OverloadedError,
    ServeClient,
    ServeClientError,
    ServeTimeout,
)
from .cluster import (
    ClusterConfig,
    ClusterSupervisor,
    ReplicationFollower,
)
from .journal import JournalError, JournalRecord, JournalWriter, read_journal
from .metrics import LatencyRecorder, ServerMetrics
from .monitor import BatchResult, DurableMonitor, MonitorError, ReplayReport
from .protocol import FrameError, FrameTooLarge, MAX_FRAME
from .ring import HashRing
from .router import ClusterState, ShardRouter
from .server import FenrirServer, ServeConfig

__all__ = [
    "AsyncConnection",
    "AsyncServeClient",
    "BatchRejectedError",
    "BatchResult",
    "ClusterConfig",
    "ClusterState",
    "ClusterSupervisor",
    "ConnectionPool",
    "DurableMonitor",
    "FenrirServer",
    "FrameError",
    "FrameTooLarge",
    "HashRing",
    "JournalError",
    "JournalRecord",
    "JournalWriter",
    "LatencyRecorder",
    "MAX_FRAME",
    "MonitorError",
    "OverloadedError",
    "ReplayReport",
    "ReplicationFollower",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeTimeout",
    "ServerMetrics",
    "ShardRouter",
    "read_journal",
]
