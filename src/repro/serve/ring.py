"""Consistent hashing: which shard owns which monitor.

The cluster partitions monitors across shards with a classic
virtual-node hash ring. Each shard contributes ``vnodes`` points on a
64-bit circle (SHA-1 of ``"shard-<id>:<vnode>"`` — a *stable* digest,
never Python's salted ``hash()``, so every router, supervisor, and
test computes the identical ring); a monitor is owned by the first
point clockwise of SHA-1 of its name.

Two properties matter operationally and are pinned by the Hypothesis
suite in ``tests/test_cluster_ring.py``:

* **balance** — with the default 128 vnodes per shard, shard loads stay
  within a modest factor of ideal at realistic monitor counts;
* **minimal remap** — adding or removing one shard only moves the keys
  that shard gains or loses; everyone else's monitors stay put, so a
  rebalance ships O(K/N) monitors, not O(K).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing", "misplaced", "stable_hash"]

#: Virtual nodes per shard. 128 keeps the max/ideal load ratio around
#: 1.3 at hundreds of monitors (measured, and pinned by the balance
#: property test) while ring construction stays microseconds.
DEFAULT_VNODES = 128


def stable_hash(token: str) -> int:
    """First 8 bytes of SHA-1 as an unsigned int — stable across runs.

    Python's builtin ``hash`` is salted per process; a ring built on it
    would send each router's requests to different shards.
    """
    return int.from_bytes(hashlib.sha1(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to integer shard ids."""

    def __init__(self, shards: Iterable[int], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._shards: Tuple[int, ...] = tuple(sorted(set(shards)))
        if not self._shards:
            raise ValueError("a ring needs at least one shard")
        points: List[Tuple[int, int]] = []
        for shard in self._shards:
            for vnode in range(vnodes):
                points.append((stable_hash(f"shard-{shard}:{vnode}"), shard))
        # Sorting on (hash, shard) makes collisions (astronomically
        # unlikely at 64 bits, but cheap to pin down) deterministic too.
        points.sort()
        self._points = points
        self._hashes = [point[0] for point in points]

    @property
    def shards(self) -> Tuple[int, ...]:
        """The shard ids on the ring, ascending."""
        return self._shards

    def owner(self, key: str) -> int:
        """The shard owning ``key``: first ring point clockwise of it."""
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def ownership(self, keys: Iterable[str]) -> Dict[str, int]:
        """``{key: owning shard}`` for every key."""
        return {key: self.owner(key) for key in keys}

    def counts(self, keys: Iterable[str]) -> Dict[int, int]:
        """How many of ``keys`` each shard owns (all shards present)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def digest(self) -> str:
        """A short stable fingerprint of the ring's shape.

        Two rings agree on every key's owner iff they were built from
        the same (shards, vnodes) pair, so the digest covers exactly
        that. Ring-aware clients compare it against the ``topology``
        response to detect drift without re-fetching the full ring.
        """
        body = f"vnodes={self.vnodes};shards={','.join(map(str, self._shards))}"
        return hashlib.sha1(body.encode("utf-8")).hexdigest()[:16]

    def with_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` added (no-op if present)."""
        return HashRing((*self._shards, shard), vnodes=self.vnodes)

    def without_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` removed."""
        remaining = tuple(s for s in self._shards if s != shard)
        return HashRing(remaining, vnodes=self.vnodes)

    @classmethod
    def for_cluster(cls, num_shards: int, vnodes: int = DEFAULT_VNODES) -> "HashRing":
        """The ring every cluster component builds: shards ``0..N-1``."""
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        return cls(range(num_shards), vnodes=vnodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return self._shards == other._shards and self.vnodes == other.vnodes

    def __hash__(self) -> int:
        return hash((self._shards, self.vnodes))

    def __repr__(self) -> str:
        return f"HashRing(shards={self._shards!r}, vnodes={self.vnodes})"


def misplaced(
    ring: HashRing, holdings: Dict[int, Sequence[str]]
) -> List[Tuple[str, int, int]]:
    """Monitors living on the wrong shard: ``(name, current, owner)``.

    ``holdings`` maps each shard id to the monitor names found in its
    data directory. Used by the supervisor's rebalance-on-start pass
    after the shard count changes between runs.
    """
    moves: List[Tuple[str, int, int]] = []
    for shard, names in sorted(holdings.items()):
        for name in sorted(names):
            target = ring.owner(name)
            if target != shard:
                moves.append((name, shard, target))
    return moves
