"""The sharded serve tier: supervisor, shard processes, replication.

``repro serve --shards N`` runs one :class:`ClusterSupervisor`, which

* spawns N worker shards as child ``repro serve`` processes (each a
  stock single-process server over its own ``shard-NN`` journal
  directory — :class:`~repro.serve.monitor.DurableMonitor` is reused
  unchanged),
* starts a :class:`~repro.serve.router.ShardRouter` front-end that
  speaks the ordinary wire protocol and routes by consistent hash,
* watches the children: a dead shard is restarted on its own journal
  directory (recovery replays it), or — with ``--replicate`` — its
  follower is *promoted* in place and a fresh follower is respawned
  over the dead primary's directory,
* rebalances on start: when the shard count changed between runs,
  monitors sitting on the wrong shard are moved with
  ``handoff`` → ``install`` → ``retire``.

Replication is asynchronous snapshot shipping, not synchronous
quorum: each follower runs a :class:`ReplicationFollower` loop inside
its own server process, pulling ``handoff`` deltas from its primary
every ``sync_interval`` seconds and applying them in O(delta) via
:meth:`~repro.core.online.OnlineFenrir.apply_delta`. A promoted
follower therefore serves every round it had synced; rounds acked by
the primary after the last sync are recovered when the primary's
journal directory is replayed (they are never lost, only failed over
late). See ``docs/cluster.md`` for the full semantics and runbook.

Child processes are spawned with ``--exit-on-stdin-close`` and their
stdin held by the supervisor, so a SIGKILLed supervisor cannot leak
orphan shards holding journal locks — the pipe's EOF retires them.
"""

from __future__ import annotations

import asyncio
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs import MetricsRegistry
from . import protocol
from .monitor import MonitorError
from .protocol import ERR_BAD_REQUEST, FrameError
from .ring import DEFAULT_VNODES, HashRing, misplaced
from .router import ClusterState, ShardRouter
from .server import FenrirServer

__all__ = [
    "AsyncShardClient",
    "ClusterConfig",
    "ClusterRequestError",
    "ClusterSupervisor",
    "ReplicationFollower",
    "shard_request",
]

_READY_PREFIX = "listening on "
_SPAWN_TIMEOUT = 60.0
_REQUEST_TIMEOUT = 30.0


class ClusterRequestError(RuntimeError):
    """An error response while talking to a shard server."""

    def __init__(self, code: str, message: str, response: dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


def _checked(response: Optional[dict]) -> dict:
    if response is None:
        raise ConnectionError("shard closed the connection mid request")
    if not response.get("ok"):
        raise ClusterRequestError(
            str(response.get("error", "unknown")),
            str(response.get("message", "")),
            response,
        )
    return response


async def shard_request(
    address: Tuple[str, int],
    message: dict,
    timeout: float = _REQUEST_TIMEOUT,
    max_frame: int = protocol.MAX_FRAME,
) -> dict:
    """One connect/request/response round trip to a shard server."""
    reader, writer = await asyncio.open_connection(address[0], address[1])
    try:
        await protocol.write_frame(writer, message, max_frame)
        response = await asyncio.wait_for(
            protocol.read_frame(reader, max_frame), timeout
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return _checked(response)


class AsyncShardClient:
    """A persistent asyncio connection to one shard server.

    The async sibling of the blocking :class:`~repro.serve.client
    .ServeClient`, used by the replication follower (many small
    requests per sync — a connect per request would dominate). Lazily
    connects; :meth:`reset` drops the connection after a failure so the
    next request re-dials.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        max_frame: int = protocol.MAX_FRAME,
        timeout: float = _REQUEST_TIMEOUT,
    ) -> None:
        self.address = address
        self.max_frame = max_frame
        self.timeout = timeout
        self._next_id = 0
        self._streams: Optional[
            Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = None

    async def request(self, command: str, **fields: object) -> dict:
        if self._streams is None:
            self._streams = await asyncio.open_connection(
                self.address[0], self.address[1]
            )
        reader, writer = self._streams
        self._next_id += 1
        message = {"cmd": command, "id": self._next_id, **fields}
        await protocol.write_frame(writer, message, self.max_frame)
        response = await asyncio.wait_for(
            protocol.read_frame(reader, self.max_frame), self.timeout
        )
        return _checked(response)

    async def reset(self) -> None:
        """Drop the connection (next request re-dials)."""
        if self._streams is not None:
            _reader, writer = self._streams
            self._streams = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def close(self) -> None:
        await self.reset()


class ReplicationFollower:
    """Pull loop keeping a follower server converged on its primary.

    Every ``interval`` seconds: list the primary's monitors, retire
    local monitors the primary no longer has, and for each primary
    monitor request a ``handoff`` delta chaining from the local round
    count — ``unchanged`` is a no-op, a delta applies in O(delta), and
    any divergence (the follower is ahead after a role swap, or the
    chain does not fold) falls back to a full state install. Primary
    outages are absorbed: the loop resets its connection and retries on
    the next tick, so a follower started before its primary, or one
    whose primary is mid-restart, converges as soon as it can.
    """

    def __init__(
        self,
        server: FenrirServer,
        primary: Tuple[str, int],
        interval: float = 0.5,
    ) -> None:
        self.server = server
        self.primary = primary
        self.interval = interval
        self._stopped = asyncio.Event()
        self._client = AsyncShardClient(primary, max_frame=server.config.max_frame)
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self.run())

    async def run(self) -> None:
        while not self._stopped.is_set():
            try:
                await self._sync_once()
                self.server.registry.counter(
                    "serve_follower_syncs_total",
                    help="Completed replication sync passes",
                ).inc()
            except (
                ConnectionError,
                OSError,
                FrameError,
                ClusterRequestError,
                MonitorError,
                asyncio.TimeoutError,
            ):
                # The primary is down, mid-restart, or answered with an
                # error; drop the connection and retry next tick.
                await self._client.reset()
                self.server.registry.counter(
                    "serve_follower_sync_errors_total",
                    help="Replication sync passes that failed and will retry",
                ).inc()
            try:
                await asyncio.wait_for(self._stopped.wait(), timeout=self.interval)
            except asyncio.TimeoutError:
                pass

    async def stop(self) -> None:
        """Stop syncing (idempotent); called by the ``promote`` command."""
        self._stopped.set()
        if self._task is not None and self._task is not asyncio.current_task():
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            except Exception:
                # The loop died on an unexpected error before the cancel
                # landed; shutdown still succeeds, but leave a trace.
                self.server.registry.counter(
                    "serve_follower_sync_errors_total",
                    help="Replication sync passes that failed and will retry",
                ).inc()
            self._task = None
        await self._client.close()

    async def _sync_once(self) -> None:
        names = set((await self._client.request("list"))["monitors"])
        # Monitors we hold that the primary does not (stale after a
        # rebalance or role swap) would resurface old data if this
        # follower were promoted; retire them.
        for name in sorted(set(self.server._monitors) - names):
            await self.server.retire_monitor(name)
        for name in sorted(names):
            await self._sync_monitor(name)

    async def _sync_monitor(self, name: str) -> None:
        runtime = self.server._monitors.get(name)
        if runtime is None:
            export = await self._client.request("handoff", monitor=name)
        else:
            local_rounds = len(runtime.monitor.tracker.updates)
            try:
                export = await self._client.request(
                    "handoff", monitor=name, after_rounds=local_rounds
                )
            except ClusterRequestError as exc:
                if exc.code != ERR_BAD_REQUEST:
                    raise
                # We are ahead of the primary (stale journal replayed
                # after a role swap): resynchronize from scratch.
                export = await self._client.request("handoff", monitor=name)
        if export.get("kind") == "unchanged":
            return
        try:
            self.server.install_state(name, export["seq"], export["state"])
        except MonitorError:
            if export.get("kind") != "delta":
                raise
            # The delta did not chain (e.g. our state predates a
            # compaction); a full install always converges.
            export = await self._client.request("handoff", monitor=name)
            self.server.install_state(name, export["seq"], export["state"])


@dataclass
class ClusterConfig:
    """Tunables for one sharded serve tier."""

    data_dir: Path
    shards: int = 2
    host: str = "127.0.0.1"
    port: int = 7339  # router port; 0 = OS-assigned. Shards always use 0.
    replicate: bool = False
    sync_interval: float = 0.5
    queue_size: int = 256
    snapshot_every: int = 1000
    fsync: bool = False
    max_frame: int = protocol.MAX_FRAME
    poll_interval: float = 0.1  # supervisor liveness check cadence
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        self.data_dir = Path(self.data_dir)
        if self.shards < 1:
            raise ValueError("shards must be at least 1")


@dataclass
class _ShardProcess:
    """One managed child ``repro serve`` process."""

    shard_id: int
    role: str  # "primary" | "follower"
    directory: Path
    process: asyncio.subprocess.Process
    address: Tuple[str, int]
    # Awaiting process.wait() in the background keeps returncode fresh.
    waiter: asyncio.Task = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def alive(self) -> bool:
        return self.process.returncode is None


@dataclass
class _ShardPair:
    primary: _ShardProcess
    follower: Optional[_ShardProcess] = None


class ClusterSupervisor:
    """Spawns, watches, heals, and fronts the shard processes."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.state = ClusterState(
            ring=HashRing.for_cluster(config.shards, vnodes=config.vnodes)
        )
        self.router = ShardRouter(
            self.state,
            host=config.host,
            port=config.port,
            max_frame=config.max_frame,
            registry=self.registry,
        )
        self._shards: Dict[int, _ShardPair] = {}
        self._watch_task: Optional[asyncio.Task] = None
        self._rebalances = self.registry.counter(
            "cluster_rebalances_total",
            help="Monitors moved to their ring owner at startup",
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard (and follower), rebalance, open the router."""
        self.config.data_dir.mkdir(parents=True, exist_ok=True)
        for shard_id in range(self.config.shards):
            primary = await self._spawn(
                shard_id, "primary", self._primary_dir(shard_id)
            )
            self._shards[shard_id] = _ShardPair(primary=primary)
            self.state.set_address(shard_id, primary.address)
            self._up_gauge(shard_id).set(1)
        await self._rebalance_on_start()
        if self.config.replicate:
            for shard_id, pair in self._shards.items():
                pair.follower = await self._spawn(
                    shard_id,
                    "follower",
                    self._follower_dir(shard_id),
                    follow=pair.primary.address,
                )
        await self.router.start()

    @property
    def address(self) -> Tuple[str, int]:
        return self.router.address

    def describe_processes(self) -> List[str]:
        """One machine-readable line per child, for harnesses to parse."""
        lines: List[str] = []
        for shard_id in sorted(self._shards):
            pair = self._shards[shard_id]
            processes = [pair.primary]
            if pair.follower is not None:
                processes.append(pair.follower)
            for child in processes:
                host, port = child.address
                lines.append(
                    f"shard {shard_id} {child.role} listening on "
                    f"{host}:{port} pid={child.process.pid}"
                )
        return lines

    async def serve_forever(self) -> None:
        self._watch_task = asyncio.get_running_loop().create_task(self._watch())
        try:
            await self.router.serve_forever()
        finally:
            if self._watch_task is not None:
                self._watch_task.cancel()
                self._watch_task = None

    async def stop(self) -> None:
        if self._watch_task is not None:
            self._watch_task.cancel()
            self._watch_task = None
        await self.router.stop()
        for pair in self._shards.values():
            for child in (pair.follower, pair.primary):
                if child is not None:
                    await self._terminate(child)

    # -- child process management --------------------------------------------

    def _primary_dir(self, shard_id: int) -> Path:
        return self.config.data_dir / f"shard-{shard_id:02d}"

    def _follower_dir(self, shard_id: int) -> Path:
        return self.config.data_dir / f"shard-{shard_id:02d}-follower"

    def _up_gauge(self, shard_id: int):  # type: ignore[no-untyped-def]
        return self.registry.gauge(
            "cluster_shard_up",
            labels={"shard": str(shard_id)},
            help="1 when the shard's primary is serving, else 0",
        )

    async def _spawn(
        self,
        shard_id: int,
        role: str,
        directory: Path,
        follow: Optional[Tuple[str, int]] = None,
    ) -> _ShardProcess:
        """Start one child server and wait for its readiness line."""
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--data-dir",
            str(directory),
            "--queue-size",
            str(self.config.queue_size),
            "--snapshot-every",
            str(self.config.snapshot_every),
            "--exit-on-stdin-close",
        ]
        if self.config.fsync:
            argv.append("--fsync")
        if follow is not None:
            argv += [
                "--follow",
                f"{follow[0]}:{follow[1]}",
                "--sync-interval",
                str(self.config.sync_interval),
            ]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        try:
            line = await asyncio.wait_for(
                process.stdout.readline(), _SPAWN_TIMEOUT  # type: ignore[union-attr]
            )
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()
            raise RuntimeError(
                f"shard {shard_id} {role} did not report readiness "
                f"within {_SPAWN_TIMEOUT}s"
            ) from None
        text = line.decode("utf-8", "replace").strip()
        if not text.startswith(_READY_PREFIX):
            process.kill()
            await process.wait()
            raise RuntimeError(
                f"shard {shard_id} {role} failed to start "
                f"(first line: {text!r})"
            )
        host, _, port_text = text[len(_READY_PREFIX):].rpartition(":")
        child = _ShardProcess(
            shard_id=shard_id,
            role=role,
            directory=directory,
            process=process,
            address=(host, int(port_text)),
        )
        child.waiter = asyncio.get_running_loop().create_task(process.wait())
        return child

    async def _terminate(self, child: _ShardProcess) -> None:
        """Stop a child: close stdin (clean exit), escalate if needed."""
        process = child.process
        if process.returncode is not None:
            return
        if process.stdin is not None:
            process.stdin.close()
        try:
            await asyncio.wait_for(process.wait(), 5.0)
            return
        except asyncio.TimeoutError:
            pass
        process.terminate()
        try:
            await asyncio.wait_for(process.wait(), 5.0)
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()

    # -- healing -------------------------------------------------------------

    async def _watch(self) -> None:
        """Liveness loop: restart dead shards, promote followers."""
        while True:
            await asyncio.sleep(self.config.poll_interval)
            for shard_id, pair in self._shards.items():
                if not pair.primary.alive:
                    await self._heal_primary(shard_id, pair)
                if (
                    self.config.replicate
                    and pair.primary.alive
                    and (pair.follower is None or not pair.follower.alive)
                ):
                    await self._heal_follower(shard_id, pair)

    async def _heal_primary(self, shard_id: int, pair: _ShardPair) -> None:
        self._up_gauge(shard_id).set(0)
        if pair.follower is not None and pair.follower.alive:
            if await self._promote(shard_id, pair):
                return
        # No follower (or promotion failed): restart on the same journal
        # directory; recovery replays every acknowledged round.
        try:
            fresh = await self._spawn(
                shard_id, "primary", pair.primary.directory
            )
        except (RuntimeError, OSError):
            return  # retry on the next watch tick
        pair.primary = fresh
        self.state.set_address(shard_id, fresh.address)
        self._up_gauge(shard_id).set(1)
        self.registry.counter(
            "cluster_shard_restarts_total",
            labels={"shard": str(shard_id)},
            help="Primary restarts after a crash",
        ).inc()
        # The follower (if any) is pinned to the old primary address;
        # respawn it against the new one.
        if pair.follower is not None and pair.follower.alive:
            await self._terminate(pair.follower)
            pair.follower = None

    async def _promote(self, shard_id: int, pair: _ShardPair) -> bool:
        """Fail over to the follower; True when it now owns the shard."""
        follower = pair.follower
        assert follower is not None
        try:
            await shard_request(
                follower.address,
                {"cmd": "promote", "id": 0},
                timeout=10.0,
                max_frame=self.config.max_frame,
            )
        except (ConnectionError, OSError, FrameError, ClusterRequestError,
                asyncio.TimeoutError):
            return False
        dead_primary_dir = pair.primary.directory
        follower.role = "primary"
        pair.primary = follower
        pair.follower = None
        self.state.set_address(shard_id, follower.address)
        self._up_gauge(shard_id).set(1)
        self.registry.counter(
            "cluster_failovers_total",
            labels={"shard": str(shard_id)},
            help="Follower promotions after a primary death",
        ).inc()
        return True

    async def _heal_follower(self, shard_id: int, pair: _ShardPair) -> None:
        if pair.follower is not None:
            await self._terminate(pair.follower)
            pair.follower = None
        # The directory not serving as the primary's becomes the new
        # follower's home (after a failover that is the dead primary's
        # old directory; its stale state full-resyncs on first sync).
        directory = (
            self._follower_dir(shard_id)
            if pair.primary.directory == self._primary_dir(shard_id)
            else self._primary_dir(shard_id)
        )
        try:
            pair.follower = await self._spawn(
                shard_id, "follower", directory, follow=pair.primary.address
            )
        except (RuntimeError, OSError):
            pair.follower = None  # retry on the next watch tick

    # -- rebalance -----------------------------------------------------------

    async def _rebalance_on_start(self) -> None:
        """Move monitors whose ring owner changed since the last run.

        Guarded by sequence comparison: a monitor already present on
        the target shard at an equal-or-newer seq (a crash between
        install and retire on a previous rebalance) is not clobbered —
        the stale source copy is just retired.
        """
        holdings: Dict[int, List[str]] = {}
        for shard_id, pair in self._shards.items():
            response = await shard_request(
                pair.primary.address,
                {"cmd": "list", "id": 0},
                max_frame=self.config.max_frame,
            )
            holdings[shard_id] = list(response["monitors"])
        for name, source, target in misplaced(self.state.ring, holdings):
            source_address = self._shards[source].primary.address
            target_address = self._shards[target].primary.address
            export = await shard_request(
                source_address,
                {"cmd": "handoff", "id": 0, "monitor": name},
                timeout=_SPAWN_TIMEOUT,
                max_frame=self.config.max_frame,
            )
            target_seq = -1
            if name in holdings[target]:
                query = await shard_request(
                    target_address,
                    {"cmd": "query", "id": 0, "monitor": name},
                    max_frame=self.config.max_frame,
                )
                target_seq = int(query["seq"])
            if export["seq"] > target_seq:
                await shard_request(
                    target_address,
                    {
                        "cmd": "install",
                        "id": 0,
                        "monitor": name,
                        "seq": export["seq"],
                        "state": export["state"],
                    },
                    timeout=_SPAWN_TIMEOUT,
                    max_frame=self.config.max_frame,
                )
            await shard_request(
                source_address,
                {"cmd": "retire", "id": 0, "monitor": name},
                max_frame=self.config.max_frame,
            )
            self._rebalances.inc()
