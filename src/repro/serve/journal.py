"""Write-ahead journal and snapshots for durable monitors.

Durability model (per monitor directory)::

    <data_dir>/<monitor>/
        journal.jsonl    append-only ingest log since the last snapshot
        snapshot.json    full OnlineFenrir.to_state() checkpoint
        MANIFEST.json    sha256 of snapshot.json (the bundle idiom)

Every acknowledged ingest is first appended to the journal — one JSON
line carrying a monotonically increasing sequence number and a CRC32
of its own canonical encoding — and flushed to the OS before the
tracker applies it. A killed process therefore leaves at worst a
*truncated final line*, which the reader detects (bad JSON, bad CRC,
or a sequence gap) and drops, recovering the exact acknowledged
prefix: the same last-valid-record semantics as
:func:`repro.io.formats.recover_series_jsonl`.

Recurring rounds can be journaled as *dedup reference records*
(``repro.vps``'s ingest-dedup mode): when a round's states mapping is
byte-identical to the most recent fully journaled one, the line
``{"ref": <full seq>, "seq": ..., "time": ..., "crc": ...}`` is
written instead of repeating the states. :func:`read_journal` expands
references while scanning — it only ever needs the last full record's
states, because a valid writer always refs the most recent full line
in the same journal (the reference chain never crosses a journal
reset). Replay is therefore byte-equal to the undeduplicated stream;
only the on-disk encoding is compact. A reference that does not point
at the last full record is treated like any other corrupt line: the
valid prefix is kept and the tail is dropped.

Snapshots are written atomically (temp file + ``os.replace``) together
with a checksum manifest; the journal is then reset. A crash between
the two leaves journal entries at or below the snapshot's sequence
number, which replay skips — both orders of partial completion
converge to the same state.

Periodic checkpoints are *incremental*: instead of re-serializing the
whole tracker history every ``snapshot_every`` rounds (O(rounds²)
cumulative bytes), :func:`write_delta` persists only the updates since
the previous checkpoint as a ``delta-<seq>.json`` segment.
:func:`read_snapshot` folds the segment chain onto the base snapshot
(via :func:`repro.core.online.fold_delta_state`), and an explicit
:meth:`DurableMonitor.snapshot` compacts — rewrites the full base and
discards the segments. Segments whose seq is at or below the base's
are compaction leftovers and are skipped, so a crash at any point in
the checkpoint/compact sequence still converges.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from time import perf_counter as _perf_counter
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # circular-import-free type for flush_histogram
    from ..obs import Histogram

from ..core.online import fold_delta_state

__all__ = [
    "JournalError",
    "JournalRecord",
    "JournalTail",
    "JournalWriter",
    "record_line",
    "ref_record_line",
    "read_journal",
    "write_snapshot",
    "read_snapshot",
    "write_delta",
    "read_deltas",
    "discard_deltas",
]

JOURNAL_FILE = "journal.jsonl"
SNAPSHOT_FILE = "snapshot.json"
MANIFEST_FILE = "MANIFEST.json"
_DELTA_GLOB = "delta-*.json"


class JournalError(ValueError):
    """Raised for corruption that recovery cannot skip (bad snapshot)."""


@dataclass(frozen=True)
class JournalRecord:
    """One durable ingest: sequence number, timestamp, assignment."""

    seq: int
    time: datetime
    states: dict[str, str]

    def to_document(self) -> dict:
        return {"seq": self.seq, "time": self.time.isoformat(), "states": self.states}

    @classmethod
    def from_document(cls, document: dict) -> "JournalRecord":
        return cls(
            seq=int(document["seq"]),
            time=datetime.fromisoformat(document["time"]),
            states=dict(document["states"]),
        )


@dataclass(frozen=True)
class JournalTail:
    """Report of what journal recovery dropped (None when clean)."""

    first_bad_line: int
    dropped_lines: int
    reason: str


def _canonical(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _with_crc(document: dict) -> str:
    body = _canonical(document)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if len(body) > 2:
        # Splice the checksum into the canonical encoding instead of
        # re-serializing the whole document a second time; the checker
        # pops "crc" and re-canonicalizes, so field order is free.
        return f'{body[:-1]},"crc":"{crc:08x}"}}'
    return _canonical({**document, "crc": f"{crc:08x}"})


def record_line(record: "JournalRecord", states_json: Optional[str] = None) -> str:
    """The journal line for ``record`` (no trailing newline).

    ``states_json`` is an optional precomputed ``_canonical(states)``
    fragment. Routing results recur — the paper's core observation —
    so a monitor ingesting a stable stream re-serializes the same
    states mapping thousands of times; callers that cache the fragment
    across repeated rounds skip the dominant JSON cost. The composed
    line is byte-identical to the uncached encoding (canonical sort
    order of the record keys is ``seq`` < ``states`` < ``time``).
    """
    if states_json is None:
        return _with_crc(record.to_document())
    body = (
        f'{{"seq":{record.seq},"states":{states_json},'
        f'"time":"{record.time.isoformat()}"}}'
    )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f'{body[:-1]},"crc":"{crc:08x}"}}'


def ref_record_line(seq: int, time: datetime, ref: int) -> str:
    """A dedup reference line: same round as full record ``ref``.

    The composed bytes match :func:`_with_crc` of
    ``{"ref": ref, "seq": seq, "time": ...}`` (canonical key order
    ``ref`` < ``seq`` < ``time``), so the checker treats both record
    kinds uniformly. The states are *not* repeated — the reader
    materializes them from the referenced full record.
    """
    body = f'{{"ref":{ref},"seq":{seq},"time":"{time.isoformat()}"}}'
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f'{body[:-1]},"crc":"{crc:08x}"}}'


def _check_crc(obj: dict) -> dict:
    crc = obj.pop("crc", None)
    if crc is None:
        raise ValueError("record missing crc")
    body = _canonical(obj)
    expected = f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x}"
    if crc != expected:
        raise ValueError(f"crc mismatch: {crc} != {expected}")
    return obj


class JournalWriter:
    """Append-only writer; every append is flushed before returning.

    ``fsync=True`` additionally forces the write to stable storage per
    append (survives power loss, ~100x slower); the default flush
    survives any death of the *process*, which is the failure mode the
    kill-and-restart tests exercise.

    ``flush_histogram`` (a :class:`repro.obs.Histogram`, optional)
    observes the wall time of each durability commit — write + flush +
    fsync when enabled. This is the ``serve_journal_fsync_seconds``
    series in the server's Prometheus exposition; when None (offline
    library use) the writer never reads the clock.
    """

    def __init__(
        self,
        path: Path,
        fsync: bool = False,
        flush_histogram: Optional["Histogram"] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.flush_histogram = flush_histogram
        self._stream = self.path.open("a", encoding="utf-8")

    def append(self, record: JournalRecord) -> None:
        self.append_many((record,))

    def append_many(self, records: Iterable[JournalRecord]) -> None:
        """Append many records under one flush/fsync (group commit).

        Byte-identical to the equivalent sequence of :meth:`append`
        calls — only the durability syscalls are amortized, which is
        what makes batched ingest ~O(batch) cheaper than record-at-a-
        time without weakening the acknowledged-iff-replayable contract
        (the batch is acked only after this returns).
        """
        self.append_lines([record_line(record) for record in records])

    def append_lines(self, lines: Iterable[str]) -> None:
        """Append pre-encoded :func:`record_line` lines, one group commit."""
        payload = "".join(line + "\n" for line in lines)
        if not payload:
            return
        if self.flush_histogram is None:
            self._stream.write(payload)
            self._commit()
            return
        started = _perf_counter()
        self._stream.write(payload)
        self._commit()
        self.flush_histogram.observe(_perf_counter() - started)

    def _commit(self) -> None:
        """The single durability point every append funnels through:
        push the buffered payload to the OS, and to stable storage when
        ``fsync`` is on. fenlint's journal-durability rule proves this
        helper flushes on every path (a call-graph effect summary), so
        the write sites in :meth:`append_lines` need no inline flush."""
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())

    def reset(self) -> None:
        """Atomically replace the journal with an empty one."""
        self._stream.close()
        temp = self.path.with_suffix(".tmp")
        temp.write_text("")
        os.replace(temp, self.path)
        self._stream = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        self._stream.close()


def read_journal(
    path: Path, after_seq: int = 0
) -> tuple[list[JournalRecord], Optional[JournalTail]]:
    """Replay the journal's valid prefix, skipping records ≤ after_seq.

    Stops at the first unparseable, checksum-failing, or out-of-order
    line — everything a crashed writer can leave behind — and reports
    the dropped tail instead of raising.

    Dedup reference lines (``{"ref": ..., "seq": ..., "time": ...}``)
    are expanded in place: the record's states are materialized from
    the referenced full record, so callers see the exact stream an
    undeduplicated writer would have produced. A reference that does
    not point at the most recent full record is corruption and drops
    the tail like any other bad line.
    """
    path = Path(path)
    if not path.exists():
        return [], None
    records: list[JournalRecord] = []
    tail: Optional[JournalTail] = None
    expected = after_seq
    last_full: Optional[tuple[int, dict]] = None
    with path.open("r", encoding="utf-8") as stream:
        iterator: Iterator[tuple[int, str]] = enumerate(stream, start=1)
        for line_number, line in iterator:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                document = _check_crc(json.loads(stripped))
                if "ref" in document:
                    ref = document["ref"]
                    if last_full is None or ref != last_full[0]:
                        raise ValueError(
                            f"dangling dedup reference: {ref!r} does not name "
                            "the most recent full record"
                        )
                    record = JournalRecord(
                        seq=int(document["seq"]),
                        time=datetime.fromisoformat(document["time"]),
                        states=last_full[1],
                    )
                else:
                    record = JournalRecord.from_document(document)
                    last_full = (record.seq, record.states)
                if record.seq <= after_seq:
                    continue  # already folded into the snapshot
                if record.seq != expected + 1:
                    raise ValueError(
                        f"sequence gap: expected {expected + 1}, got {record.seq}"
                    )
            except (ValueError, KeyError, TypeError) as exc:
                remaining = sum(1 for _ in iterator)
                tail = JournalTail(
                    first_bad_line=line_number,
                    dropped_lines=1 + remaining,
                    reason=str(exc),
                )
                break
            records.append(record)
            expected = record.seq
    return records, tail


def write_snapshot(directory: Path, seq: int, state: dict) -> None:
    """Atomically checkpoint ``state`` as the truth up to ``seq``."""
    directory = Path(directory)
    document = {"type": "fenrir-snapshot", "seq": seq, "state": state}
    body = json.dumps(document, sort_keys=True, separators=(",", ":"))
    sha256 = hashlib.sha256(body.encode("utf-8")).hexdigest()

    snapshot_temp = directory / (SNAPSHOT_FILE + ".tmp")
    snapshot_temp.write_text(body + "\n", encoding="utf-8")
    manifest_temp = directory / (MANIFEST_FILE + ".tmp")
    manifest_temp.write_text(
        json.dumps({"files": {SNAPSHOT_FILE: sha256}, "seq": seq}, indent=2) + "\n",
        encoding="utf-8",
    )
    # Snapshot first. A crash between the two replaces leaves the new
    # snapshot paired with the previous manifest; the reader detects the
    # stale manifest by its recorded seq and trusts the (atomically
    # written, self-describing) snapshot, so both partial orders recover.
    os.replace(snapshot_temp, directory / SNAPSHOT_FILE)
    os.replace(manifest_temp, directory / MANIFEST_FILE)


def write_delta(directory: Path, seq: int, delta: dict) -> Path:
    """Atomically persist one incremental checkpoint segment.

    The segment carries the ``OnlineFenrir.to_state(updates_after=...)``
    delta document plus the journal sequence number it is the truth up
    to, CRC-protected like a journal line. It is written with temp +
    ``os.replace`` so a crash mid-write leaves no visible segment at
    all — and because the journal is only reset *after* the replace,
    a missing segment just means those rounds replay from the journal.
    """
    directory = Path(directory)
    path = directory / f"delta-{seq:012d}.json"
    body = _with_crc({"type": "fenrir-delta", "seq": seq, "delta": delta})
    temp = directory / (path.name + ".tmp")
    temp.write_text(body + "\n", encoding="utf-8")
    os.replace(temp, path)
    return path


def read_deltas(directory: Path) -> list[tuple[int, dict]]:
    """All delta segments in ``directory``, ascending by seq.

    Raises :class:`JournalError` on a corrupt segment: unlike a journal
    tail, a segment was only written *before* the journal covering the
    same rounds was reset, so there is no redundant copy to fall back
    on and recovery cannot silently skip it.
    """
    directory = Path(directory)
    segments: list[tuple[int, dict]] = []
    for path in sorted(directory.glob(_DELTA_GLOB)):
        body = path.read_text(encoding="utf-8").rstrip("\n")
        try:
            document = _check_crc(json.loads(body))
            if document.get("type") != "fenrir-delta":
                raise ValueError(f"not a delta segment: {document.get('type')!r}")
            segments.append((int(document["seq"]), document["delta"]))
        except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
            raise JournalError(f"corrupt delta segment {path.name}: {exc}") from exc
    segments.sort(key=lambda pair: pair[0])
    return segments


def discard_deltas(directory: Path) -> int:
    """Remove all delta segments (after compaction folded them)."""
    removed = 0
    for path in sorted(Path(directory).glob(_DELTA_GLOB)):
        path.unlink()
        removed += 1
    return removed


def read_snapshot(directory: Path) -> tuple[int, dict]:
    """Load and verify a checkpoint; returns (seq, state).

    The base snapshot is folded with any newer delta segments before
    being returned, so callers always see the full state as of the
    latest checkpoint (base or incremental).

    The manifest checksum is enforced only when the manifest records
    the same seq as the snapshot document: a manifest for a *different*
    seq is the leftover of a crash between :func:`write_snapshot`'s two
    atomic replaces, and the self-describing snapshot (which parsed
    intact) is the truth. Raises :class:`JournalError` on a same-seq
    checksum mismatch or an unparseable snapshot — corruption that
    cannot be partially recovered the way a journal tail can.
    """
    directory = Path(directory)
    snapshot_path = directory / SNAPSHOT_FILE
    manifest_path = directory / MANIFEST_FILE
    if not snapshot_path.exists():
        raise JournalError(f"no snapshot in {directory}")
    body = snapshot_path.read_text(encoding="utf-8").rstrip("\n")
    try:
        document = json.loads(body)
        if document.get("type") != "fenrir-snapshot":
            raise ValueError(f"not a snapshot: {document.get('type')!r}")
        seq, state = int(document["seq"]), document["state"]
    except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
        raise JournalError(f"corrupt snapshot in {directory}: {exc}") from exc
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            expected = manifest["files"][SNAPSHOT_FILE]
            manifest_seq = int(manifest["seq"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"unreadable manifest in {directory}") from exc
        if manifest_seq == seq:
            actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
            if actual != expected:
                raise JournalError(f"snapshot checksum mismatch in {directory}")
    for delta_seq, delta in read_deltas(directory):
        if delta_seq <= seq:
            continue  # compaction leftover, already folded into the base
        try:
            state = fold_delta_state(state, delta)
        except ValueError as exc:
            raise JournalError(
                f"delta segment chain broken in {directory}: {exc}"
            ) from exc
        seq = delta_seq
    return seq, state
