"""A durable monitor: one OnlineFenrir with a journal and snapshots.

The monitor is the unit of multiplexing in ``repro serve`` — one per
anycast service, enterprise, or website being watched. It owns a
directory under the server's data dir and guarantees that every
*acknowledged* ingest survives a process kill: the record is appended
to the write-ahead journal and flushed before the in-memory tracker
applies it, and recovery replays snapshot + journal back to exactly
the acknowledged prefix.
"""

from __future__ import annotations

import json
import os
import re
import time as _time
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.compare import UnknownPolicy
from ..core.online import OnlineFenrir, OnlineUpdate
from ..obs import Counter, MetricsRegistry, span
from .journal import (
    JOURNAL_FILE,
    JournalRecord,
    JournalTail,
    JournalWriter,
    _canonical,
    discard_deltas,
    read_journal,
    read_snapshot,
    record_line,
    ref_record_line,
    write_delta,
    write_snapshot,
)

__all__ = [
    "MonitorError",
    "ReplayReport",
    "BatchResult",
    "DurableMonitor",
    "valid_monitor_name",
    "OPTIONS_FILE",
]

OPTIONS_FILE = "options.json"  # durable per-monitor settings (dedup mode)

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_monitor_name(name: str) -> bool:
    """Names become directory names, so they must be path-safe."""
    return bool(_NAME_PATTERN.match(name)) and name not in (".", "..")


class MonitorError(ValueError):
    """Raised for invalid monitor operations (bad name, bad state)."""


@dataclass(frozen=True)
class ReplayReport:
    """What recovery did when a monitor was opened from disk."""

    snapshot_seq: int
    replayed_records: int
    dropped_lines: int
    elapsed_seconds: float
    tail: Optional[JournalTail] = None
    skipped_records: int = 0  # journaled but unapplyable (never acknowledged)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :meth:`DurableMonitor.ingest_batch` call.

    The contract is *valid prefix applied*: ``updates`` covers every
    record up to (not including) the first invalid one, all of which
    are journaled under a single group commit and therefore durable.
    ``error_index``/``error`` describe the first rejected record, or
    are None when the whole batch was accepted; ``error_kind`` is
    ``"invalid_states"`` or ``"out_of_order"`` so callers can map the
    rejection to their own error taxonomy without parsing the message.
    """

    updates: tuple[OnlineUpdate, ...]
    error_index: Optional[int] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None

    @property
    def accepted(self) -> int:
        return len(self.updates)


def _validated_states(states: Mapping[str, str]) -> dict[str, str]:
    """A plain ``{str: str}`` copy of ``states``, or :class:`MonitorError`.

    The journal must never accept a record the tracker cannot apply:
    non-string labels (JSON arrays, numbers, null) would raise only
    inside ``StateCatalog.code``, *after* the append, poisoning the
    journal for every later replay.
    """
    clean: dict[str, str] = {}
    for key, value in states.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise MonitorError(
                "states must map network names to state labels (strings); "
                f"got {key!r}: {value!r}"
            )
        clean[key] = value
    return clean


def _read_options(directory: Path) -> bool:
    """The durable dedup setting, tolerant of missing/corrupt files.

    Options are a convenience, not state: a monitor whose options file
    is unreadable recovers with dedup off (safe — dedup only changes
    the journal encoding, never the replayed stream).
    """
    try:
        document = json.loads(
            (directory / OPTIONS_FILE).read_text(encoding="utf-8")
        )
        return bool(document.get("dedup", False))
    except (OSError, ValueError):
        return False


@dataclass
class DurableMonitor:
    """Crash-safe wrapper around one :class:`OnlineFenrir`."""

    name: str
    directory: Path
    tracker: OnlineFenrir
    seq: int = 0
    snapshot_every: int = 0  # 0 = only explicit snapshots
    fsync: bool = False
    replay: Optional[ReplayReport] = None
    registry: Optional[MetricsRegistry] = None  # observability sink, if any
    # Ingest-dedup mode (repro.vps): recurring identical rounds journal
    # a compact reference record instead of repeating the states.
    dedup: bool = False
    _journal: JournalWriter = field(init=False, repr=False)
    _since_snapshot: int = field(default=0, init=False, repr=False)
    _checkpoint_updates: int = field(default=0, init=False, repr=False)
    _checkpoint_exemplars: int = field(default=0, init=False, repr=False)
    # Recurring-round fast path: routing results recur, so consecutive
    # rounds usually carry the same states mapping. Cache the last
    # validated mapping and its canonical JSON fragment; a repeat skips
    # re-validation and re-serialization (the journal bytes are
    # identical either way — see journal.record_line).
    _last_states: Optional[dict] = field(default=None, init=False, repr=False)
    _last_states_json: Optional[str] = field(default=None, init=False, repr=False)
    # The most recent *full* record in the current journal file — the
    # only legal target for a dedup reference. Tracked unconditionally
    # (cheap) so toggling dedup on mid-stream is immediately correct,
    # and cleared on every journal reset because references never cross
    # one. After open() it starts as None: the first post-recovery round
    # is journaled full even if it repeats, which keeps recovery free of
    # any re-derivation of the tail's last full line.
    _last_full_seq: Optional[int] = field(default=None, init=False, repr=False)
    _last_full_json: Optional[str] = field(default=None, init=False, repr=False)
    deduped_records: int = field(default=0, init=False, repr=False)
    dedup_bytes_saved: int = field(default=0, init=False, repr=False)
    _dedup_records_counter: Optional[Counter] = field(
        default=None, init=False, repr=False
    )
    _dedup_bytes_counter: Optional[Counter] = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        flush_histogram = (
            self.registry.histogram(
                "serve_journal_fsync_seconds",
                help="Journal group-commit latency (write + flush + fsync)",
            )
            if self.registry is not None
            else None
        )
        self._journal = JournalWriter(
            self.directory / JOURNAL_FILE,
            fsync=self.fsync,
            flush_histogram=flush_histogram,
        )
        if self.registry is not None:
            self._dedup_records_counter = self.registry.counter(
                "serve_dedup_records_total",
                labels={"monitor": self.name},
                help="Recurring rounds journaled as compact dedup references",
            )
            self._dedup_bytes_counter = self.registry.counter(
                "serve_dedup_bytes_saved_total",
                labels={"monitor": self.name},
                help="Journal bytes saved by dedup reference records",
            )
        # The tracker state as constructed is what the on-disk
        # checkpoint chain currently covers (create() snapshots the
        # empty tracker; open() restores from the chain); record it so
        # the first incremental checkpoint writes only newer rounds.
        self._checkpoint_updates = len(self.tracker.updates)
        self._checkpoint_exemplars = self.tracker.num_modes

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        data_dir: Path | str,
        name: str,
        networks: Sequence[str],
        event_threshold: float = 0.1,
        mode_threshold: float = 0.7,
        policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
        weights: Optional[Sequence[float]] = None,
        snapshot_every: int = 0,
        fsync: bool = False,
        registry: Optional[MetricsRegistry] = None,
        dedup: bool = False,
    ) -> "DurableMonitor":
        """Create a new monitor directory with an initial checkpoint."""
        if not valid_monitor_name(name):
            raise MonitorError(f"invalid monitor name: {name!r}")
        directory = Path(data_dir) / name
        if directory.exists():
            raise MonitorError(f"monitor already exists: {name!r}")
        # Build (and thereby validate — thresholds, weight shape and
        # signs) the tracker *before* touching the filesystem, so a bad
        # config cannot leave an empty monitor directory behind.
        tracker = OnlineFenrir(
            networks=networks,
            event_threshold=event_threshold,
            mode_threshold=mode_threshold,
            policy=policy,
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
        )
        directory.mkdir(parents=True)
        # Checkpoint the empty tracker immediately: a monitor that was
        # created but never ingested still reopens with its config.
        write_snapshot(directory, 0, tracker.to_state())
        monitor = cls(
            name=name,
            directory=directory,
            tracker=tracker,
            seq=0,
            snapshot_every=snapshot_every,
            fsync=fsync,
            registry=registry,
            dedup=dedup,
        )
        if dedup:
            monitor._write_options()
        return monitor

    @classmethod
    def open(
        cls,
        data_dir: Path | str,
        name: str,
        snapshot_every: int = 0,
        fsync: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> "DurableMonitor":
        """Recover a monitor from its snapshot plus journal replay."""
        if not valid_monitor_name(name):
            raise MonitorError(f"invalid monitor name: {name!r}")
        directory = Path(data_dir) / name
        started = _time.perf_counter()
        with span("serve.replay", monitor=name):
            snapshot_seq, state = read_snapshot(directory)
            tracker = OnlineFenrir.from_state(state)
            chain_updates = len(tracker.updates)
            chain_exemplars = tracker.num_modes
            records, tail = read_journal(
                directory / JOURNAL_FILE, after_seq=snapshot_seq
            )
            skipped = 0
            # Replay through the same batched apply path ingest_batch
            # uses. A record that parses but cannot be applied (e.g.
            # written by an older server without pre-journal validation)
            # was never acknowledged — validation happens before the
            # append, so an apply failure implies the ack never went
            # out. Skip it and report rather than leaving the monitor
            # permanently unopenable; ingest() appends nothing on
            # failure, so the update count tells us exactly where to
            # resume.
            remaining = records
            while remaining:
                applied_before = len(tracker.updates)
                try:
                    tracker.ingest_many(
                        [(record.states, record.time) for record in remaining]
                    )
                    remaining = []
                except Exception:
                    applied_now = len(tracker.updates) - applied_before
                    skipped += 1
                    if registry is not None:
                        registry.counter(
                            "serve_replay_skipped_records_total",
                            labels={"monitor": name},
                            help="journal records skipped during replay",
                        ).inc()
                    remaining = remaining[applied_now + 1:]
        seq = records[-1].seq if records else snapshot_seq
        monitor = cls(
            name=name,
            directory=directory,
            tracker=tracker,
            seq=seq,
            snapshot_every=snapshot_every,
            fsync=fsync,
            registry=registry,
            dedup=_read_options(directory),
            replay=ReplayReport(
                snapshot_seq=snapshot_seq,
                replayed_records=len(records) - skipped,
                dropped_lines=tail.dropped_lines if tail else 0,
                elapsed_seconds=_time.perf_counter() - started,
                tail=tail,
                skipped_records=skipped,
            ),
        )
        # The on-disk checkpoint chain covers only the snapshot's state;
        # replayed rounds still live in the journal. Point the
        # incremental bookkeeping at the chain, not the live tracker, so
        # the next checkpoint() folds the replayed rounds in instead of
        # silently dropping them from the chain.
        monitor._checkpoint_updates = chain_updates
        monitor._checkpoint_exemplars = chain_exemplars
        monitor._since_snapshot = len(records) - skipped
        if tail is not None or skipped:
            # Dropped tails and skipped records are unacknowledged
            # garbage; rewrite the journal to the applied prefix so they
            # cannot shadow new seqs on the next recovery.
            monitor.snapshot()
        return monitor

    @classmethod
    def install(
        cls,
        data_dir: Path | str,
        name: str,
        seq: int,
        state: Mapping,
        snapshot_every: int = 0,
        fsync: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> "DurableMonitor":
        """Materialize a monitor from a shipped full ``to_state`` document.

        The receiving half of the ``handoff`` wire command: the state is
        validated (:meth:`OnlineFenrir.from_state` rejects deltas and
        malformed documents) *before* anything touches disk, then any
        stale incarnation's journal and delta segments are discarded and
        the shipped state becomes the new base snapshot at ``seq``. The
        returned monitor is immediately ingestable; replaying it later
        recovers exactly the shipped state.
        """
        if not valid_monitor_name(name):
            raise MonitorError(f"invalid monitor name: {name!r}")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise MonitorError(f"install seq must be a non-negative int: {seq!r}")
        try:
            tracker = OnlineFenrir.from_state(state)
        except (ValueError, KeyError, TypeError) as exc:
            raise MonitorError(f"uninstallable state: {exc}") from exc
        directory = Path(data_dir) / name
        directory.mkdir(parents=True, exist_ok=True)
        # A previous incarnation's journal/deltas describe history this
        # install supersedes; drop them before the snapshot lands so a
        # crash in between cannot resurrect them over the new base.
        (directory / JOURNAL_FILE).unlink(missing_ok=True)
        discard_deltas(directory)
        write_snapshot(directory, seq, dict(state))
        return cls(
            name=name,
            directory=directory,
            tracker=tracker,
            seq=seq,
            snapshot_every=snapshot_every,
            fsync=fsync,
            registry=registry,
            dedup=_read_options(directory),
        )

    def install_delta(self, seq: int, delta: Mapping) -> None:
        """Apply a shipped delta segment that chains from the live state.

        Replication followers call this on every sync: the delta is
        applied in memory first (:meth:`OnlineFenrir.apply_delta`
        raises on any chain mismatch before disk is touched), then
        persisted as a delta segment at ``seq`` and the journal is
        reset — the on-disk chain stays exactly equivalent to the
        in-memory tracker.
        """
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < self.seq:
            raise MonitorError(
                f"delta seq {seq!r} must be an int >= current seq {self.seq}"
            )
        try:
            self.tracker.apply_delta(delta)
        except (ValueError, KeyError, TypeError) as exc:
            raise MonitorError(f"unapplyable delta: {exc}") from exc
        write_delta(self.directory, seq, delta)
        self._reset_journal()
        self.seq = seq
        self._mark_checkpoint()

    def close(self) -> None:
        self._journal.close()

    # -- dedup ---------------------------------------------------------------

    def set_dedup(self, enabled: bool) -> None:
        """Toggle dedup-mode journaling; the setting survives restarts."""
        self.dedup = bool(enabled)
        self._write_options()

    def dedup_stats(self) -> dict:
        """Dedup status document (served by the ``dedup`` wire command)."""
        return {
            "mode": "on" if self.dedup else "off",
            "deduped_records": self.deduped_records,
            "bytes_saved": self.dedup_bytes_saved,
        }

    def _write_options(self) -> None:
        temp = self.directory / (OPTIONS_FILE + ".tmp")
        temp.write_text(
            json.dumps({"dedup": self.dedup}, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(temp, self.directory / OPTIONS_FILE)

    def _encode_line(self, record: JournalRecord, states_json: str) -> str:
        """The journal line for ``record``: full, or a dedup reference.

        In dedup mode a round whose canonical states JSON is
        byte-identical to the most recent full record's journals as a
        reference; replay materializes the states from the referenced
        line, so the recovered stream is byte-equal either way.
        """
        if (
            self.dedup
            and self._last_full_seq is not None
            and states_json == self._last_full_json
        ):
            ref = self._last_full_seq
            # Full line carries `"states":<json>,`; a ref line carries
            # `"ref":<seq>,` in its place.
            self._note_dedup(1, len(states_json) + 3 - len(str(ref)))
            return ref_record_line(record.seq, record.time, ref)
        self._last_full_seq = record.seq
        self._last_full_json = states_json
        return record_line(record, states_json)

    def _note_dedup(self, records: int, saved: int) -> None:
        self.deduped_records += records
        self.dedup_bytes_saved += saved
        if self._dedup_records_counter is not None:
            self._dedup_records_counter.inc(records)
        if self._dedup_bytes_counter is not None:
            self._dedup_bytes_counter.inc(saved)

    def _append_lines(self, lines: Sequence[str]) -> None:
        try:
            self._journal.append_lines(lines)
        except BaseException:
            # The append may not have landed; a later reference to a
            # record that never hit disk would poison replay. Force the
            # next round to journal full.
            self._last_full_seq = None
            self._last_full_json = None
            raise

    def _reset_journal(self) -> None:
        self._journal.reset()
        # References never cross a reset: the next record must be full.
        self._last_full_seq = None
        self._last_full_json = None

    # -- operations ----------------------------------------------------------

    def _clean_states(self, states: Mapping[str, str]) -> tuple[dict, str]:
        """Validated copy of ``states`` plus its canonical JSON fragment.

        A round repeating the previous round's mapping (the common case
        in a recurring-routing stream) reuses the already-validated
        dict and its serialization instead of redoing both.
        """
        if self._last_states is not None and states == self._last_states:
            return self._last_states, self._last_states_json
        clean = _validated_states(states)
        self._last_states = clean
        self._last_states_json = _canonical(clean)
        return clean, self._last_states_json

    def ingest(self, states: Mapping[str, str], when: datetime) -> OnlineUpdate:
        """Durably apply one measurement round.

        Order matters: validate, journal (flushed), then apply. The
        tracker apply cannot fail after validation, so a record is
        journaled iff its update is returned — an acknowledged round is
        exactly a replayable round.
        """
        with span("serve.ingest", monitor=self.name):
            clean, states_json = self._clean_states(states)
            last = self.tracker.last_time
            if last is not None and when <= last:
                raise MonitorError(
                    f"observations must move forward in time: {when} after {last}"
                )
            record = JournalRecord(seq=self.seq + 1, time=when, states=clean)
            self._append_lines((self._encode_line(record, states_json),))
            update = self.tracker.ingest(record.states, record.time)
            self.seq = record.seq
            self._since_snapshot += 1
            if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
                self.checkpoint()
            return update

    def ingest_batch(
        self, rounds: Sequence[tuple[Mapping[str, str], datetime]]
    ) -> BatchResult:
        """Durably apply many rounds under one group commit.

        Validation runs record by record, in order, *before* anything
        touches the journal: the valid prefix (everything up to the
        first bad states mapping or time-ordering violation) is then
        appended with a single flush/fsync, applied, and acknowledged
        together. The tracker apply cannot fail after validation, so —
        exactly as for single :meth:`ingest` — a record is journaled
        iff its update is returned. The journal bytes are identical to
        the equivalent sequence of single ingests.
        """
        with span("serve.ingest_batch", monitor=self.name, rounds=len(rounds)):
            last = self.tracker.last_time
            accepted: list[JournalRecord] = []
            lines: list[str] = []
            error_index: Optional[int] = None
            error: Optional[str] = None
            error_kind: Optional[str] = None
            for index, (states, when) in enumerate(rounds):
                try:
                    clean, states_json = self._clean_states(states)
                except MonitorError as exc:
                    error_index, error, error_kind = index, str(exc), "invalid_states"
                    break
                if last is not None and when <= last:
                    error_index = index
                    error = (
                        f"observations must move forward in time: {when} after {last}"
                    )
                    error_kind = "out_of_order"
                    break
                record = JournalRecord(
                    seq=self.seq + len(accepted) + 1, time=when, states=clean
                )
                accepted.append(record)
                lines.append(self._encode_line(record, states_json))
                last = when
            self._append_lines(lines)
            updates = self.tracker.ingest_many(
                [(record.states, record.time) for record in accepted]
            )
            self.seq += len(accepted)
            self._since_snapshot += len(accepted)
            if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
                self.checkpoint()
            return BatchResult(
                updates=tuple(updates),
                error_index=error_index,
                error=error,
                error_kind=error_kind,
            )

    def checkpoint(self) -> int:
        """Incremental checkpoint: persist only rounds since the last one.

        Writes a delta segment (O(rounds since last checkpoint) bytes,
        independent of total history) and resets the journal. This is
        what the ``snapshot_every`` cadence calls; an explicit
        :meth:`snapshot` compacts the chain back into one base file.
        """
        delta = self.tracker.to_state(
            updates_after=self._checkpoint_updates,
            exemplars_after=self._checkpoint_exemplars,
        )
        write_delta(self.directory, self.seq, delta)
        self._reset_journal()
        self._mark_checkpoint()
        return self.seq

    def snapshot(self) -> int:
        """Full checkpoint + compaction; returns the sequence captured.

        Rewrites the base snapshot from the live tracker, then discards
        the (now redundant) delta segments and journal. Crash-safe in
        any interleaving: leftover deltas carry a seq at or below the
        new base's and are skipped at read time, leftover journal
        entries likewise.
        """
        write_snapshot(self.directory, self.seq, self.tracker.to_state())
        discard_deltas(self.directory)
        self._reset_journal()
        self._mark_checkpoint()
        return self.seq

    def _mark_checkpoint(self) -> None:
        self._checkpoint_updates = len(self.tracker.updates)
        self._checkpoint_exemplars = self.tracker.num_modes
        self._since_snapshot = 0

    def describe(self) -> dict:
        """Summary document served by the ``query`` command."""
        tracker = self.tracker
        last = tracker.last_time
        return {
            "monitor": self.name,
            "networks": len(tracker.networks),
            "rounds": len(tracker.updates),
            "modes": tracker.num_modes,
            "events": tracker.num_events,
            "recurrences": tracker.num_recurrences,
            "seq": self.seq,
            "last_time": last.isoformat() if last else None,
            "current_mode": tracker.updates[-1].mode_id if tracker.updates else None,
            "dedup": self.dedup_stats(),
        }
