"""A durable monitor: one OnlineFenrir with a journal and snapshots.

The monitor is the unit of multiplexing in ``repro serve`` — one per
anycast service, enterprise, or website being watched. It owns a
directory under the server's data dir and guarantees that every
*acknowledged* ingest survives a process kill: the record is appended
to the write-ahead journal and flushed before the in-memory tracker
applies it, and recovery replays snapshot + journal back to exactly
the acknowledged prefix.
"""

from __future__ import annotations

import re
import time as _time
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.compare import UnknownPolicy
from ..core.online import OnlineFenrir, OnlineUpdate
from .journal import (
    JOURNAL_FILE,
    JournalRecord,
    JournalTail,
    JournalWriter,
    read_journal,
    read_snapshot,
    write_snapshot,
)

__all__ = ["MonitorError", "ReplayReport", "DurableMonitor", "valid_monitor_name"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_monitor_name(name: str) -> bool:
    """Names become directory names, so they must be path-safe."""
    return bool(_NAME_PATTERN.match(name)) and name not in (".", "..")


class MonitorError(ValueError):
    """Raised for invalid monitor operations (bad name, bad state)."""


@dataclass(frozen=True)
class ReplayReport:
    """What recovery did when a monitor was opened from disk."""

    snapshot_seq: int
    replayed_records: int
    dropped_lines: int
    elapsed_seconds: float
    tail: Optional[JournalTail] = None
    skipped_records: int = 0  # journaled but unapplyable (never acknowledged)


def _validated_states(states: Mapping[str, str]) -> dict[str, str]:
    """A plain ``{str: str}`` copy of ``states``, or :class:`MonitorError`.

    The journal must never accept a record the tracker cannot apply:
    non-string labels (JSON arrays, numbers, null) would raise only
    inside ``StateCatalog.code``, *after* the append, poisoning the
    journal for every later replay.
    """
    clean: dict[str, str] = {}
    for key, value in states.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise MonitorError(
                "states must map network names to state labels (strings); "
                f"got {key!r}: {value!r}"
            )
        clean[key] = value
    return clean


@dataclass
class DurableMonitor:
    """Crash-safe wrapper around one :class:`OnlineFenrir`."""

    name: str
    directory: Path
    tracker: OnlineFenrir
    seq: int = 0
    snapshot_every: int = 0  # 0 = only explicit snapshots
    fsync: bool = False
    replay: Optional[ReplayReport] = None
    _journal: JournalWriter = field(init=False, repr=False)
    _since_snapshot: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._journal = JournalWriter(self.directory / JOURNAL_FILE, fsync=self.fsync)

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        data_dir: Path | str,
        name: str,
        networks: Sequence[str],
        event_threshold: float = 0.1,
        mode_threshold: float = 0.7,
        policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
        weights: Optional[Sequence[float]] = None,
        snapshot_every: int = 0,
        fsync: bool = False,
    ) -> "DurableMonitor":
        """Create a new monitor directory with an initial checkpoint."""
        if not valid_monitor_name(name):
            raise MonitorError(f"invalid monitor name: {name!r}")
        directory = Path(data_dir) / name
        if directory.exists():
            raise MonitorError(f"monitor already exists: {name!r}")
        directory.mkdir(parents=True)
        tracker = OnlineFenrir(
            networks=networks,
            event_threshold=event_threshold,
            mode_threshold=mode_threshold,
            policy=policy,
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
        )
        # Checkpoint the empty tracker immediately: a monitor that was
        # created but never ingested still reopens with its config.
        write_snapshot(directory, 0, tracker.to_state())
        return cls(
            name=name,
            directory=directory,
            tracker=tracker,
            seq=0,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )

    @classmethod
    def open(
        cls,
        data_dir: Path | str,
        name: str,
        snapshot_every: int = 0,
        fsync: bool = False,
    ) -> "DurableMonitor":
        """Recover a monitor from its snapshot plus journal replay."""
        if not valid_monitor_name(name):
            raise MonitorError(f"invalid monitor name: {name!r}")
        directory = Path(data_dir) / name
        started = _time.perf_counter()
        snapshot_seq, state = read_snapshot(directory)
        tracker = OnlineFenrir.from_state(state)
        records, tail = read_journal(directory / JOURNAL_FILE, after_seq=snapshot_seq)
        skipped = 0
        for record in records:
            # A record that parses but cannot be applied (e.g. written by
            # an older server without pre-journal validation) was never
            # acknowledged — validation happens before the append, so an
            # apply failure implies the ack never went out. Skip it and
            # report rather than leaving the monitor permanently unopenable.
            try:
                tracker.ingest(record.states, record.time)
            except Exception:
                skipped += 1
        seq = records[-1].seq if records else snapshot_seq
        monitor = cls(
            name=name,
            directory=directory,
            tracker=tracker,
            seq=seq,
            snapshot_every=snapshot_every,
            fsync=fsync,
            replay=ReplayReport(
                snapshot_seq=snapshot_seq,
                replayed_records=len(records) - skipped,
                dropped_lines=tail.dropped_lines if tail else 0,
                elapsed_seconds=_time.perf_counter() - started,
                tail=tail,
                skipped_records=skipped,
            ),
        )
        if tail is not None or skipped:
            # Dropped tails and skipped records are unacknowledged
            # garbage; rewrite the journal to the applied prefix so they
            # cannot shadow new seqs on the next recovery.
            monitor.snapshot()
        return monitor

    def close(self) -> None:
        self._journal.close()

    # -- operations ----------------------------------------------------------

    def ingest(self, states: Mapping[str, str], when: datetime) -> OnlineUpdate:
        """Durably apply one measurement round.

        Order matters: validate, journal (flushed), then apply. The
        tracker apply cannot fail after validation, so a record is
        journaled iff its update is returned — an acknowledged round is
        exactly a replayable round.
        """
        clean = _validated_states(states)
        last = self.tracker.last_time
        if last is not None and when <= last:
            raise MonitorError(
                f"observations must move forward in time: {when} after {last}"
            )
        record = JournalRecord(seq=self.seq + 1, time=when, states=clean)
        self._journal.append(record)
        update = self.tracker.ingest(record.states, record.time)
        self.seq = record.seq
        self._since_snapshot += 1
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self.snapshot()
        return update

    def snapshot(self) -> int:
        """Checkpoint now; returns the sequence number captured."""
        write_snapshot(self.directory, self.seq, self.tracker.to_state())
        self._journal.reset()
        self._since_snapshot = 0
        return self.seq

    def describe(self) -> dict:
        """Summary document served by the ``query`` command."""
        tracker = self.tracker
        last = tracker.last_time
        return {
            "monitor": self.name,
            "networks": len(tracker.networks),
            "rounds": len(tracker.updates),
            "modes": tracker.num_modes,
            "events": len(tracker.events()),
            "recurrences": len(tracker.recurrences()),
            "seq": self.seq,
            "last_time": last.isoformat() if last else None,
            "current_mode": tracker.updates[-1].mode_id if tracker.updates else None,
        }
