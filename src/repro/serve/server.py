"""The ``repro serve`` asyncio server.

One process multiplexes many named monitors. Each monitor gets a
bounded ingest queue drained by a dedicated writer task, so one
flooded monitor cannot stall the others and overload is an *explicit
protocol answer* (``error: overloaded`` with the current queue depth)
rather than unbounded server-side buffering. All other commands are
answered inline on the connection handler.

Durability contract: an ``ok`` ingest response is sent only after the
record is journaled and applied, so every acknowledged round survives
a kill — see :mod:`repro.serve.journal` for the recovery half.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from .cluster import ReplicationFollower

from ..classify.features import FEATURE_WIDTH, featurize_mappings
from ..classify.model import ClassifierModel, ModelError
from ..core.compare import UnknownPolicy
from ..obs import CONTENT_TYPE, MetricsRegistry, render_prometheus
from ..vps import PlanError, VPPlan
from .journal import SNAPSHOT_FILE, JournalError
from .metrics import ServerMetrics
from .monitor import DurableMonitor, MonitorError, valid_monitor_name
from .ring import HashRing
from . import protocol
from .protocol import (
    ERR_BAD_FRAME,
    ERR_BAD_REQUEST,
    ERR_FRAME_TOO_LARGE,
    ERR_INTERNAL,
    ERR_MONITOR_EXISTS,
    ERR_NO_SUCH_MONITOR,
    ERR_OUT_OF_ORDER,
    ERR_OVERLOADED,
    FrameError,
    FrameTooLarge,
    error_response,
)

__all__ = ["ServeConfig", "FenrirServer", "VPPLAN_FILE", "CLASSIFIER_FILE"]

#: A monitor created from a VP plan keeps the plan in its directory so
#: operators (and the ``vps`` query) can trace kept VPs and weights.
VPPLAN_FILE = "vpplan.json"

#: An installed classifier model lives in the monitor directory and is
#: re-armed (though not re-streamed) across restarts.
CLASSIFIER_FILE = "classifier.json"

#: How many recent streaming classifications each monitor retains for
#: the ``classify`` report.
_CLASSIFIED_WINDOW = 64


@dataclass
class ServeConfig:
    """Tunables for one server process."""

    data_dir: Path
    host: str = "127.0.0.1"
    port: int = 7339  # 0 = let the OS pick (printed/queryable after start)
    queue_size: int = 256
    snapshot_every: int = 1000  # auto-checkpoint cadence per monitor; 0 = never
    max_frame: int = protocol.MAX_FRAME
    fsync: bool = False
    #: Pipelining cap: how many requests one connection may have in
    #: flight before further frames are answered with an ``overloaded``
    #: error (docs/async-client.md). One-at-a-time clients never notice.
    max_inflight: int = 512

    def __post_init__(self) -> None:
        self.data_dir = Path(self.data_dir)
        if self.queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")


@dataclass
class _MonitorRuntime:
    """A monitor plus its ingest queue and writer task."""

    monitor: DurableMonitor
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    worker: Optional[asyncio.Task] = None
    # Route-change classification (docs/classification.md): the armed
    # model, whether streaming labels on mode transitions is on, the
    # previous ingested round (the "before" side of a transition), and
    # the recent labeled events served by the `classify` report.
    classifier: Optional[ClassifierModel] = None
    classify_stream: bool = False
    last_states: Optional[dict] = None
    classified: deque = field(
        default_factory=lambda: deque(maxlen=_CLASSIFIED_WINDOW)
    )


class FenrirServer:
    """Asyncio JSON-frames-over-TCP server around durable monitors."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        # One registry per server: the single sink behind both the
        # `stats` counters/percentiles and the `metrics` Prometheus
        # exposition. Monitors and journals report into it too.
        self.registry = MetricsRegistry()
        self.metrics = ServerMetrics(registry=self.registry)
        self._monitors: dict[str, _MonitorRuntime] = {}
        self._failed: dict[str, str] = {}  # monitor name -> recovery error
        self._server: Optional[asyncio.AbstractServer] = None
        # When this process is a replication follower, the cluster glue
        # (repro.serve.cluster) attaches the sync loop here so the
        # `promote` command can stop it and take writes.
        self.follower: Optional["ReplicationFollower"] = None
        self._started = time.time()
        self.registry.gauge(
            "serve_uptime_seconds", help="Seconds since this server constructed"
        ).set_function(lambda: time.time() - self._started)
        # Pipelining instrumentation: total requests currently being
        # dispatched (all connections) and, per request arrival, how
        # full the per-connection in-flight window was.
        self._inflight = 0
        self.registry.gauge(
            "serve_inflight_requests",
            help="Requests currently in flight across all connections",
        ).set_function(lambda: self._inflight)
        self._fill_histogram = self.registry.histogram(
            "serve_pipeline_fill_ratio",
            buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            help="Per-connection in-flight depth over max_inflight, "
            "observed at each request arrival",
        )
        # Classification instrumentation (docs/classification.md):
        # request counts, streaming labels emitted, and how long one
        # featurize+predict takes.
        self._classify_requests = self.registry.counter(
            "classify_requests_total",
            help="classify wire commands handled",
        )
        self._classify_stream_events = self.registry.counter(
            "classify_stream_events_total",
            help="Mode transitions labeled by the streaming classifier",
        )
        self._classify_latency = self.registry.histogram(
            "classify_latency_seconds",
            help="Featurize + predict time per classification",
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover every monitor found under data_dir, then listen."""
        self.config.data_dir.mkdir(parents=True, exist_ok=True)
        for entry in sorted(self.config.data_dir.iterdir()):
            if not entry.is_dir() or not (entry / SNAPSHOT_FILE).exists():
                continue
            if not valid_monitor_name(entry.name):
                continue
            try:
                monitor = DurableMonitor.open(
                    self.config.data_dir,
                    entry.name,
                    snapshot_every=self.config.snapshot_every,
                    fsync=self.config.fsync,
                    registry=self.registry,
                )
            except Exception as exc:
                # One unrecoverable monitor (corrupt snapshot, bad state)
                # must not take down every healthy one; serve the rest and
                # surface the failure through stats.
                self._failed[entry.name] = f"{type(exc).__name__}: {exc}"
                self.metrics.increment("monitors_failed")
                self.metrics.internal_error("recover")
                continue
            self._register(monitor)
            if monitor.replay:
                self.metrics.increment("monitors_recovered")
                self.metrics.increment(
                    "replayed_records", monitor.replay.replayed_records
                )
                self.metrics.latency.observe(
                    "replay", monitor.replay.elapsed_seconds
                )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful when port 0 was requested."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self.follower is not None:
            await self.follower.stop()
            self.follower = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for runtime in self._monitors.values():
            if runtime.worker is not None:
                runtime.worker.cancel()
            runtime.monitor.close()

    def _register(self, monitor: DurableMonitor) -> _MonitorRuntime:
        runtime = _MonitorRuntime(
            monitor=monitor,
            queue=asyncio.Queue(maxsize=self.config.queue_size),
        )
        classifier_path = monitor.directory / CLASSIFIER_FILE
        if classifier_path.exists():
            try:
                runtime.classifier = ClassifierModel.load(classifier_path)
            except (ModelError, OSError):
                # A bad artifact must not block the monitor itself;
                # classification stays unarmed and the failure is
                # visible in the error series.
                self.metrics.internal_error("classifier_load")
        runtime.worker = asyncio.get_running_loop().create_task(
            self._drain_ingests(runtime)
        )
        self._monitors[monitor.name] = runtime
        # Depth is read from the live queue at collection time rather
        # than mirrored on every put/get — the ingest path stays clean.
        self.registry.gauge(
            "serve_queue_depth",
            labels={"monitor": monitor.name},
            help="Pending ingests in the monitor's bounded queue",
        ).set_function(runtime.queue.qsize)
        self.registry.gauge(
            "serve_queue_capacity", labels={"monitor": monitor.name}
        ).set(self.config.queue_size)
        return runtime

    # -- ingest path ---------------------------------------------------------

    def _count_update(self, update: Any) -> None:
        self.metrics.increment("rounds_ingested")
        if update.is_event:
            self.metrics.increment("events_detected")
        if update.is_new_mode:
            self.metrics.increment("modes_opened")
        if update.recurred:
            self.metrics.increment("recurrences")

    async def _drain_ingests(self, runtime: _MonitorRuntime) -> None:
        """Writer task: journal + apply queued ingests one at a time.

        Queue entries are tagged ``("one", (states, when), future)`` or
        ``("batch", rounds, future)``; batches go through the monitor's
        group-commit path (one journal flush for the whole batch).
        """
        while True:
            kind, payload, future = await runtime.queue.get()
            try:
                if kind == "one":
                    states, when = payload
                    update = runtime.monitor.ingest(states, when)
                    self._count_update(update)
                    self._stream_classify(runtime, states, update)
                    # Capture seq now, before yielding: by the time the
                    # requesting coroutine resumes, this task may have
                    # applied later records for other connections.
                    result = (runtime.monitor.seq, update)
                else:
                    batch = runtime.monitor.ingest_batch(payload)
                    self.metrics.increment("batches_ingested")
                    for (states, _when), update in zip(payload, batch.updates):
                        self._count_update(update)
                        self._stream_classify(runtime, states, update)
                    result = (runtime.monitor.seq, batch)
            except Exception as exc:
                # MonitorError is a routine client rejection (out of
                # order, bad round) answered with its own error code —
                # only count genuinely unexpected failures here.
                if not isinstance(exc, MonitorError):
                    self.metrics.internal_error("writer")
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                runtime.queue.task_done()

    def _stream_classify(
        self, runtime: _MonitorRuntime, states: dict, update: Any
    ) -> None:
        """Label a just-ingested mode transition, if streaming is armed.

        Runs on the writer task between ingests; a classification
        failure must never fail (or slow) the acknowledged ingest, so
        errors are counted and dropped. The previous round is always
        captured — it is the "before" side of the next transition.
        """
        previous = runtime.last_states
        runtime.last_states = dict(states)
        if (
            not runtime.classify_stream
            or runtime.classifier is None
            or previous is None
            or not update.is_event
        ):
            return
        started = time.perf_counter()
        try:
            features = featurize_mappings(previous, states)
            label, scores = runtime.classifier.predict(features)
        except Exception:
            self.metrics.internal_error("classify")
            return
        self._classify_latency.observe(time.perf_counter() - started)
        self._classify_stream_events.inc()
        runtime.classified.append(
            {
                "time": update.time.isoformat(),
                "label": label,
                "scores": scores,
                "mode_id": update.mode_id,
                "is_new_mode": update.is_new_mode,
            }
        )

    async def _ingest(self, request: dict, request_id: object) -> dict:
        runtime = self._runtime_for(request)
        when = _parse_time(request.get("time"))
        states = request.get("states")
        if not isinstance(states, dict):
            raise _RequestError(ERR_BAD_REQUEST, "ingest needs a 'states' object")
        for key, value in states.items():
            if not isinstance(key, str) or not isinstance(value, str):
                raise _RequestError(
                    ERR_BAD_REQUEST,
                    "'states' must map network names to state label strings; "
                    f"got {key!r}: {value!r}",
                )
        future = self._enqueue(runtime, "one", (states, when))
        if future is None:
            return self._overloaded_response(runtime, request_id)
        try:
            seq, update = await future
        except MonitorError as exc:
            return error_response(ERR_OUT_OF_ORDER, str(exc), request_id)
        except Exception as exc:
            # The writer task forwards whatever the apply raised; answer
            # rather than letting it kill the connection handler.
            self.metrics.increment("ingest_failures")
            self.metrics.internal_error("ingest")
            return error_response(
                ERR_INTERNAL, f"{type(exc).__name__}: {exc}", request_id
            )
        return {
            "id": request_id,
            "ok": True,
            "seq": seq,
            "update": _update_document(update),
        }

    def _enqueue(
        self, runtime: _MonitorRuntime, kind: str, payload: Any
    ) -> Optional[asyncio.Future]:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            runtime.queue.put_nowait((kind, payload, future))
        except asyncio.QueueFull:
            self.metrics.increment("overload_rejections")
            return None
        return future

    def _overloaded_response(self, runtime: _MonitorRuntime, request_id: object) -> dict:
        return error_response(
            ERR_OVERLOADED,
            f"monitor {runtime.monitor.name!r} ingest queue is full",
            request_id,
            queue_depth=runtime.queue.qsize(),
        )

    async def _ingest_batch(self, request: dict, request_id: object) -> dict:
        """Batched ingest: valid prefix applied + acked under one commit.

        The response is ``ok: true`` whenever the *request shape* was
        acceptable, even if some trailing records were rejected:
        ``results`` holds one update document per applied record, and
        ``failed`` (null on full success) reports the first rejected
        record's index, error code, and message. Everything before
        ``failed.index`` is durable; everything at and after it was not
        applied.
        """
        runtime = self._runtime_for(request)
        rounds = request.get("rounds")
        if not isinstance(rounds, list):
            raise _RequestError(ERR_BAD_REQUEST, "ingest_batch needs a 'rounds' list")
        parsed, shape_failure = _parse_rounds(rounds)
        future = self._enqueue(runtime, "batch", parsed)
        if future is None:
            return self._overloaded_response(runtime, request_id)
        try:
            seq, batch = await future
        except Exception as exc:
            self.metrics.increment("ingest_failures")
            self.metrics.internal_error("ingest_batch")
            return error_response(
                ERR_INTERNAL, f"{type(exc).__name__}: {exc}", request_id
            )
        # A monitor-level rejection happened inside the parsed prefix,
        # so it precedes (and supersedes) any shape failure.
        if batch.error_index is not None:
            code = (
                ERR_OUT_OF_ORDER
                if batch.error_kind == "out_of_order"
                else ERR_BAD_REQUEST
            )
            failed = {
                "index": batch.error_index,
                "error": code,
                "message": batch.error,
            }
        elif shape_failure is not None:
            index, message = shape_failure
            failed = {"index": index, "error": ERR_BAD_REQUEST, "message": message}
        else:
            failed = None
        return {
            "id": request_id,
            "ok": True,
            "seq": seq,
            "accepted": batch.accepted,
            "results": [_update_document(update) for update in batch.updates],
            "failed": failed,
        }

    # -- other commands ------------------------------------------------------

    def _runtime_for(self, request: dict) -> _MonitorRuntime:
        name = request.get("monitor")
        if not isinstance(name, str):
            raise _RequestError(ERR_BAD_REQUEST, "request needs a 'monitor' name")
        runtime = self._monitors.get(name)
        if runtime is None:
            raise _RequestError(ERR_NO_SUCH_MONITOR, f"no such monitor: {name!r}")
        return runtime

    def _create(self, request: dict, request_id: object) -> dict:
        name = request.get("monitor")
        networks = request.get("networks")
        if not isinstance(name, str) or not valid_monitor_name(name):
            raise _RequestError(ERR_BAD_REQUEST, f"invalid monitor name: {name!r}")
        if name in self._monitors:
            raise _RequestError(ERR_MONITOR_EXISTS, f"monitor exists: {name!r}")
        if not isinstance(networks, list) or not networks:
            raise _RequestError(
                ERR_BAD_REQUEST, "create needs a non-empty 'networks' list"
            )
        try:
            policy = UnknownPolicy(request.get("policy", "pessimistic"))
        except ValueError as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        weights = request.get("weights")
        if weights is not None:
            if not isinstance(weights, list) or not all(
                isinstance(w, (int, float)) and not isinstance(w, bool)
                for w in weights
            ):
                raise _RequestError(
                    ERR_BAD_REQUEST, "'weights' must be a list of numbers"
                )
        try:
            monitor = DurableMonitor.create(
                self.config.data_dir,
                name,
                networks=[str(network) for network in networks],
                event_threshold=float(request.get("event_threshold", 0.1)),
                mode_threshold=float(request.get("mode_threshold", 0.7)),
                policy=policy,
                weights=weights,
                snapshot_every=self.config.snapshot_every,
                fsync=self.config.fsync,
                registry=self.registry,
                dedup=bool(request.get("dedup", False)),
            )
        except (MonitorError, ValueError) as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        self._register(monitor)
        self.metrics.increment("monitors_created")
        return {"id": request_id, "ok": True, "monitor": name}

    def _vps(self, request: dict, request_id: object) -> dict:
        """Create a monitor from a VP plan, or report the stored plan.

        With a ``plan`` object the request creates a new monitor whose
        networks are the plan's kept VPs and whose Φ weights are the
        plan's rescaled per-VP weights (dedup defaults on — a reduced
        stream is exactly the workload dedup targets); the plan is kept
        in the monitor directory. Without ``plan`` it reports the
        stored plan summary plus the live dedup stats.
        """
        plan_document = request.get("plan")
        if plan_document is None:
            runtime = self._runtime_for(request)
            plan_path = runtime.monitor.directory / VPPLAN_FILE
            summary = None
            if plan_path.exists():
                plan = VPPlan.load(plan_path)
                summary = {
                    "kept": plan.budget,
                    "total_networks": plan.total_networks,
                    "volume_fraction": plan.volume_fraction,
                    "provenance": dict(plan.provenance),
                }
            return {
                "id": request_id,
                "ok": True,
                "monitor": runtime.monitor.name,
                "plan": summary,
                "dedup": runtime.monitor.dedup_stats(),
            }
        name = request.get("monitor")
        if not isinstance(name, str) or not valid_monitor_name(name):
            raise _RequestError(ERR_BAD_REQUEST, f"invalid monitor name: {name!r}")
        if name in self._monitors:
            raise _RequestError(ERR_MONITOR_EXISTS, f"monitor exists: {name!r}")
        try:
            plan = VPPlan.from_document(plan_document)
        except PlanError as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        try:
            policy = UnknownPolicy(request.get("policy", "pessimistic"))
        except ValueError as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        dedup = bool(request.get("dedup", True))
        try:
            monitor = DurableMonitor.create(
                self.config.data_dir,
                name,
                networks=list(plan.kept),
                event_threshold=float(request.get("event_threshold", 0.1)),
                mode_threshold=float(request.get("mode_threshold", 0.7)),
                policy=policy,
                weights=[plan.weights[vp] for vp in plan.kept],
                snapshot_every=self.config.snapshot_every,
                fsync=self.config.fsync,
                registry=self.registry,
                dedup=dedup,
            )
        except (MonitorError, ValueError) as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        plan.save(monitor.directory / VPPLAN_FILE)
        self._register(monitor)
        self.metrics.increment("monitors_created")
        self.metrics.increment("vps_monitors_created")
        return {
            "id": request_id,
            "ok": True,
            "monitor": name,
            "kept": plan.budget,
            "total_networks": plan.total_networks,
            "volume_fraction": plan.volume_fraction,
            "dedup": dedup,
        }

    def _dedup(self, request: dict, request_id: object) -> dict:
        """Report (and optionally toggle) a monitor's dedup mode."""
        runtime = self._runtime_for(request)
        mode = request.get("mode")
        if mode is not None:
            if mode not in ("on", "off"):
                raise _RequestError(
                    ERR_BAD_REQUEST, f"'mode' must be 'on' or 'off', got {mode!r}"
                )
            runtime.monitor.set_dedup(mode == "on")
            self.metrics.increment("dedup_mode_changes")
        return {
            "id": request_id,
            "ok": True,
            "monitor": runtime.monitor.name,
            **runtime.monitor.dedup_stats(),
        }

    def _classify(self, request: dict, request_id: object) -> dict:
        """Classify a transition, manage the model, or report state.

        Four request shapes, dispatched on which argument is present:

        * ``model``: install a :class:`ClassifierModel` document — it
          is persisted to the monitor directory (re-armed on restart)
          and used for every later classification;
        * ``stream``: ``"on"``/``"off"`` toggles labeling mode
          transitions at ingest time (``"on"`` requires an installed
          model and resets the remembered previous round);
        * ``features`` (a full feature vector) or ``before``/``after``
          (raw ``{network: state}`` rounds, optional ``revert``):
          classify one transition and answer label + per-class scores;
        * none of the above: report the installed model summary, the
          streaming flag, and recent streamed labels.
        """
        runtime = self._runtime_for(request)
        self._classify_requests.inc()
        monitor_name = runtime.monitor.name

        model_document = request.get("model")
        if model_document is not None:
            try:
                model = ClassifierModel.from_document(model_document)
            except ModelError as exc:
                raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
            model.save(runtime.monitor.directory / CLASSIFIER_FILE)
            runtime.classifier = model
            self.metrics.increment("classify_models_installed")
            return {
                "id": request_id,
                "ok": True,
                "monitor": monitor_name,
                "installed": True,
                "model": model.summary(),
            }

        stream = request.get("stream")
        if stream is not None:
            if stream not in ("on", "off"):
                raise _RequestError(
                    ERR_BAD_REQUEST,
                    f"'stream' must be 'on' or 'off', got {stream!r}",
                )
            if stream == "on" and runtime.classifier is None:
                raise _RequestError(
                    ERR_BAD_REQUEST,
                    "streaming needs an installed model; send 'model' first",
                )
            runtime.classify_stream = stream == "on"
            # The first post-toggle round becomes the new "before";
            # anything remembered from earlier is stale.
            runtime.last_states = None
            return {
                "id": request_id,
                "ok": True,
                "monitor": monitor_name,
                "stream": runtime.classify_stream,
            }

        features = request.get("features")
        before = request.get("before")
        after = request.get("after")
        if features is not None or before is not None or after is not None:
            if runtime.classifier is None:
                raise _RequestError(
                    ERR_BAD_REQUEST,
                    "no classifier installed; send 'model' first",
                )
            started = time.perf_counter()
            if features is not None:
                if (
                    not isinstance(features, list)
                    or len(features) != FEATURE_WIDTH
                    or not all(
                        isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        for value in features
                    )
                ):
                    raise _RequestError(
                        ERR_BAD_REQUEST,
                        f"'features' must be a list of {FEATURE_WIDTH} numbers",
                    )
                vector = [float(value) for value in features]
            else:
                for key, mapping in (("before", before), ("after", after)):
                    if not isinstance(mapping, dict) or not all(
                        isinstance(k, str) and isinstance(v, str)
                        for k, v in mapping.items()
                    ):
                        raise _RequestError(
                            ERR_BAD_REQUEST,
                            f"'{key}' must map network names to state labels",
                        )
                revert = request.get("revert")
                if revert is not None and (
                    not isinstance(revert, dict)
                    or not all(
                        isinstance(k, str) and isinstance(v, str)
                        for k, v in revert.items()
                    )
                ):
                    raise _RequestError(
                        ERR_BAD_REQUEST,
                        "'revert' must map network names to state labels",
                    )
                vector = featurize_mappings(before, after, revert=revert).tolist()
            label, scores = runtime.classifier.predict(vector)
            self._classify_latency.observe(time.perf_counter() - started)
            return {
                "id": request_id,
                "ok": True,
                "monitor": monitor_name,
                "label": label,
                "scores": scores,
                "features": vector,
            }

        return {
            "id": request_id,
            "ok": True,
            "monitor": monitor_name,
            "model": (
                runtime.classifier.summary()
                if runtime.classifier is not None
                else None
            ),
            "stream": runtime.classify_stream,
            "recent": list(runtime.classified),
        }

    def _query(self, request: dict, request_id: object) -> dict:
        runtime = self._runtime_for(request)
        response = {"id": request_id, "ok": True, **runtime.monitor.describe()}
        states = request.get("states")
        if states is not None:
            if not isinstance(states, dict):
                raise _RequestError(ERR_BAD_REQUEST, "'states' must be an object")
            mode_id, similarity = runtime.monitor.tracker.match(states)
            response["match"] = {
                "mode_id": mode_id,
                "similarity": similarity,
                "would_open_new_mode": mode_id is None,
            }
        return response

    def _timeline(self, request: dict, request_id: object) -> dict:
        runtime = self._runtime_for(request)
        return {
            "id": request_id,
            "ok": True,
            "monitor": runtime.monitor.name,
            "segments": [
                {
                    "mode_id": mode_id,
                    "start": start.isoformat(),
                    "end": end.isoformat(),
                }
                for mode_id, start, end in runtime.monitor.tracker.mode_timeline()
            ],
        }

    def _stats(self, request_id: object) -> dict:
        document = self.metrics.snapshot()
        document["uptime_seconds"] = round(time.time() - self._started, 3)
        document["monitors"] = {
            name: {
                **runtime.monitor.describe(),
                "queue_depth": runtime.queue.qsize(),
                "queue_capacity": self.config.queue_size,
                "replay": (
                    {
                        "snapshot_seq": runtime.monitor.replay.snapshot_seq,
                        "replayed_records": runtime.monitor.replay.replayed_records,
                        "dropped_lines": runtime.monitor.replay.dropped_lines,
                        "skipped_records": runtime.monitor.replay.skipped_records,
                        "elapsed_seconds": round(
                            runtime.monitor.replay.elapsed_seconds, 6
                        ),
                    }
                    if runtime.monitor.replay
                    else None
                ),
            }
            for name, runtime in sorted(self._monitors.items())
        }
        document["failed_monitors"] = dict(sorted(self._failed.items()))
        return {"id": request_id, "ok": True, **document}

    # -- handoff / install / retire / promote (cluster support) --------------

    def _unregister(self, runtime: _MonitorRuntime) -> None:
        """Tear down a runtime: stop its writer, fail queued ingests."""
        if runtime.worker is not None:
            runtime.worker.cancel()
        while not runtime.queue.empty():
            _kind, _payload, future = runtime.queue.get_nowait()
            if not future.cancelled():
                future.set_exception(
                    MonitorError("monitor was replaced or retired mid-ingest")
                )
            runtime.queue.task_done()
        runtime.monitor.close()

    def install_state(self, name: str, seq: int, state: Mapping) -> _MonitorRuntime:
        """Install a shipped state document, replacing any current monitor.

        A ``kind: delta`` document is applied onto the existing monitor
        in O(delta) (it must chain exactly — the follower sync path);
        a full document replaces the monitor and its on-disk chain
        wholesale. Raises :class:`MonitorError` on anything that does
        not validate; nothing is mutated in that case.
        """
        if not isinstance(state, Mapping):
            raise MonitorError("install 'state' must be a state document object")
        existing = self._monitors.get(name)
        if state.get("kind") == "delta":
            if existing is None:
                raise MonitorError(
                    f"delta install for {name!r} needs an existing monitor"
                )
            existing.monitor.install_delta(seq, state)
            return existing
        monitor = DurableMonitor.install(
            self.config.data_dir,
            name,
            seq=seq,
            state=state,
            snapshot_every=self.config.snapshot_every,
            fsync=self.config.fsync,
            registry=self.registry,
        )
        if existing is not None:
            self._unregister(existing)
            del self._monitors[name]
        # A monitor that failed recovery is healed by a fresh install.
        self._failed.pop(name, None)
        return self._register(monitor)

    async def _handoff(self, request: dict, request_id: object) -> dict:
        """Export a monitor's state for shipping to another shard.

        With ``after_rounds`` the export is a delta segment covering
        only the rounds past that count (``kind: "delta"``, or
        ``"unchanged"`` when the caller is already current); without it
        the export is the full state. The monitor's queue is quiesced
        first so the export covers every acknowledged ingest.
        """
        runtime = self._runtime_for(request)
        await runtime.queue.join()
        monitor = runtime.monitor
        rounds = len(monitor.tracker.updates)
        after = request.get("after_rounds")
        if after is not None:
            if not isinstance(after, int) or isinstance(after, bool) or after < 0:
                raise _RequestError(
                    ERR_BAD_REQUEST, "'after_rounds' must be a non-negative int"
                )
            if after > rounds:
                raise _RequestError(
                    ERR_BAD_REQUEST,
                    f"'after_rounds' {after} is ahead of the monitor ({rounds})",
                )
            if after == rounds:
                self.metrics.increment("handoffs_served")
                return {
                    "id": request_id,
                    "ok": True,
                    "monitor": monitor.name,
                    "kind": "unchanged",
                    "seq": monitor.seq,
                    "rounds": rounds,
                }
            state = monitor.tracker.to_state(updates_after=after)
            kind = "delta"
        else:
            state = monitor.tracker.to_state()
            kind = "full"
        self.metrics.increment("handoffs_served")
        return {
            "id": request_id,
            "ok": True,
            "monitor": monitor.name,
            "kind": kind,
            "seq": monitor.seq,
            "rounds": rounds,
            "state": state,
        }

    def _install(self, request: dict, request_id: object) -> dict:
        name = request.get("monitor")
        if not isinstance(name, str) or not valid_monitor_name(name):
            raise _RequestError(ERR_BAD_REQUEST, f"invalid monitor name: {name!r}")
        seq = request.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise _RequestError(ERR_BAD_REQUEST, "install needs an int 'seq' >= 0")
        state = request.get("state")
        if not isinstance(state, dict):
            raise _RequestError(ERR_BAD_REQUEST, "install needs a 'state' object")
        try:
            runtime = self.install_state(name, seq, state)
        except MonitorError as exc:
            raise _RequestError(ERR_BAD_REQUEST, str(exc)) from exc
        self.metrics.increment("installs_applied")
        return {
            "id": request_id,
            "ok": True,
            "monitor": name,
            "seq": runtime.monitor.seq,
            "rounds": len(runtime.monitor.tracker.updates),
        }

    async def retire_monitor(self, name: str) -> int:
        """Drop a monitor and move its directory out of recovery's scan.

        The directory is renamed to ``_retired-<name>-<seq>`` — a
        leading underscore fails :func:`valid_monitor_name`, so restart
        recovery skips it — rather than deleted, keeping the data
        available for manual inspection after a rebalance. Returns the
        retired monitor's final seq; raises :class:`MonitorError` when
        no such monitor exists.
        """
        runtime = self._monitors.get(name)
        if runtime is None:
            raise MonitorError(f"no such monitor: {name!r}")
        await runtime.queue.join()
        seq = runtime.monitor.seq
        self._unregister(runtime)
        del self._monitors[name]
        directory = runtime.monitor.directory
        target = directory.with_name(f"_retired-{name}-{seq}")
        suffix = 0
        while target.exists():
            suffix += 1
            target = directory.with_name(f"_retired-{name}-{seq}.{suffix}")
        await asyncio.to_thread(os.rename, directory, target)
        self.metrics.increment("monitors_retired")
        return seq

    async def _retire(self, request: dict, request_id: object) -> dict:
        runtime = self._runtime_for(request)  # maps the usual error codes
        name = runtime.monitor.name
        seq = await self.retire_monitor(name)
        return {"id": request_id, "ok": True, "monitor": name, "seq": seq}

    async def _promote(self, request_id: object) -> dict:
        """Stop following a primary (if we were) and accept writes.

        Idempotent: promoting a server that was never a follower is an
        ``ok`` no-op, so the supervisor can fire-and-forget during
        failover races.
        """
        was_following = self.follower is not None
        if self.follower is not None:
            await self.follower.stop()
            self.follower = None
            self.metrics.increment("promotions")
        return {"id": request_id, "ok": True, "was_following": was_following}

    def _topology(self, request_id: object) -> dict:
        """The degenerate single-server topology.

        A ring-aware client asks ``topology`` to learn where to send
        monitor-scoped commands directly. A standalone server *is* the
        whole tier: one shard (id 0) at its own address, a one-member
        ring. The cluster router overrides this with the real ring —
        same response shape, so clients need not care which tier
        answered (docs/async-client.md).
        """
        host, port = self.address
        ring = HashRing.for_cluster(1)
        return {
            "id": request_id,
            "ok": True,
            "shards": {"0": [host, port]},
            "vnodes": ring.vnodes,
            "ring_digest": ring.digest(),
            "generation": 0,
            "router": False,
        }

    async def _snapshot(self, request: dict, request_id: object) -> dict:
        runtime = self._runtime_for(request)
        # Quiesce: let queued ingests land so the checkpoint covers them.
        await runtime.queue.join()
        seq = runtime.monitor.snapshot()
        self.metrics.increment("snapshots_taken")
        return {"id": request_id, "ok": True, "monitor": runtime.monitor.name, "seq": seq}

    # -- connection handling -------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        request_id = request.get("id")
        command = request.get("cmd")
        started = time.perf_counter()
        try:
            if command == "ingest":
                response = await self._ingest(request, request_id)
            elif command == "ingest_batch":
                response = await self._ingest_batch(request, request_id)
            elif command == "create":
                response = self._create(request, request_id)
            elif command == "query":
                response = self._query(request, request_id)
            elif command == "timeline":
                response = self._timeline(request, request_id)
            elif command == "stats":
                response = self._stats(request_id)
            elif command == "metrics":
                response = {
                    "id": request_id,
                    "ok": True,
                    "content_type": CONTENT_TYPE,
                    "text": render_prometheus(self.registry),
                }
            elif command == "vps":
                response = self._vps(request, request_id)
            elif command == "dedup":
                response = self._dedup(request, request_id)
            elif command == "classify":
                response = self._classify(request, request_id)
            elif command == "snapshot":
                response = await self._snapshot(request, request_id)
            elif command == "handoff":
                response = await self._handoff(request, request_id)
            elif command == "install":
                response = self._install(request, request_id)
            elif command == "retire":
                response = await self._retire(request, request_id)
            elif command == "promote":
                response = await self._promote(request_id)
            elif command == "topology":
                response = self._topology(request_id)
            elif command == "list":
                response = {
                    "id": request_id,
                    "ok": True,
                    "monitors": sorted(self._monitors),
                }
            else:
                response = error_response(
                    ERR_BAD_REQUEST, f"unknown command: {command!r}", request_id
                )
        except _RequestError as exc:
            response = error_response(exc.code, exc.message, request_id)
        except JournalError as exc:
            response = error_response(ERR_INTERNAL, str(exc), request_id)
        except Exception as exc:
            # Last-resort guard: every request gets an answer; an
            # unanswered client would hang until its socket timeout.
            self.metrics.increment("internal_errors")
            self.metrics.internal_error("dispatch")
            response = error_response(
                ERR_INTERNAL, f"{type(exc).__name__}: {exc}", request_id
            )
        if isinstance(command, str):
            self.metrics.latency.observe(command, time.perf_counter() - started)
        return response

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Pipelined request loop: many frames in flight per connection.

        Every request frame carries an ``id`` and every response echoes
        it, so responses may be written in *completion* order, not
        arrival order: each request is dispatched as its own task and
        its response written (under a per-connection lock — frames must
        never interleave mid-write) as soon as it is ready. A client
        that sends one request and waits — the blocking
        :class:`~repro.serve.client.ServeClient` — only ever has one
        task in flight and observes the exact pre-pipelining behaviour,
        byte for byte.

        Two bounds keep a fast sender honest: responses go through
        ``drain()``, so a slow reader backpressures its own connection;
        and at most ``max_inflight`` requests may be pending — further
        frames are answered immediately with an ``overloaded`` error
        carrying the current depth, the same explicit-backpressure
        contract as the bounded ingest queues.

        Ordering note: tasks are created in frame order and asyncio
        runs each new task synchronously up to its first suspension in
        that order, and ``_ingest``/``_ingest_batch`` enqueue onto the
        monitor's queue *before* first suspending — so pipelined
        ingests on one connection are applied in the order sent even
        though their responses may interleave.
        """
        self.metrics.increment("connections_accepted")
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()

        async def reply(response: dict) -> None:
            async with write_lock:
                await protocol.write_frame(writer, response, self.config.max_frame)

        async def dispatch_and_reply(request: dict) -> None:
            self._inflight += 1
            try:
                response = await self._dispatch(request)
                await reply(response)
            except (ConnectionError, OSError):
                pass  # peer vanished mid-response; reader loop will notice
            finally:
                self._inflight -= 1

        try:
            while True:
                try:
                    request = await protocol.read_frame(
                        reader, self.config.max_frame
                    )
                except FrameTooLarge as exc:
                    # The declared length is unreadable garbage or abuse;
                    # answer, then drop the connection (resync is
                    # impossible mid-stream).
                    self.metrics.increment("frames_oversized")
                    await reply(error_response(ERR_FRAME_TOO_LARGE, str(exc)))
                    break
                except FrameError as exc:
                    self.metrics.increment("frames_malformed")
                    try:
                        await reply(error_response(ERR_BAD_FRAME, str(exc)))
                    except (ConnectionError, OSError):
                        pass
                    break
                if request is None:
                    break
                self._fill_histogram.observe(
                    len(inflight) / self.config.max_inflight
                )
                if len(inflight) >= self.config.max_inflight:
                    self.metrics.increment("pipeline_overloads")
                    await reply(
                        error_response(
                            ERR_OVERLOADED,
                            f"connection has {len(inflight)} requests in "
                            f"flight (cap {self.config.max_inflight})",
                            request.get("id"),
                            in_flight=len(inflight),
                        )
                    )
                    continue
                task = loop.create_task(dispatch_and_reply(request))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing to answer
        finally:
            # The peer is gone (or sent garbage): nothing started after
            # this point could be answered, so cancel what is still
            # pending and wait the cancellations out before closing —
            # an enqueued ingest's future is simply abandoned (the
            # writer task checks ``future.cancelled()``).
            for task in list(inflight):
                task.cancel()
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # teardown during loop shutdown; socket is closed anyway


class _RequestError(Exception):
    """Internal: maps straight to an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def _parse_time(value: object) -> datetime:
    if not isinstance(value, str):
        raise _RequestError(ERR_BAD_REQUEST, "ingest needs an ISO-8601 'time'")
    try:
        return datetime.fromisoformat(value)
    except ValueError as exc:
        raise _RequestError(ERR_BAD_REQUEST, f"bad time {value!r}: {exc}") from exc


def _update_document(update: Any) -> dict:
    return {
        "time": update.time.isoformat(),
        "step_change": update.step_change,
        "is_event": update.is_event,
        "mode_id": update.mode_id,
        "is_new_mode": update.is_new_mode,
        "mode_similarity": update.mode_similarity,
        "recurred": update.recurred,
    }


def _parse_rounds(
    rounds: list,
) -> tuple[list[tuple[dict, datetime]], Optional[tuple[int, str]]]:
    """Shape-check a batch: the parseable prefix plus the first failure.

    Mirrors the monitor's valid-prefix contract at the wire layer: the
    returned prefix is every round up to (not including) the first one
    that is not ``{"time": <ISO-8601>, "states": {str: str}}``; the
    failure (when any) is ``(index, message)``. Deeper validation —
    string-ness of individual labels, time ordering — happens in
    :meth:`DurableMonitor.ingest_batch` so the journal contract has a
    single owner.
    """
    parsed: list[tuple[dict, datetime]] = []
    for index, item in enumerate(rounds):
        if not isinstance(item, dict):
            return parsed, (index, f"round {index} must be an object")
        states = item.get("states")
        if not isinstance(states, dict):
            return parsed, (index, f"round {index} needs a 'states' object")
        try:
            when = _parse_time(item.get("time"))
        except _RequestError as exc:
            return parsed, (index, f"round {index}: {exc.message}")
        parsed.append((states, when))
    return parsed, None
