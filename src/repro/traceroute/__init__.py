"""Traceroute substrate: scamper-like engine, enterprise sweeps, warts I/O."""

from .engine import Hop, TracerouteEngine, TracerouteRecord
from .enterprise import MultihomedEnterprise
from .warts import read_records, record_from_json, record_to_json, write_records

__all__ = [
    "Hop",
    "MultihomedEnterprise",
    "TracerouteEngine",
    "TracerouteRecord",
    "read_records",
    "record_from_json",
    "record_to_json",
    "write_records",
]
