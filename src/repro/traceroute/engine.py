"""A scamper-like traceroute engine over the BGP simulator.

Paths are AS-level: the forward path from the probing enterprise to a
destination block is the reverse of the destination AS's selected route
toward the enterprise prefix (symmetric-routing assumption, documented
in DESIGN.md). Each AS on the path contributes one or more router hops;
hops can fail to answer (ICMP filtering) or answer from private address
space — precisely the gaps the paper's spatial interpolation repairs.

Records mirror warts output: per-hop address, responding AS (when the
address maps to one) and cumulative RTT, truncated at ``max_ttl``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..bgp.topology import ASTopology
from ..net.addr import IPv4Address
from ..net.geo import GeoPoint

__all__ = ["Hop", "TracerouteRecord", "TracerouteEngine"]


@dataclass(frozen=True, slots=True)
class Hop:
    """One responding traceroute hop."""

    ttl: int
    address: IPv4Address
    asn: Optional[int]  # None when the address is private/unmappable
    rtt_ms: float


@dataclass
class TracerouteRecord:
    """One traceroute: destination plus per-TTL hops (None = no answer)."""

    destination: IPv4Address
    hops: list[Optional[Hop]] = field(default_factory=list)
    reached: bool = False

    def hop_ases(self) -> list[Optional[int]]:
        """Per-TTL responding AS (None for silent or private hops)."""
        return [hop.asn if hop is not None else None for hop in self.hops]

    def as_path(self) -> list[int]:
        """Deduplicated AS-level path from the responding hops."""
        path: list[int] = []
        for hop in self.hops:
            if hop is not None and hop.asn is not None:
                if not path or path[-1] != hop.asn:
                    path.append(hop.asn)
        return path


def _router_address(asn: int, index: int) -> IPv4Address:
    """A deterministic, globally unique-ish router address for an AS hop."""
    return IPv4Address((198 << 24) | ((asn & 0xFFFF) << 8) | (index & 0xFF))


_PRIVATE_BASE = 10 << 24


def _private_address(asn: int, index: int) -> IPv4Address:
    return IPv4Address(_PRIVATE_BASE | ((asn & 0xFFFF) << 8) | (index & 0xFF))


@dataclass
class TracerouteEngine:
    """Issues traceroutes given AS-level paths and a response model.

    * ``hop_response_probability`` — chance a router answers at all;
    * ``private_hop_ases`` — ASes whose routers answer from RFC 1918
      space (common inside enterprises), yielding unmappable hops;
    * ``per_as_hops`` — router hops contributed by each AS (>=1).
    """

    topology: ASTopology
    rng: random.Random
    max_ttl: int = 10
    hop_response_probability: float = 0.92
    private_hop_ases: frozenset[int] = frozenset()
    per_as_hops: int = 1
    base_rtt_per_hop_ms: float = 1.5

    def trace(
        self,
        as_path: Sequence[int],
        destination: IPv4Address,
    ) -> TracerouteRecord:
        """Run one traceroute along ``as_path`` (source AS first)."""
        record = TracerouteRecord(destination)
        rtt = 0.0
        previous_location: Optional[GeoPoint] = None
        ttl = 0
        for position, asn in enumerate(as_path):
            location = self.topology.nodes[asn].location if asn in self.topology else None
            if previous_location is not None and location is not None:
                rtt += previous_location.rtt_ms(location)
            previous_location = location or previous_location
            for sub_hop in range(self.per_as_hops):
                ttl += 1
                if ttl > self.max_ttl:
                    return record
                rtt += self.base_rtt_per_hop_ms * (0.5 + self.rng.random())
                if self.rng.random() >= self.hop_response_probability:
                    record.hops.append(None)  # ICMP filtered / rate limited
                    continue
                if asn in self.private_hop_ases:
                    record.hops.append(
                        Hop(ttl, _private_address(asn, sub_hop), None, rtt)
                    )
                    continue
                record.hops.append(
                    Hop(ttl, _router_address(asn, position * 4 + sub_hop), asn, rtt)
                )
        record.reached = ttl <= self.max_ttl
        return record
