"""Multi-homed enterprise measurement (§2.3.2, §4.1).

The enterprise announces its prefix to several upstream providers; the
global routing computation then fixes, for every destination network,
which chain of transit ASes carries its traffic. A traceroute sweep out
of the enterprise walks those paths, and the *catchment at focus hop h*
is the AS observed h hops out — the paper studies hop 3 for USC.

Traceroute gaps (silent or private hops) are repaired spatially with
:func:`repro.core.cleaning.nearest_viable_hop`, as §2.4 prescribes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional, Sequence

from ..bgp.clients import ClientSpace
from ..bgp.events import Event, RoutingScenario
from ..bgp.policy import Announcement
from ..bgp.topology import ASTopology
from ..core.cleaning import nearest_viable_hop
from ..net.addr import IPv4Prefix
from .engine import TracerouteEngine, TracerouteRecord

__all__ = ["MultihomedEnterprise"]


@dataclass
class MultihomedEnterprise:
    """An enterprise AS, its scripted routing life, and its sweeps."""

    topology: ASTopology
    enterprise_asn: int
    clients: ClientSpace
    rng: random.Random
    as_names: dict[int, str] = field(default_factory=dict)
    events: Sequence[Event] = ()
    engine: Optional[TracerouteEngine] = None
    # Standing ingress TE: per-provider prepending on the enterprise's
    # announcement (how multi-homed sites steer inbound traffic onto a
    # preferred upstream).
    announcement_prepend: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scenario = RoutingScenario(
            self.topology,
            [
                Announcement(
                    origin=self.enterprise_asn,
                    label="enterprise",
                    prepend=dict(self.announcement_prepend),
                )
            ],
            list(self.events),
        )
        if self.engine is None:
            self.engine = TracerouteEngine(
                self.topology,
                self.rng,
                private_hop_ases=frozenset({self.enterprise_asn}),
            )

    def add_event(self, event: Event) -> None:
        self.scenario.add_event(event)

    def name_of(self, asn: Optional[int]) -> Optional[str]:
        if asn is None:
            return None
        return self.as_names.get(asn, f"AS{asn}")

    def forward_as_path(self, block: IPv4Prefix, when: datetime) -> Optional[list[int]]:
        """Enterprise→destination AS path (reverse of the selected route)."""
        destination_asn = self.clients.as_of(block)
        path = self.scenario.outcome_at(when).path_of(destination_asn)
        if path is None:
            return None
        return list(reversed(path))

    def sweep(
        self, when: datetime, blocks: Optional[Sequence[IPv4Prefix]] = None
    ) -> dict[IPv4Prefix, TracerouteRecord]:
        """Traceroute every block (default: all client blocks)."""
        assert self.engine is not None
        records: dict[IPv4Prefix, TracerouteRecord] = {}
        for block in blocks if blocks is not None else self.clients.blocks:
            path = self.forward_as_path(block, when)
            if path is None:
                continue  # destination currently unreachable: no record
            target = block.first_address + 1
            records[block] = self.engine.trace(path, target)
        return records

    def catchments_at_hop(
        self,
        when: datetime,
        focus_hop: int,
        blocks: Optional[Sequence[IPv4Prefix]] = None,
        spatial_fill_offset: int = 2,
    ) -> dict[str, str]:
        """One observation round: ``{block: AS-name at focus hop}``.

        ``focus_hop`` is 1-based (hop 1 = the enterprise border).
        Missing hops are filled from the nearest responding hop within
        ``spatial_fill_offset``; still-missing blocks are omitted
        (→ unknown).
        """
        if focus_hop < 1:
            raise ValueError("focus_hop is 1-based")
        observations: dict[str, str] = {}
        for block, record in self.sweep(when, blocks).items():
            names = [self.name_of(asn) for asn in record.hop_ases()]
            if focus_hop - 1 >= len(names):
                continue
            state = nearest_viable_hop(names, focus_hop - 1, spatial_fill_offset)
            if state is not None:
                observations[str(block)] = state
        return observations
