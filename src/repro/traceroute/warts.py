"""A warts-like JSONL record format for traceroutes.

scamper archives traceroutes in warts; its JSON rendering is the format
analysis pipelines actually consume. We reproduce the relevant subset:
one JSON object per line with destination, per-hop responses and
whether the destination was reached. Round-trips losslessly through
:func:`write_records` / :func:`read_records`.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO

from ..net.addr import IPv4Address
from .engine import Hop, TracerouteRecord

__all__ = ["record_to_json", "record_from_json", "write_records", "read_records"]


def record_to_json(record: TracerouteRecord) -> dict:
    """The JSON object for one traceroute record."""
    return {
        "type": "trace",
        "dst": str(record.destination),
        "stop_reason": "COMPLETED" if record.reached else "GAPLIMIT",
        "hop_count": len(record.hops),
        "hops": [
            None
            if hop is None
            else {
                "probe_ttl": hop.ttl,
                "addr": str(hop.address),
                "asn": hop.asn,
                "rtt": round(hop.rtt_ms, 3),
            }
            for hop in record.hops
        ],
    }


def record_from_json(obj: dict) -> TracerouteRecord:
    """Rebuild a record from its JSON object."""
    if obj.get("type") != "trace":
        raise ValueError(f"not a trace object: {obj.get('type')!r}")
    record = TracerouteRecord(
        destination=IPv4Address.from_string(obj["dst"]),
        reached=obj.get("stop_reason") == "COMPLETED",
    )
    for hop_obj in obj.get("hops", []):
        if hop_obj is None:
            record.hops.append(None)
        else:
            record.hops.append(
                Hop(
                    ttl=int(hop_obj["probe_ttl"]),
                    address=IPv4Address.from_string(hop_obj["addr"]),
                    asn=hop_obj.get("asn"),
                    rtt_ms=float(hop_obj["rtt"]),
                )
            )
    return record


def write_records(records: Iterable[TracerouteRecord], stream: TextIO) -> int:
    """Write records as JSONL; returns the count written."""
    count = 0
    for record in records:
        stream.write(json.dumps(record_to_json(record), separators=(",", ":")) + "\n")
        count += 1
    return count


def read_records(stream: TextIO) -> Iterator[TracerouteRecord]:
    """Stream records back from JSONL, skipping blank lines."""
    for line in stream:
        line = line.strip()
        if not line:
            continue
        yield record_from_json(json.loads(line))
