"""BGP route collectors: RouteViews/RIS-style control-plane views.

The paper uses data-plane measurements and names control-plane input as
future work ("in principle, our approach could use control-plane
information as a data source"). This module implements that: a
:class:`RouteCollector` peers with a set of vantage ASes and records,
per collection time, the AS path each vantage has selected toward the
monitored prefix — exactly what a RouteViews RIB dump provides.

Views can be exported as TABLE_DUMP2 lines (via :mod:`repro.bgp.table`)
and distilled into routing vectors for Fenrir (see
:mod:`repro.controlplane.catchments`).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Sequence

from ..bgp.events import RoutingScenario
from ..bgp.table import RibEntry, RoutingTable
from ..net.addr import IPv4Prefix

__all__ = ["CollectorView", "RouteCollector"]


@dataclass(frozen=True, slots=True)
class CollectorView:
    """One vantage AS's view of the monitored prefix at one time."""

    vantage_asn: int
    as_path: tuple[int, ...]  # vantage first, origin last
    origin_label: str
    when: datetime


@dataclass
class RouteCollector:
    """Collects per-vantage best paths from a routing scenario.

    ``vantages`` are the ASes feeding the collector (RouteViews peers).
    A vantage with no route contributes nothing for that time — the
    same visibility gap a real collector has during an outage.
    """

    scenario: RoutingScenario
    vantages: Sequence[int]
    prefix: IPv4Prefix = IPv4Prefix.from_string("192.0.2.0/24")

    def __post_init__(self) -> None:
        for asn in self.vantages:
            if asn not in self.scenario.topology:
                raise KeyError(f"vantage AS{asn} not in topology")

    def views_at(self, when: datetime) -> list[CollectorView]:
        """The collector's RIB for the monitored prefix at ``when``."""
        outcome = self.scenario.outcome_at(when)
        views = []
        for asn in self.vantages:
            route = outcome.get(asn)
            if route is None:
                continue
            views.append(
                CollectorView(
                    vantage_asn=asn,
                    as_path=route.path,
                    origin_label=route.label,
                    when=when,
                )
            )
        return views

    def rib_at(self, when: datetime) -> RoutingTable:
        """Views as a RouteViews-style table (one entry per vantage)."""
        table = RoutingTable()
        for view in self.views_at(when):
            table.add(
                RibEntry(
                    self.prefix,
                    view.as_path,
                    timestamp=int(when.timestamp()),
                )
            )
        return table

    def paths_at(self, when: datetime) -> dict[int, tuple[int, ...]]:
        """``{vantage: as_path}`` convenience view."""
        return {view.vantage_asn: view.as_path for view in self.views_at(when)}
