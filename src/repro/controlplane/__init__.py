"""Control-plane substrate: route collectors, catchments, AS hegemony.

The paper's stated future work — feeding Fenrir from control-plane
(RouteViews/RIS) data instead of active probing — implemented against
the same routing scenarios the data-plane simulators observe.
"""

from .catchments import origin_series, transit_series
from .collector import CollectorView, RouteCollector
from .country import (
    BorderCrossing,
    country_crossings,
    country_series,
    transit_diversity,
)
from .hegemony import hegemony_scores, hegemony_series

__all__ = [
    "BorderCrossing",
    "CollectorView",
    "RouteCollector",
    "country_crossings",
    "country_series",
    "hegemony_scores",
    "hegemony_series",
    "origin_series",
    "transit_diversity",
    "transit_series",
]
