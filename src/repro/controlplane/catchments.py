"""Control-plane routing vectors: Fenrir on collector data.

Two distillations of collector views into routing vectors:

* :func:`origin_series` — the anycast view: each vantage AS's state is
  the site (origin label) its selected path leads to. This is the
  control-plane analogue of an Atlas CHAOS measurement.
* :func:`transit_series` — the enterprise/country view: each vantage's
  state is the AS found ``focus_hop`` steps along its path toward the
  destination, mirroring the paper's "adjust the focus of the study to
  consider more or fewer hops" (§2.3.2). This is how RIPE's country
  reports read transit structure out of RIS data.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping, Optional, Sequence

from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from .collector import RouteCollector

__all__ = ["origin_series", "transit_series"]


def _network_ids(collector: RouteCollector) -> list[str]:
    return [f"as{asn}" for asn in collector.vantages]


def origin_series(
    collector: RouteCollector,
    times: Sequence[datetime],
) -> VectorSeries:
    """Per-vantage anycast catchments from control-plane views.

    Vantages with no route at a time are recorded as ``unknown`` —
    collector feed gaps, like measurement loss, are cleaned downstream.
    """
    series = VectorSeries(_network_ids(collector), StateCatalog())
    for when in times:
        views = collector.views_at(when)
        assignment = {f"as{v.vantage_asn}": v.origin_label for v in views}
        series.append_mapping(assignment, when)
    return series


def transit_series(
    collector: RouteCollector,
    times: Sequence[datetime],
    focus_hop: int = 1,
    as_names: Optional[Mapping[int, str]] = None,
) -> VectorSeries:
    """Per-vantage transit catchments at ``focus_hop`` steps along paths.

    ``focus_hop`` counts AS hops from the vantage (1 = its next hop
    toward the destination). Paths shorter than the focus use their
    last transit AS before the origin, so stub vantages adjacent to the
    origin still contribute.
    """
    if focus_hop < 1:
        raise ValueError("focus_hop is 1-based")
    names = as_names or {}
    series = VectorSeries(_network_ids(collector), StateCatalog())
    for when in times:
        assignment: dict[str, str] = {}
        for view in collector.views_at(when):
            path = view.as_path
            if len(path) < 2:
                continue  # the vantage IS the origin: no transit
            index = min(focus_hop, len(path) - 1)
            transit = path[index]
            assignment[f"as{view.vantage_asn}"] = names.get(transit, f"AS{transit}")
        series.append_mapping(assignment, when)
    return series
