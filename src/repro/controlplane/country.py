"""Country-level transit analysis, RIPE-country-report style.

The paper lists country-level Internet access as a Fenrir application
(§2.1, §2.3.2): RIPE studies a country's resilience by looking at the
transit providers its prefixes are reached through in RIS data. Here a
*country* is a set of ASes; for every external vantage path into the
country we record the **border crossing** — the last AS outside paired
with the first AS inside — and derive:

* per-border-AS shares (a routing vector over vantages, so the whole
  Fenrir pipeline applies to a country's ingress);
* a transit-diversity index (the inverse Herfindahl of external
  transit shares): ~1 means a single-provider country, higher is more
  resilient.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Mapping, Optional, Sequence

from ..core.series import VectorSeries
from ..core.vector import StateCatalog
from .collector import RouteCollector

__all__ = ["BorderCrossing", "country_crossings", "country_series", "transit_diversity"]


@dataclass(frozen=True, slots=True)
class BorderCrossing:
    """Where one vantage's path enters the country."""

    vantage_asn: int
    outside_asn: int  # the external transit delivering the traffic
    inside_asn: int  # the border AS inside the country


def country_crossings(
    paths: Mapping[int, Sequence[int]],
    country_ases: set[int],
) -> list[BorderCrossing]:
    """Border crossings for every external vantage path into the country.

    Paths from vantages inside the country, and paths that never enter
    it, contribute nothing. The crossing is the first outside→inside
    transition along the path (vantage first, origin last).
    """
    crossings = []
    for vantage, path in sorted(paths.items()):
        if vantage in country_ases:
            continue
        for outside, inside in zip(path, path[1:]):
            if outside not in country_ases and inside in country_ases:
                crossings.append(BorderCrossing(vantage, outside, inside))
                break
    return crossings


def transit_diversity(crossings: Sequence[BorderCrossing]) -> float:
    """Inverse-Herfindahl diversity of external transits (≥ 1, or 0).

    1.0 = a single external transit carries everything (the paper's
    cable-cut nightmare); N equal transits score N.
    """
    if not crossings:
        return 0.0
    counts: dict[int, int] = {}
    for crossing in crossings:
        counts[crossing.outside_asn] = counts.get(crossing.outside_asn, 0) + 1
    total = sum(counts.values())
    herfindahl = sum((count / total) ** 2 for count in counts.values())
    return 1.0 / herfindahl


def country_series(
    collector: RouteCollector,
    country_ases: set[int],
    times: Sequence[datetime],
    as_names: Optional[Mapping[int, str]] = None,
) -> VectorSeries:
    """A Fenrir series of per-vantage external-transit catchments.

    Each external vantage's state is the outside AS its path crosses
    the border through — the country-ingress analogue of an anycast
    catchment. Vantages whose path misses the country go ``unknown``.
    """
    names = as_names or {}
    external = [asn for asn in collector.vantages if asn not in country_ases]
    series = VectorSeries([f"as{asn}" for asn in external], StateCatalog())
    for when in times:
        paths = collector.paths_at(when)
        crossings = country_crossings(paths, country_ases)
        assignment = {
            f"as{crossing.vantage_asn}": names.get(
                crossing.outside_asn, f"AS{crossing.outside_asn}"
            )
            for crossing in crossings
        }
        series.append_mapping(assignment, when)
    return series
