"""AS hegemony: transit dependency scores from path sets.

Implements the AS-hegemony metric of Fontugne, Shah and Aben (PAM
2018), which the paper cites for RIPE's country-level analyses: the
hegemony of a transit AS toward a destination is the mean fraction of
vantage paths that traverse it, after trimming the most- and
least-biased vantages (by default 10% from each end) so that no single
vantage's peculiar view dominates.

Scores range over [0, 1]: 1.0 means every (trimmed) vantage depends on
that AS to reach the destination — a single point of failure; values
near 0 mean marginal involvement.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["hegemony_scores", "hegemony_series"]


def hegemony_scores(
    paths: Mapping[int, Sequence[int]],
    trim: float = 0.1,
    include_origin: bool = False,
) -> dict[int, float]:
    """Hegemony of every transit AS over a set of vantage paths.

    ``paths`` maps each vantage AS to its AS path (vantage first,
    origin last). The vantage itself never counts toward its own path's
    transits; the origin is excluded unless requested (its hegemony is
    trivially 1).

    Trimming follows the paper: for each candidate AS, the per-vantage
    dependency indicators are sorted and the top and bottom ``trim``
    fractions removed before averaging.
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    if not paths:
        return {}

    vantages = sorted(paths)
    candidates: set[int] = set()
    for vantage in vantages:
        path = list(paths[vantage])
        transits = path[1:] if include_origin else path[1:-1]
        candidates.update(transits)

    scores: dict[int, float] = {}
    count = len(vantages)
    lo = int(np.floor(trim * count))
    hi = count - lo
    for candidate in sorted(candidates):
        indicators = np.array(
            [
                1.0
                if candidate
                in (paths[v][1:] if include_origin else paths[v][1:-1])
                else 0.0
                for v in vantages
            ]
        )
        trimmed = np.sort(indicators)[lo:hi]
        if len(trimmed) == 0:
            continue
        score = float(trimmed.mean())
        if score > 0:
            scores[candidate] = score
    return scores


def hegemony_series(
    path_snapshots: Iterable[Mapping[int, Sequence[int]]],
    trim: float = 0.1,
) -> list[dict[int, float]]:
    """Hegemony scores for each snapshot of collector paths."""
    return [hegemony_scores(snapshot, trim=trim) for snapshot in path_snapshots]
