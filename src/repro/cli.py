"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze FILE`` — run the Fenrir pipeline on a serialized series
  (``.jsonl`` or ``.csv``) and print the report.
* ``demo NAME`` — generate one of the paper's scenarios at a reduced
  scale and run Fenrir on it.
* ``convert IN OUT`` — convert a series between JSONL and CSV.
* ``catalog`` — print the Table 2 dataset catalog.
* ``serve`` — run the durable streaming monitoring service
  (``repro.serve``: many named monitors, journaled ingests).
* ``client CMD`` — create/feed/query monitors on a running server.
* ``lint`` — fenlint, the repo-specific static-analysis pass
  (delegates to :mod:`repro.lint.cli`; see ``repro lint --help``).
"""

from __future__ import annotations

import argparse
import sys
from datetime import timedelta
from pathlib import Path
from typing import Optional, Sequence

from .core.compare import UnknownPolicy
from .core.pipeline import Fenrir, FenrirConfig
from .core.series import VectorSeries
from .io.catalog import CATALOG
from .io.formats import (
    read_series_csv,
    read_series_jsonl,
    write_series_csv,
    write_series_jsonl,
)

__all__ = ["main", "build_parser"]

DEMOS = ("groot", "broot", "usc", "wikipedia", "google")


def _load_series(path: Path) -> VectorSeries:
    if path.suffix == ".jsonl":
        with path.open() as stream:
            return read_series_jsonl(stream)
    if path.suffix == ".csv":
        with path.open() as stream:
            return read_series_csv(stream)
    raise SystemExit(f"unsupported series format: {path.suffix!r} (use .jsonl or .csv)")


def _save_series(series: VectorSeries, path: Path) -> None:
    if path.suffix == ".jsonl":
        with path.open("w") as stream:
            write_series_jsonl(series, stream)
    elif path.suffix == ".csv":
        with path.open("w") as stream:
            write_series_csv(series, stream)
    else:
        raise SystemExit(f"unsupported series format: {path.suffix!r}")


def _demo_series(name: str) -> VectorSeries:
    if name == "groot":
        from .datasets import groot

        return groot.generate(num_vps=600, coarse_interval=timedelta(hours=6)).series
    if name == "broot":
        from .datasets import broot

        return broot.generate(num_blocks=900, cadence=timedelta(days=14)).series
    if name == "usc":
        from .datasets import usc

        return usc.generate(num_blocks=400, cadence=timedelta(days=8)).series
    if name == "wikipedia":
        from .datasets import wikipedia

        return wikipedia.generate(num_prefixes=700, cadence=timedelta(days=2)).series
    if name == "google":
        from .datasets import google

        return google.generate(num_prefixes=600, cadence=timedelta(days=2)).series
    raise SystemExit(f"unknown demo {name!r}; choose from {', '.join(DEMOS)}")


def _config_from(args: argparse.Namespace) -> FenrirConfig:
    return FenrirConfig(
        interpolation_limit=0 if args.no_interpolate else args.interpolation_limit,
        unknown_policy=(
            UnknownPolicy.EXCLUDE if args.policy == "exclude" else UnknownPolicy.PESSIMISTIC
        ),
        linkage=args.linkage,
        max_clusters=args.max_clusters,
        n_jobs=args.jobs,
        tile_size=args.tile_size,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
    )


def _apply_vp_plan(series: VectorSeries, args: argparse.Namespace):
    """Honor ``--vp-plan``: project onto the kept VPs, rescale weights.

    Returns the (possibly reduced) series plus the ``weight_fn`` the
    pipeline should run with (None when no plan was given).
    """
    plan_path = getattr(args, "vp_plan", None)
    if plan_path is None:
        return series, None
    from .vps import VPPlan

    plan = VPPlan.load(plan_path)
    reduced, _ = plan.apply(series)
    return reduced, plan.weight_array


def _run_pipeline(args: argparse.Namespace, series: VectorSeries):
    series, weight_fn = _apply_vp_plan(series, args)
    return Fenrir(_config_from(args), weight_fn=weight_fn).run(series)


def _print_report(series: VectorSeries, args: argparse.Namespace) -> None:
    report = _run_pipeline(args, series)
    print(report.summary())
    print()
    print(report.mode_timeline())
    if args.heatmap:
        print()
        print(report.heatmap(max_size=args.heatmap_size))
    if args.stackplot:
        print()
        print(report.stackplot())
    if report.events and args.events:
        print()
        print("events:")
        for event in report.events:
            print(
                f"  {event.start:%Y-%m-%d %H:%M} .. {event.end:%Y-%m-%d %H:%M} "
                f"max step change {event.max_change:.2f}"
            )


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {number}")
    return number


def _add_analysis_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", choices=["pessimistic", "exclude"], default="pessimistic",
        help="how unknown catchments enter Φ (default: paper's pessimistic)",
    )
    parser.add_argument(
        "--linkage", choices=["single", "complete", "average"], default="single",
        help="HAC linkage (default: single, the paper's SLINK)",
    )
    parser.add_argument("--max-clusters", type=int, default=15)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="similarity worker processes: 1 = serial reference, "
        "0 = all cores (default: 1)",
    )
    parser.add_argument(
        "--tile-size", type=_positive_int, default=64, metavar="ROWS",
        help="row-block size of the tiled similarity kernel (default: 64)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="cache similarity matrices under DIR keyed on series content; "
        "reruns on unchanged input skip the O(T²·N) comparison",
    )
    parser.add_argument("--interpolation-limit", type=int, default=3)
    parser.add_argument("--no-interpolate", action="store_true")
    parser.add_argument(
        "--vp-plan", type=Path, default=None, metavar="PLAN",
        help="VPPlan JSON from `repro vps select`: analyze only the "
        "plan's kept VPs with its per-VP weight rescaling",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="enable tracing and write the run's span tree to PATH "
        "(.json = JSON tree, anything else = flame-style text)",
    )
    parser.add_argument(
        "--metrics-file", type=Path, default=None, metavar="PATH",
        help="after the run, dump process metrics to PATH as Prometheus text",
    )
    parser.add_argument("--heatmap", action="store_true", help="print the Φ heatmap")
    parser.add_argument("--heatmap-size", type=int, default=50)
    parser.add_argument("--stackplot", action="store_true")
    parser.add_argument("--events", action="store_true", help="list detected events")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Fenrir: rediscover recurring routing results"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="run Fenrir on a series file")
    analyze.add_argument("series", type=Path)
    _add_analysis_options(analyze)

    demo = commands.add_parser("demo", help="run Fenrir on a paper scenario")
    demo.add_argument("name", choices=DEMOS)
    _add_analysis_options(demo)

    convert = commands.add_parser("convert", help="convert a series between formats")
    convert.add_argument("source", type=Path)
    convert.add_argument("destination", type=Path)

    export = commands.add_parser(
        "export", help="write a series' heatmap/stackplot CSVs for plotting"
    )
    export.add_argument("series", type=Path)
    export.add_argument("directory", type=Path)
    export.add_argument(
        "--svg", action="store_true", help="also write heatmap.svg / stackplot.svg"
    )
    _add_analysis_options(export)

    explain = commands.add_parser(
        "explain", help="triage briefing for every detected event in a series"
    )
    explain.add_argument("series", type=Path)
    _add_analysis_options(explain)

    online = commands.add_parser(
        "online", help="replay a series through the streaming tracker"
    )
    online.add_argument("series", type=Path)
    online.add_argument("--event-threshold", type=float, default=0.1)
    online.add_argument("--mode-threshold", type=float, default=0.7)

    bundle = commands.add_parser(
        "bundle", help="write a demo scenario as a verifiable dataset bundle"
    )
    bundle.add_argument("name", choices=DEMOS)
    bundle.add_argument("directory", type=Path)

    commands.add_parser("catalog", help="print the paper's dataset catalog")

    vps = commands.add_parser(
        "vps", help="most-valuable-VP selection (docs/vps.md)"
    )
    vps_commands = vps.add_subparsers(dest="vps_command", required=True)

    v_select = vps_commands.add_parser(
        "select", help="greedily select a budgeted VP subset from a series"
    )
    v_select.add_argument("series", type=Path)
    v_select.add_argument(
        "--output", "-o", type=Path, required=True, metavar="PLAN",
        help="where to write the VPPlan JSON artifact",
    )
    v_budget = v_select.add_mutually_exclusive_group()
    v_budget.add_argument(
        "--keep", type=_positive_int, default=None, metavar="N",
        help="absolute number of VPs to keep",
    )
    v_budget.add_argument(
        "--budget-fraction", type=float, default=None, metavar="F",
        help="keep F of all VPs (default: 0.2, the paper's ≤20%% target)",
    )
    v_select.add_argument(
        "--alpha", type=float, default=1.0,
        help="weight of the representation/redundancy term (default: 1.0)",
    )
    v_select.add_argument(
        "--beta", type=float, default=1.0,
        help="weight of the transition-detection term (default: 1.0)",
    )
    v_select.add_argument(
        "--gamma", type=float, default=0.25,
        help="weight of the catchment-coverage term (default: 0.25)",
    )
    v_select.add_argument(
        "--change-threshold", type=float, default=0.02,
        help="moved-VP fraction that makes a step 'active' (default: 0.02)",
    )
    v_select.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="threads for the agreement-count matmuls; the plan is "
        "byte-identical for every setting (default: 1)",
    )
    v_select.add_argument(
        "--tile-size", type=_positive_int, default=128, metavar="COLS",
        help="output-tile width of the agreement kernel (default: 128)",
    )

    v_apply = vps_commands.add_parser(
        "apply", help="project a series onto a plan's kept VPs"
    )
    v_apply.add_argument("series", type=Path)
    v_apply.add_argument("plan", type=Path)
    v_apply.add_argument("destination", type=Path)

    v_show = vps_commands.add_parser("show", help="summarize a plan file")
    v_show.add_argument("plan", type=Path)

    classify = commands.add_parser(
        "classify",
        help="route-change cause classification (docs/classification.md)",
    )
    classify_commands = classify.add_subparsers(
        dest="classify_command", required=True
    )

    k_train = classify_commands.add_parser(
        "train", help="train a classifier on the canonical labeled study"
    )
    k_train.add_argument(
        "--output", "-o", type=Path, required=True, metavar="MODEL",
        help="where to write the ClassifierModel JSON artifact",
    )
    k_train.add_argument(
        "--seed", type=int, default=7,
        help="forest seed; same seed + same data = identical bytes (default: 7)",
    )
    k_train.add_argument(
        "--quick", action="store_true",
        help="train on the smaller quick study (CI-sized)",
    )
    k_train.add_argument(
        "--trees", type=_positive_int, default=32, metavar="N",
        help="trees in the forest (default: 32)",
    )
    k_train.add_argument(
        "--depth", type=_positive_int, default=6, metavar="D",
        help="maximum tree depth (default: 6)",
    )

    k_eval = classify_commands.add_parser(
        "eval", help="evaluate a model artifact on the held-out study"
    )
    k_eval.add_argument("model", type=Path)
    k_eval.add_argument(
        "--quick", action="store_true",
        help="evaluate on the smaller quick study (CI-sized)",
    )

    k_show = classify_commands.add_parser(
        "show", help="summarize a model artifact"
    )
    k_show.add_argument("model", type=Path)

    serve = commands.add_parser(
        "serve", help="run the durable streaming monitoring service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7339, help="TCP port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--data-dir", type=Path, required=True,
        help="directory holding per-monitor journals and snapshots",
    )
    serve.add_argument(
        "--queue-size", type=_positive_int, default=256,
        help="bounded per-monitor ingest queue; full = overload response",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=1000, metavar="N",
        help="auto-checkpoint each monitor every N ingests (0 = never)",
    )
    serve.add_argument(
        "--fsync", action="store_true",
        help="fsync each journal append (survives power loss, much slower)",
    )
    serve.add_argument(
        "--metrics-file", type=Path, default=None, metavar="PATH",
        help="periodically dump server metrics to PATH as Prometheus text "
        "(atomic replace; see --metrics-interval)",
    )
    serve.add_argument(
        "--metrics-interval", type=float, default=10.0, metavar="SECONDS",
        help="seconds between --metrics-file dumps (default: 10)",
    )
    serve.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="run a sharded cluster: N worker processes behind a router "
        "front-end speaking the same wire protocol (docs/cluster.md)",
    )
    serve.add_argument(
        "--replicate", action="store_true",
        help="with --shards: give every shard a replication follower, "
        "promoted automatically when its primary dies",
    )
    serve.add_argument(
        "--sync-interval", type=float, default=0.5, metavar="SECONDS",
        help="replication pull cadence for followers (default: 0.5)",
    )
    serve.add_argument(
        "--follow", default=None, metavar="HOST:PORT",
        help="run as a replication follower of the given primary "
        "(normally set by the cluster supervisor, not by hand)",
    )
    serve.add_argument(
        "--exit-on-stdin-close", action="store_true",
        help="exit when stdin reaches EOF (supervised-child mode: a dead "
        "supervisor's pipe retires its shards instead of leaking them)",
    )

    client = commands.add_parser(
        "client", help="talk to a running repro serve instance"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7339)
    client_commands = client.add_subparsers(dest="client_command", required=True)

    c_create = client_commands.add_parser("create", help="create a monitor")
    c_create.add_argument("monitor")
    c_create.add_argument(
        "--networks", required=True,
        help="comma-separated network universe, e.g. 'n1,n2,n3'",
    )
    c_create.add_argument("--event-threshold", type=float, default=0.1)
    c_create.add_argument("--mode-threshold", type=float, default=0.7)
    c_create.add_argument(
        "--policy", choices=["pessimistic", "exclude"], default="pessimistic"
    )

    c_ingest = client_commands.add_parser(
        "ingest", help="stream a series file into a monitor"
    )
    c_ingest.add_argument("monitor")
    c_ingest.add_argument("series", type=Path)
    c_ingest.add_argument(
        "--create", action="store_true",
        help="create the monitor from the series' networks first",
    )
    c_ingest.add_argument(
        "--batch", type=_positive_int, default=None, metavar="N",
        help="send rounds in ingest_batch requests of N (one group commit "
        "per batch server-side) instead of one request per round",
    )
    c_ingest.add_argument(
        "--async", dest="use_async", action="store_true",
        help="use the pipelined asyncio client (keeps up to --concurrency "
        "rounds in flight on one connection; round order is preserved)",
    )
    c_ingest.add_argument(
        "--concurrency", type=_positive_int, default=32, metavar="N",
        help="in-flight request window for --async ingest (default 32; "
        "keep below the server's --queue-size)",
    )

    c_query = client_commands.add_parser("query", help="summarize a monitor")
    c_query.add_argument("monitor")

    c_timeline = client_commands.add_parser(
        "timeline", help="print a monitor's mode timeline"
    )
    c_timeline.add_argument("monitor")

    client_commands.add_parser("stats", help="print server counters and latency")

    client_commands.add_parser(
        "metrics", help="print the server's Prometheus text exposition"
    )

    c_snapshot = client_commands.add_parser(
        "snapshot", help="force a monitor checkpoint now"
    )
    c_snapshot.add_argument("monitor")

    c_vps = client_commands.add_parser(
        "vps", help="create a monitor from a VP plan, or show its stored plan"
    )
    c_vps.add_argument("monitor")
    c_vps.add_argument(
        "--plan", type=Path, default=None, metavar="PLAN",
        help="VPPlan JSON to create the monitor from (omit to query)",
    )
    c_vps.add_argument(
        "--no-dedup", action="store_true",
        help="create the plan monitor with ingest dedup off",
    )
    c_vps.add_argument("--event-threshold", type=float, default=0.1)
    c_vps.add_argument("--mode-threshold", type=float, default=0.7)
    c_vps.add_argument(
        "--policy", choices=["pessimistic", "exclude"], default="pessimistic"
    )

    c_classify = client_commands.add_parser(
        "classify",
        help="install/inspect a monitor's route-change classifier",
    )
    c_classify.add_argument("monitor")
    c_classify.add_argument(
        "--model", type=Path, default=None, metavar="MODEL",
        help="ClassifierModel JSON to install (omit to report)",
    )
    c_classify.add_argument(
        "--stream", choices=["on", "off"], default=None,
        help="toggle labeling mode transitions at ingest time",
    )

    c_dedup = client_commands.add_parser(
        "dedup", help="show or toggle a monitor's ingest dedup mode"
    )
    c_dedup.add_argument("monitor")
    c_dedup.add_argument(
        "--mode", choices=["on", "off"], default=None,
        help="toggle dedup (omit to just report)",
    )

    client_commands.add_parser("list", help="list monitors")

    # Registered for `repro --help` discoverability only; `main`
    # delegates to repro.lint.cli before this parser ever sees the
    # arguments, so fenlint's own flag set stays in one place.
    commands.add_parser(
        "lint",
        help="fenlint: repo-specific invariant checks (repro lint --help)",
        add_help=False,
    )
    return parser


def _with_observability(args: argparse.Namespace, action):
    """Run ``action`` honoring ``--trace`` / ``--metrics-file``.

    ``--trace`` enables span collection for the duration of the run and
    writes the tree afterwards — as a JSON document when the path ends
    in ``.json``, as the flame-style text summary otherwise. The dump
    happens even when the run raises, so a trace of a failing pipeline
    shows *which* stage blew up. ``--metrics-file`` writes the process
    registry as Prometheus text after the run (the offline counterpart
    of ``repro client metrics``).
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_file", None)
    if trace_path is None and metrics_path is None:
        return action()
    from . import obs

    tracer = obs.get_tracer()
    was_enabled = obs.enabled()
    if trace_path is not None:
        tracer.clear()
        obs.enable()
    try:
        return action()
    finally:
        if trace_path is not None:
            if not was_enabled:
                obs.disable()
            text = (
                tracer.to_json()
                if trace_path.suffix == ".json"
                else tracer.flame_text()
            )
            trace_path.write_text(text)
            print(f"trace written to {trace_path}", file=sys.stderr)
        if metrics_path is not None:
            obs.write_metrics_file(metrics_path)
            print(f"metrics written to {metrics_path}", file=sys.stderr)


def _stdin_eof_event() -> "asyncio.Event":  # noqa: F821 (import in function)
    """An asyncio Event set when this process's stdin reaches EOF.

    The read happens on a daemon thread so it cannot block interpreter
    shutdown, and the event is set via ``call_soon_threadsafe`` so the
    loop wakes immediately. Used by supervised children (and the
    supervisor itself under a harness): the parent holds the write end
    of the pipe, so its death — even by SIGKILL — retires the child.
    """
    import asyncio
    import threading

    loop = asyncio.get_running_loop()
    event = asyncio.Event()

    def watch() -> None:
        try:
            while sys.stdin.buffer.read(65536):
                pass
        except (OSError, ValueError):
            pass
        loop.call_soon_threadsafe(event.set)

    threading.Thread(target=watch, name="stdin-eof-watch", daemon=True).start()
    return event


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.shards is not None:
        return _run_cluster(args)
    if args.replicate:
        print("--replicate requires --shards", file=sys.stderr)
        return 2

    from .serve import FenrirServer, ServeConfig

    config = ServeConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        snapshot_every=args.snapshot_every,
        fsync=args.fsync,
    )

    async def dump_metrics_forever(server: FenrirServer) -> None:
        from .obs import write_metrics_file

        while True:
            await asyncio.sleep(args.metrics_interval)
            try:
                write_metrics_file(args.metrics_file, server.registry)
            except OSError as exc:
                print(f"metrics dump failed: {exc}", file=sys.stderr)

    async def run() -> None:
        server = FenrirServer(config)
        await server.start()
        if args.follow is not None:
            from .serve.cluster import ReplicationFollower

            follow_host, _, follow_port = args.follow.rpartition(":")
            server.follower = ReplicationFollower(
                server,
                (follow_host, int(follow_port)),
                interval=args.sync_interval,
            )
            server.follower.start()
        host, port = server.address
        # Machine-readable readiness line: tests, the bench harness, and
        # the cluster supervisor parse it to learn an OS-assigned port.
        print(f"listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        dumper = None
        if args.metrics_file is not None:
            dumper = loop.create_task(dump_metrics_forever(server))
        serving = loop.create_task(server.serve_forever())
        waiters = {serving}
        if args.exit_on_stdin_close:
            waiters.add(loop.create_task(_stdin_eof_event().wait()))
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            pass
        finally:
            for task in waiters:
                task.cancel()
            if dumper is not None:
                dumper.cancel()
                # Final dump so short-lived runs still leave a snapshot.
                from .obs import write_metrics_file

                write_metrics_file(args.metrics_file, server.registry)
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _run_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.cluster import ClusterConfig, ClusterSupervisor

    if args.follow is not None:
        print("--follow cannot be combined with --shards", file=sys.stderr)
        return 2

    config = ClusterConfig(
        data_dir=args.data_dir,
        shards=args.shards,
        host=args.host,
        port=args.port,
        replicate=args.replicate,
        sync_interval=args.sync_interval,
        queue_size=args.queue_size,
        snapshot_every=args.snapshot_every,
        fsync=args.fsync,
    )

    async def dump_metrics_forever(supervisor: ClusterSupervisor) -> None:
        from .obs import write_metrics_file

        while True:
            await asyncio.sleep(args.metrics_interval)
            try:
                write_metrics_file(args.metrics_file, supervisor.registry)
            except OSError as exc:
                print(f"metrics dump failed: {exc}", file=sys.stderr)

    async def run() -> None:
        supervisor = ClusterSupervisor(config)
        await supervisor.start()
        # One line per child first (harnesses learn pids and shard
        # addresses), the router's own readiness line last.
        for line in supervisor.describe_processes():
            print(line, flush=True)
        host, port = supervisor.address
        print(f"listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        dumper = None
        if args.metrics_file is not None:
            dumper = loop.create_task(dump_metrics_forever(supervisor))
        serving = loop.create_task(supervisor.serve_forever())
        waiters = {serving}
        if args.exit_on_stdin_close:
            waiters.add(loop.create_task(_stdin_eof_event().wait()))
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            pass
        finally:
            for task in waiters:
                task.cancel()
            if dumper is not None:
                dumper.cancel()
            await supervisor.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _run_vps(args: argparse.Namespace) -> int:
    from .vps import PlanError, SelectionConfig, VPPlan, select_vps

    if args.vps_command == "select":
        series = _load_series(args.series)
        fraction = args.budget_fraction
        if args.keep is None and fraction is None:
            fraction = 0.2  # the paper's ≤20% volume target
        try:
            plan = select_vps(
                series,
                SelectionConfig(
                    budget=args.keep,
                    fraction=fraction,
                    alpha=args.alpha,
                    beta=args.beta,
                    gamma=args.gamma,
                    change_threshold=args.change_threshold,
                    tile_size=args.tile_size,
                    jobs=args.jobs,
                ),
            )
        except PlanError as exc:
            raise SystemExit(str(exc)) from exc
        plan.save(args.output)
        print(
            f"kept {plan.budget}/{plan.total_networks} VPs "
            f"({plan.volume_fraction:.0%} of volume) -> {args.output}"
        )
    elif args.vps_command == "apply":
        series = _load_series(args.series)
        try:
            plan = VPPlan.load(args.plan)
            reduced, _ = plan.apply(series)
        except PlanError as exc:
            raise SystemExit(str(exc)) from exc
        _save_series(reduced, args.destination)
        print(
            f"wrote {args.destination}: {len(reduced.networks)} of "
            f"{len(series.networks)} VPs, {len(reduced)} rounds"
        )
    elif args.vps_command == "show":
        try:
            plan = VPPlan.load(args.plan)
        except PlanError as exc:
            raise SystemExit(str(exc)) from exc
        print(
            f"plan: {plan.budget}/{plan.total_networks} VPs "
            f"({plan.volume_fraction:.0%} of volume)"
        )
        provenance = dict(plan.provenance)
        digest = provenance.get("series_sha256")
        if digest:
            print(f"series: sha256 {digest}")
        objective = provenance.get("objective")
        if objective:
            print(f"objective: {objective}")
        for name in plan.kept:
            print(f"  {name:<24} weight {plan.weights[name]:g}")
    return 0


def _run_classify(args: argparse.Namespace) -> int:
    from .classify import (
        FULL_EVAL,
        FULL_TRAIN,
        QUICK_EVAL,
        QUICK_TRAIN,
        ClassifierModel,
        ModelError,
        build_dataset,
        evaluate,
        train_forest,
    )

    if args.classify_command == "train":
        config = QUICK_TRAIN if args.quick else FULL_TRAIN
        print(f"building labeled study (seed {config.seed})...", file=sys.stderr)
        dataset = build_dataset(config)
        model = train_forest(
            dataset.features,
            list(dataset.labels),
            seed=args.seed,
            num_trees=args.trees,
            max_depth=args.depth,
        )
        model.save(args.output)
        counts = ", ".join(
            f"{label}: {count}" for label, count in dataset.counts().items()
        )
        print(f"trained on {len(dataset.labels)} events ({counts})")
        print(f"model sha256 {model.content_digest()} -> {args.output}")
    elif args.classify_command == "eval":
        try:
            model = ClassifierModel.load(args.model)
        except (ModelError, OSError) as exc:
            raise SystemExit(str(exc)) from exc
        config = QUICK_EVAL if args.quick else FULL_EVAL
        print(f"building held-out study (seed {config.seed})...", file=sys.stderr)
        dataset = build_dataset(config)
        report = evaluate(model, dataset.features, list(dataset.labels))
        print(f"macro-F1 {report['macro_f1']:.3f}  accuracy {report['accuracy']:.3f}")
        for label, stats in report["per_label"].items():
            print(
                f"  {label:<22} precision {stats['precision']:.3f}  "
                f"recall {stats['recall']:.3f}  f1 {stats['f1']:.3f}  "
                f"n={stats['support']:g}"
            )
    elif args.classify_command == "show":
        try:
            model = ClassifierModel.load(args.model)
        except (ModelError, OSError) as exc:
            raise SystemExit(str(exc)) from exc
        summary = model.summary()
        print(
            f"model: v{summary['version']}, {summary['trees']} trees, "
            f"{summary['features']} features"
        )
        print(f"labels: {', '.join(summary['labels'])}")
        print(f"digest: {summary['digest']}")
        for key, value in sorted(summary["provenance"].items()):
            print(f"  {key}: {value}")
    return 0


def _show_update(update: dict) -> None:
    """Print one ingest update's notable flags (shared by both paths)."""
    if update["is_event"] or update["is_new_mode"] or update["recurred"]:
        notes = [
            note
            for flag, note in [
                (update["is_new_mode"], "new mode"),
                (update["recurred"], "recurrence"),
                (update["is_event"], "event"),
            ]
            if flag
        ]
        print(
            f"{update['time']} change={update['step_change']:.2f} "
            f"mode={update['mode_id']} {' '.join(notes)}"
        )


def _run_client_async_ingest(args: argparse.Namespace) -> int:
    """Pipelined ingest: a sliding window of rounds on one connection.

    One connection, because the server applies a *connection's* ingests
    in frame order — that is what keeps a monitor's strictly-increasing
    timestamps valid while ``--concurrency`` rounds are in flight. The
    window should stay under the server's ``--queue-size``: an
    ``overloaded`` response cannot be transparently retried here (later
    rounds are already on the wire), so it aborts with advice instead.
    """
    import asyncio
    from collections import deque

    from .serve import OverloadedError
    from .serve.aio import AsyncConnection
    from .serve.protocol import check_response

    series = _load_series(args.series)

    async def run() -> int:
        connection = await AsyncConnection.open(
            args.host, args.port, max_inflight=args.concurrency
        )
        sent = 0
        try:
            if args.create:
                await connection.request("create", monitor=args.monitor,
                                         networks=list(series.networks))
            window: deque = deque()
            for vector in series:
                if len(window) >= args.concurrency:
                    _show_update(check_response(await window.popleft())["update"])
                    sent += 1
                window.append(
                    connection.submit(
                        "ingest",
                        monitor=args.monitor,
                        states=vector.to_mapping(),
                        time=vector.time.isoformat(),
                    )
                )
                await connection.drain()
            while window:
                _show_update(check_response(await window.popleft())["update"])
                sent += 1
        except OverloadedError as exc:
            raise SystemExit(
                f"server overloaded with {args.concurrency} rounds in "
                f"flight ({exc}); rerun with a smaller --concurrency or a "
                "larger server --queue-size"
            ) from exc
        finally:
            await connection.close()
        return sent

    sent = asyncio.run(run())
    print(f"ingested {sent} rounds into {args.monitor!r}")
    return 0


def _run_client(args: argparse.Namespace) -> int:
    from .serve import OverloadedError, ServeClient

    if args.client_command == "ingest" and args.use_async:
        return _run_client_async_ingest(args)
    with ServeClient(host=args.host, port=args.port) as client:
        if args.client_command == "create":
            response = client.create(
                args.monitor,
                networks=[n for n in args.networks.split(",") if n],
                event_threshold=args.event_threshold,
                mode_threshold=args.mode_threshold,
                policy=args.policy,
            )
            print(f"created monitor {response['monitor']!r}")
        elif args.client_command == "ingest":
            series = _load_series(args.series)
            if args.create:
                client.create(args.monitor, networks=series.networks)

            show = _show_update
            if args.batch:
                updates = client.ingest_many(
                    args.monitor,
                    [(vector.to_mapping(), vector.time) for vector in series],
                    batch_size=args.batch,
                )
                for update in updates:
                    show(update)
                sent = len(updates)
            else:
                sent = 0
                for vector in series:
                    while True:
                        try:
                            response = client.ingest(
                                args.monitor, vector.to_mapping(), vector.time
                            )
                            break
                        except OverloadedError:
                            import time as _time

                            _time.sleep(0.05)
                    sent += 1
                    show(response["update"])
            print(f"ingested {sent} rounds into {args.monitor!r}")
        elif args.client_command == "query":
            import json as _json

            print(_json.dumps(client.query(args.monitor), indent=2, sort_keys=True))
        elif args.client_command == "timeline":
            response = client.timeline(args.monitor)
            for segment in response["segments"]:
                print(
                    f"mode {segment['mode_id']:>3}  "
                    f"{segment['start']} .. {segment['end']}"
                )
        elif args.client_command == "stats":
            import json as _json

            print(_json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.client_command == "metrics":
            print(client.metrics(), end="")
        elif args.client_command == "snapshot":
            response = client.snapshot(args.monitor)
            print(f"snapshot of {args.monitor!r} at seq {response['seq']}")
        elif args.client_command == "vps":
            import json as _json

            if args.plan is None:
                print(
                    _json.dumps(client.vps(args.monitor), indent=2, sort_keys=True)
                )
            else:
                from .vps import VPPlan

                plan = VPPlan.load(args.plan)
                response = client.vps(
                    args.monitor,
                    plan=plan.to_document(),
                    dedup=not args.no_dedup,
                    event_threshold=args.event_threshold,
                    mode_threshold=args.mode_threshold,
                    policy=args.policy,
                )
                print(
                    f"created monitor {response['monitor']!r} from plan: "
                    f"{response['kept']}/{response['total_networks']} VPs "
                    f"({response['volume_fraction']:.0%}), "
                    f"dedup {'on' if response['dedup'] else 'off'}"
                )
        elif args.client_command == "classify":
            if args.model is not None:
                import json as _json

                from .classify import ModelError as _ModelError
                from .classify import ClassifierModel as _ClassifierModel

                try:
                    model = _ClassifierModel.load(args.model)
                except (_ModelError, OSError, _json.JSONDecodeError) as exc:
                    raise SystemExit(str(exc)) from exc
                response = client.classify(args.monitor, model=model.to_document())
                print(
                    f"installed model {response['model']['digest'][:12]} "
                    f"on {args.monitor!r}"
                )
            if args.stream is not None:
                response = client.classify(args.monitor, stream=args.stream)
                print(
                    f"{args.monitor!r}: streaming "
                    f"{'on' if response['stream'] else 'off'}"
                )
            if args.model is None and args.stream is None:
                response = client.classify(args.monitor)
                model_summary = response["model"]
                if model_summary is None:
                    print(f"{args.monitor!r}: no classifier installed")
                else:
                    print(
                        f"{args.monitor!r}: model {model_summary['digest'][:12]} "
                        f"({model_summary['trees']} trees), streaming "
                        f"{'on' if response['stream'] else 'off'}"
                    )
                for event in response["recent"]:
                    print(
                        f"  {event['time']} {event['label']} "
                        f"(mode {event['mode_id']})"
                    )
        elif args.client_command == "dedup":
            response = client.dedup(args.monitor, mode=args.mode)
            print(
                f"{args.monitor!r}: dedup {response['mode']}, "
                f"{response['deduped_records']} records deduped, "
                f"{response['bytes_saved']} journal bytes saved"
            )
        elif args.client_command == "list":
            for name in client.list_monitors():
                print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        from .lint.cli import main as lint_main

        return lint_main(arguments[1:])
    args = build_parser().parse_args(arguments)

    if args.command == "analyze":
        _with_observability(args, lambda: _print_report(_load_series(args.series), args))
    elif args.command == "demo":
        print(f"generating scaled scenario {args.name!r}...", file=sys.stderr)
        series = _demo_series(args.name)
        _with_observability(args, lambda: _print_report(series, args))
    elif args.command == "convert":
        _save_series(_load_series(args.source), args.destination)
        print(f"wrote {args.destination}")
    elif args.command == "export":
        from .io.plotdata import export_report

        report = _with_observability(
            args, lambda: _run_pipeline(args, _load_series(args.series))
        )
        written = export_report(report, args.directory)
        if args.svg:
            written |= {
                f"{name}-svg": path
                for name, path in report.export_svg(args.directory).items()
            }
        for artifact, path in written.items():
            print(f"{artifact}: {path}")
    elif args.command == "explain":
        from .core.explain import explain_event

        report = _with_observability(
            args, lambda: _run_pipeline(args, _load_series(args.series))
        )
        if not report.events:
            print("no events detected")
        for event in report.events:
            print(explain_event(report, event).headline())
    elif args.command == "online":
        from .core.online import OnlineFenrir

        series = _load_series(args.series)
        tracker = OnlineFenrir(
            networks=series.networks,
            event_threshold=args.event_threshold,
            mode_threshold=args.mode_threshold,
        )
        for vector in series:
            update = tracker.ingest(vector.to_mapping(), vector.time)
            if update.is_event or update.is_new_mode or update.recurred:
                notes = []
                if update.is_new_mode:
                    notes.append("new mode")
                if update.recurred:
                    notes.append("recurrence")
                print(
                    f"{update.time:%Y-%m-%d %H:%M} change={update.step_change:.2f} "
                    f"mode={update.mode_id} {' '.join(notes)}".rstrip()
                )
        print(
            f"done: {len(tracker.updates)} rounds, {tracker.num_modes} modes, "
            f"{len(tracker.events())} events, {len(tracker.recurrences())} recurrences"
        )
    elif args.command == "bundle":
        from .io.bundle import write_bundle

        print(f"generating scaled scenario {args.name!r}...", file=sys.stderr)
        series = _demo_series(args.name)
        directory = write_bundle(
            args.directory,
            args.name,
            series,
            {"generator": f"repro.datasets.{args.name}", "scale": "demo"},
        )
        print(f"bundle written to {directory}")
    elif args.command == "vps":
        return _run_vps(args)
    elif args.command == "classify":
        return _run_classify(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "client":
        return _run_client(args)
    elif args.command == "catalog":
        for info in CATALOG:
            print(
                f"{info.name:<20} {info.case_study:<24} start {info.start} "
                f"~{info.duration_days}d  -> {info.generator}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
