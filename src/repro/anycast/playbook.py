"""Anycast traffic-engineering playbooks.

The paper situates Fenrir as the *situational awareness* layer that
triggers tools like anycast playbooks (Rizvi et al. 2022, cited in
§5): a playbook precomputes, for each available TE action, the routing
result it would produce, so that during an incident the operator can
jump straight to the action whose outcome matches a desired mode.

:func:`build_playbook` evaluates candidate actions against the routing
oracle; :func:`recommend` picks the action whose predicted vector is
most similar (by Φ) to a target routing result — for example, a past
mode's exemplar from Fenrir.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Mapping, Optional, Sequence

import numpy as np

from ..bgp.events import Event, ScopeChange, SiteDrain, TrafficEngineering
from ..bgp.policy import Scope
from ..core.compare import UnknownPolicy, phi
from ..core.vector import RoutingVector, StateCatalog
from .service import AnycastService

__all__ = ["PlaybookEntry", "build_playbook", "candidate_actions", "recommend"]


@dataclass
class PlaybookEntry:
    """One TE action and the routing result it produces."""

    name: str
    action: Optional[Event]  # None = the do-nothing baseline
    assignment: dict[int, str]  # AS -> site under this action
    aggregates: dict[str, int]  # site -> AS count

    def vector(
        self, catalog: StateCatalog, networks: Sequence[str]
    ) -> RoutingVector:
        mapping = {f"as{asn}": site for asn, site in self.assignment.items()}
        return RoutingVector.from_mapping(mapping, catalog=catalog, networks=networks)


def candidate_actions(
    service: AnycastService,
    when: datetime,
    horizon: timedelta = timedelta(days=1),
    prepend: int = 3,
) -> list[tuple[str, Event]]:
    """The standard action menu: per-site drain, scope-down, prepend."""
    actions: list[tuple[str, Event]] = []
    end = when + horizon
    for label in service.site_labels():
        if label not in service.active_sites(when):
            continue
        actions.append((f"drain {label}", SiteDrain(label, when, end)))
        actions.append(
            (f"scope {label} to customer cone", ScopeChange(label, Scope.CUSTOMER_CONE, when, end))
        )
        origin = service.sites[label].origin_asn
        for provider in sorted(service.scenario.topology.providers_of(origin)):
            actions.append(
                (
                    f"prepend {label} x{prepend} toward AS{provider}",
                    TrafficEngineering(label, provider, prepend, when, end),
                )
            )
    return actions


def build_playbook(
    service: AnycastService,
    when: datetime,
    actions: Optional[Sequence[tuple[str, Event]]] = None,
) -> list[PlaybookEntry]:
    """Evaluate every action's routing result against the oracle.

    Actions are applied one at a time on top of the current
    configuration (scenario events are restored afterwards), so entries
    are independent what-if outcomes, baseline first.
    """
    if actions is None:
        actions = candidate_actions(service, when)
    scenario = service.scenario

    def snapshot(name: str, action: Optional[Event]) -> PlaybookEntry:
        assignment = service.catchment_map(when + timedelta(seconds=1))
        aggregates: dict[str, int] = {}
        for site in assignment.values():
            aggregates[site] = aggregates.get(site, 0) + 1
        return PlaybookEntry(name, action, assignment, aggregates)

    entries = [snapshot("baseline (no action)", None)]
    for name, action in actions:
        scenario.add_event(action)
        try:
            entries.append(snapshot(name, action))
        finally:
            scenario.events.remove(action)
            scenario.invalidate_cache()
    return entries


def recommend(
    playbook: Sequence[PlaybookEntry],
    target: Mapping[int, str],
    weights: Optional[np.ndarray] = None,
) -> tuple[PlaybookEntry, float]:
    """The playbook entry whose outcome best matches ``target``.

    ``target`` maps ASes to desired sites (e.g. a past mode's oracle
    assignment). Returns the entry and its Φ against the target.
    """
    if not playbook:
        raise ValueError("empty playbook")
    catalog = StateCatalog()
    networks = sorted({f"as{asn}" for entry in playbook for asn in entry.assignment})
    target_vector = RoutingVector.from_mapping(
        {f"as{asn}": site for asn, site in target.items()},
        catalog=catalog,
        networks=networks,
    )
    best_entry: Optional[PlaybookEntry] = None
    best_phi = -1.0
    for entry in playbook:
        candidate = entry.vector(catalog, networks)
        similarity = phi(
            target_vector, candidate, weights=weights, policy=UnknownPolicy.PESSIMISTIC
        )
        if similarity > best_phi:
            best_entry, best_phi = entry, similarity
    assert best_entry is not None
    return best_entry, best_phi
