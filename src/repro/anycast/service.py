"""Anycast services: sites, announcements, and the catchment oracle.

An anycast service announces one prefix from several origin ASes
("sites"). BGP policy routing at every other AS then induces the
*catchment*: the site whose announcement that AS selects. This module
wires site definitions into a :class:`~repro.bgp.events.RoutingScenario`
and exposes per-time catchment lookups that the measurement simulators
(Verfploeter, Atlas) observe through their own imperfect instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional, Sequence

from ..bgp.events import Event, RoutingScenario
from ..bgp.policy import Announcement, Scope
from ..bgp.topology import ASTopology
from ..net.geo import GeoPoint, city

__all__ = ["AnycastSite", "AnycastService", "UNREACHABLE"]

UNREACHABLE = "unreach"


@dataclass(frozen=True, slots=True)
class AnycastSite:
    """One anycast site: a label, its origin AS and its location."""

    label: str
    origin_asn: int
    location: GeoPoint
    local_only: bool = False  # paper's micro-catchment local sites

    @classmethod
    def at_city(
        cls, label: str, origin_asn: int, code: Optional[str] = None, local_only: bool = False
    ) -> "AnycastSite":
        return cls(label, origin_asn, city(code or label), local_only)


class AnycastService:
    """An anycast deployment over a topology, with scripted events."""

    def __init__(
        self,
        topology: ASTopology,
        sites: Sequence[AnycastSite],
        events: Sequence[Event] = (),
    ) -> None:
        labels = [site.label for site in sites]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate site labels")
        self.sites: dict[str, AnycastSite] = {site.label: site for site in sites}
        announcements = [
            Announcement(
                origin=site.origin_asn,
                label=site.label,
                scope=Scope.CUSTOMER_CONE if site.local_only else Scope.GLOBAL,
            )
            for site in sites
        ]
        self.scenario = RoutingScenario(topology, announcements, list(events))

    def add_event(self, event: Event) -> None:
        self.scenario.add_event(event)

    def site_labels(self) -> list[str]:
        return sorted(self.sites)

    def location_of(self, label: str) -> GeoPoint:
        return self.sites[label].location

    def catchment_of(self, asn: int, when: datetime) -> str:
        """The site AS ``asn`` routes to at ``when`` (or ``unreach``)."""
        return self.scenario.outcome_at(when).label_of(asn, UNREACHABLE)

    def catchment_map(self, when: datetime) -> dict[int, str]:
        """Site per AS for every AS in the topology at ``when``."""
        outcome = self.scenario.outcome_at(when)
        return {
            asn: outcome.label_of(asn, UNREACHABLE)
            for asn in self.scenario.topology.nodes
        }

    def active_sites(self, when: datetime) -> list[str]:
        return self.scenario.active_sites_at(when)
