"""Anycast substrate: services, Verfploeter and Atlas catchment mapping."""

from .atlas import AtlasFleet, AtlasVP
from .manycast import AnycastVerdict, detect_anycast
from .playbook import PlaybookEntry, build_playbook, candidate_actions, recommend
from .polarization import PolarizationReport, PolarizedNetwork, analyze_polarization
from .service import UNREACHABLE, AnycastService, AnycastSite
from .verfploeter import VerfploeterMapper

__all__ = [
    "AnycastService",
    "AnycastSite",
    "AtlasFleet",
    "AtlasVP",
    "AnycastVerdict",
    "PlaybookEntry",
    "PolarizationReport",
    "PolarizedNetwork",
    "UNREACHABLE",
    "VerfploeterMapper",
    "analyze_polarization",
    "build_playbook",
    "candidate_actions",
    "detect_anycast",
    "recommend",
]
