"""Verfploeter: anycast catchment mapping from inside the service.

Verfploeter (de Vries et al. 2017) pings one target per /24 block from
the anycast prefix and observes which site the echo reply enters — the
block's catchment. Coverage is broad (millions of blocks) but noisy:
a block is only mapped when its hitlist target answers, and roughly
half do not on a given day. The simulator reproduces exactly that
property — the paper leans on it when explaining why a perfectly stable
B-Root still shows Φ ≈ 0.5–0.6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from ..measure.campaign import Campaign, ProbeStats
from ..measure.loss import LossModel
from ..net.hitlist import Hitlist, HitlistEntry
from .service import UNREACHABLE, AnycastService

__all__ = ["VerfploeterMapper"]


@dataclass
class VerfploeterMapper:
    """Runs Verfploeter sweeps against an :class:`AnycastService`.

    ``measure(when)`` returns ``{block: site_label}`` for the blocks
    whose target answered; unanswered blocks are simply absent, which
    the vector layer records as ``unknown``.
    """

    service: AnycastService
    hitlist: Hitlist
    clients: "object"  # ClientSpace; typed loosely to avoid an import cycle
    rng: random.Random
    loss: Optional[LossModel] = None
    retries: int = 0
    last_stats: Optional[ProbeStats] = None

    def measure(self, when: datetime) -> dict[str, str]:
        catchments = self.service.catchment_map(when)

        def probe(entry: HitlistEntry) -> Optional[str]:
            if self.rng.random() >= entry.score:
                return None  # target silent today
            asn = self.clients.as_of(entry.block)
            site = catchments.get(asn, UNREACHABLE)
            if site == UNREACHABLE:
                return None  # no return path: reply never arrives
            return site

        campaign: Campaign[HitlistEntry, str] = Campaign(
            probe=probe, loss=self.loss, retries=self.retries
        )
        results = campaign.run(self.hitlist.entries)
        self.last_stats = campaign.stats
        return {str(entry.block): site for entry, site in results.items()}
