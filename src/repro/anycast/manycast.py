"""MAnycast²-style anycast detection (Sommese et al. 2020, cited in §5).

Given an arbitrary announced prefix, is it anycast — and from roughly
how many sites? The MAnycast² insight: probe the prefix from many
vantage points and look at which *instance* answers each; a unicast
prefix answers identically everywhere, an anycast prefix partitions
the vantages. In the simulator the instance identity is the origin
label of each vantage AS's selected route.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Sequence

from ..bgp.events import RoutingScenario

__all__ = ["AnycastVerdict", "detect_anycast"]


@dataclass(frozen=True)
class AnycastVerdict:
    """The detection outcome for one prefix."""

    is_anycast: bool
    observed_sites: tuple[str, ...]  # distinct instances seen
    vantage_count: int
    unreachable_vantages: int

    @property
    def site_count(self) -> int:
        return len(self.observed_sites)


def detect_anycast(
    scenario: RoutingScenario,
    vantages: Sequence[int],
    when: datetime,
    min_sites: int = 2,
) -> AnycastVerdict:
    """Classify the scenario's prefix by probing from many vantages.

    ``min_sites`` distinct answering instances ⇒ anycast. Vantages
    without a route are counted separately (MAnycast² similarly loses
    some of its probing prefixes' visibility).
    """
    if not vantages:
        raise ValueError("need at least one vantage")
    outcome = scenario.outcome_at(when)
    seen: set[str] = set()
    unreachable = 0
    for vantage in vantages:
        route = outcome.get(vantage)
        if route is None:
            unreachable += 1
            continue
        seen.add(route.label)
    return AnycastVerdict(
        is_anycast=len(seen) >= min_sites,
        observed_sites=tuple(sorted(seen)),
        vantage_count=len(vantages),
        unreachable_vantages=unreachable,
    )
