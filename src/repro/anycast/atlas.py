"""A RIPE Atlas-style vantage point fleet measuring anycast catchments.

Each VP issues a CHAOS TXT ``hostname.bind`` query (real wire-format
bytes, via :mod:`repro.dns`), the site answering is determined by the
VP's AS catchment, and the returned server identifier is mapped back to
a site label. Failure modes follow the measurement reality the paper
cleans up: query loss yields ``err`` (no reply from any site), and
identifiers the mapping does not know yield ``other``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional, Sequence

from ..dns.chaos import IdentifierMap, make_chaos_query, make_chaos_response
from ..dns.edns import add_nsid_request, add_nsid_response, extract_nsid
from ..dns.message import DnsMessage, Question, TYPE_A
from ..measure.loss import LossModel
from .service import UNREACHABLE, AnycastService

__all__ = ["AtlasVP", "AtlasFleet"]


@dataclass(frozen=True, slots=True)
class AtlasVP:
    """One vantage point: an id and the AS hosting it."""

    vp_id: int
    asn: int

    @property
    def network_id(self) -> str:
        return f"vp{self.vp_id}"


@dataclass
class AtlasFleet:
    """A fleet of VPs running the built-in root-server measurement.

    ``identifier_style`` renders a site's per-server identifier, e.g.
    ``"b1-lax.root"``; the default is mappable by
    :class:`~repro.dns.chaos.IdentifierMap`. Sites listed in
    ``odd_identifier_sites`` answer with unmappable identifiers and thus
    surface as ``other`` — the paper's "incorrect data".
    """

    service: AnycastService
    vps: Sequence[AtlasVP]
    rng: random.Random
    loss: Optional[LossModel] = None
    odd_identifier_sites: frozenset[str] = frozenset()
    identifier_map: IdentifierMap = field(default_factory=IdentifierMap)
    # "chaos" (hostname.bind TXT, RFC 4892) or "nsid" (RFC 5001): the
    # two identification mechanisms the paper names (§2.3.1).
    method: str = "chaos"
    # A small share of VPs sit behind middleboxes that mangle the
    # server identifier; they answer but map to nothing — the paper's
    # constant "other" population in Figure 1 and Table 3.
    mangled_vp_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.method not in ("chaos", "nsid"):
            raise ValueError(f"unknown identification method {self.method!r}")
        if not self.identifier_map.known_sites:
            self.identifier_map = IdentifierMap.for_sites(set(self.service.sites))
        # Identifiers are deterministic per (site, server instance), so the
        # wire round-trip result can be cached across measurement rounds.
        self._identifier_cache: dict[tuple[str, int], Optional[str]] = {}

    @classmethod
    def place_vps(
        cls,
        service: AnycastService,
        candidate_ases: Sequence[int],
        count: int,
        rng: random.Random,
        loss: Optional[LossModel] = None,
        odd_identifier_sites: frozenset[str] = frozenset(),
    ) -> "AtlasFleet":
        """Place ``count`` VPs in ASes sampled (with reuse) from candidates."""
        if not candidate_ases:
            raise ValueError("no candidate ASes to place VPs in")
        vps = [
            AtlasVP(vp_id, rng.choice(list(candidate_ases))) for vp_id in range(count)
        ]
        return cls(service, vps, rng, loss, odd_identifier_sites)

    def _identifier_for(self, site: str, vp: AtlasVP) -> str:
        instance = 1 + (vp.vp_id % 3)  # sites run several replicated servers
        if site in self.odd_identifier_sites:
            return f"edge{instance}.{site.lower()}.example.net"  # unmappable
        return f"b{instance}-{site.lower()}"

    def _query_site(self, site: str, vp: AtlasVP) -> Optional[str]:
        """One identification query against ``site``, over real bytes."""
        identifier = self._identifier_for(site, vp)
        if self.method == "chaos":
            query = make_chaos_query(msg_id=vp.vp_id & 0xFFFF)
            wire = make_chaos_response(query, identifier).encode()
            return DnsMessage.decode(wire).first_txt()
        # NSID: an ordinary query carrying an empty NSID option; the
        # server echoes its identifier in the response's OPT record.
        query = DnsMessage(msg_id=vp.vp_id & 0xFFFF)
        query.questions.append(Question("id.server.example", TYPE_A))
        add_nsid_request(query)
        response = DnsMessage(msg_id=query.msg_id, is_response=True)
        response.questions = list(query.questions)
        add_nsid_response(response, identifier)
        decoded = DnsMessage.decode(response.encode())
        nsid = extract_nsid(decoded)
        return nsid if nsid else None

    def measure(
        self,
        when: datetime,
        catchment_override: Optional[dict[int, str]] = None,
    ) -> dict[str, str]:
        """One measurement round: ``{vp network id: state label}``.

        States are site labels, ``err`` for query loss/unreachable
        service, or ``other`` for unmappable identifiers.
        ``catchment_override`` substitutes the per-AS catchment map —
        used to measure mid-convergence transients rather than the
        steady state.
        """
        catchments = (
            catchment_override
            if catchment_override is not None
            else self.service.catchment_map(when)
        )
        observations: dict[str, str] = {}
        from ..webmap.frontends import stable_fraction

        for vp in self.vps:
            if self.loss is not None and self.loss.lost():
                observations[vp.network_id] = "err"
                continue
            if (
                self.mangled_vp_fraction > 0
                and stable_fraction("mangled-vp", vp.vp_id) < self.mangled_vp_fraction
            ):
                observations[vp.network_id] = "other"
                continue
            site = catchments.get(vp.asn, UNREACHABLE)
            if site == UNREACHABLE:
                observations[vp.network_id] = "err"
                continue
            cache_key = (site, 1 + (vp.vp_id % 3))
            if cache_key in self._identifier_cache:
                identifier = self._identifier_cache[cache_key]
            else:
                identifier = self._query_site(site, vp)
                self._identifier_cache[cache_key] = identifier
            if identifier is None:
                observations[vp.network_id] = "err"
                continue
            mapped = self.identifier_map.site_of(identifier)
            observations[vp.network_id] = mapped if mapped is not None else "other"
        return observations

    def network_ids(self) -> list[str]:
        return [vp.network_id for vp in self.vps]
