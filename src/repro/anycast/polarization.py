"""Anycast polarization analysis.

Polarization (Moura et al. 2022, cited in §4.2) is when BGP routes a
client to a distant anycast site even though a much nearer one exists —
the B-Root ARI site of the paper's Figure 4 is exactly that: a Chilean
site whose catchment was a few North American and European networks at
200+ ms. Given per-network geography and a catchment assignment, this
module scores each network's *excess distance* over its nearest active
site and summarizes the polarized population per site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..net.geo import GeoPoint

__all__ = ["PolarizedNetwork", "PolarizationReport", "analyze_polarization"]


@dataclass(frozen=True, slots=True)
class PolarizedNetwork:
    """One network routed far past its nearest site."""

    network: str
    assigned_site: str
    assigned_km: float
    nearest_site: str
    nearest_km: float

    @property
    def excess_km(self) -> float:
        return self.assigned_km - self.nearest_km


@dataclass
class PolarizationReport:
    """Polarization summary for one catchment assignment."""

    polarized: list[PolarizedNetwork]
    total_networks: int
    threshold_km: float

    @property
    def fraction_polarized(self) -> float:
        if not self.total_networks:
            return 0.0
        return len(self.polarized) / self.total_networks

    def by_site(self) -> dict[str, int]:
        """Polarized-network counts per assigned site, descending."""
        counts: dict[str, int] = {}
        for entry in self.polarized:
            counts[entry.assigned_site] = counts.get(entry.assigned_site, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def worst(self, limit: int = 10) -> list[PolarizedNetwork]:
        return sorted(self.polarized, key=lambda e: -e.excess_km)[:limit]


def analyze_polarization(
    assignment: Mapping[str, str],
    network_locations: Mapping[str, GeoPoint],
    site_locations: Mapping[str, GeoPoint],
    threshold_km: float = 3000.0,
    active_sites: Optional[set[str]] = None,
) -> PolarizationReport:
    """Find networks assigned ≥ ``threshold_km`` past their nearest site.

    Networks lacking geography, or assigned to a non-site state
    (err/other/unknown), are skipped but still counted in the total.
    """
    sites = {
        label: point
        for label, point in site_locations.items()
        if active_sites is None or label in active_sites
    }
    if not sites:
        raise ValueError("no active sites to compare against")
    polarized: list[PolarizedNetwork] = []
    total = 0
    for network, assigned in assignment.items():
        total += 1
        location = network_locations.get(network)
        assigned_point = sites.get(assigned)
        if location is None or assigned_point is None:
            continue
        nearest_label, nearest_point = min(
            sites.items(), key=lambda item: location.distance_km(item[1])
        )
        assigned_km = location.distance_km(assigned_point)
        nearest_km = location.distance_km(nearest_point)
        if assigned_km - nearest_km >= threshold_km:
            polarized.append(
                PolarizedNetwork(
                    network=network,
                    assigned_site=assigned,
                    assigned_km=assigned_km,
                    nearest_site=nearest_label,
                    nearest_km=nearest_km,
                )
            )
    return PolarizationReport(polarized, total, threshold_km)
