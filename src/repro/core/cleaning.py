"""Data cleaning: incorrect data, micro-catchments, gap filling (§2.4).

Raw active measurements arrive with three defects the paper cleans
before analysis:

1. **Incorrect data** — observations naming a state that cannot be
   right (an unmapped server identifier, a bogus site). These become
   ``other`` via :func:`map_unmapped_states`.
2. **Micro-catchments** — sites serving almost no networks (local-only
   anycast sites, enterprise-internal prefixes). Folded into ``other``
   by :func:`fold_micro_catchments`, or the networks dropped entirely by
   :func:`drop_networks`.
3. **Missing data** — unanswered probes. Temporal gaps are repaired by
   nearest-neighbour interpolation with a reach limit (default 3
   observations, per the paper): the first half of a gap copies the
   last value before it, the second half the first value after it.
   Traceroute gaps are instead repaired *spatially*, copying the
   nearest responsive hop (:func:`nearest_viable_hop`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .series import VectorSeries
from .vector import ERROR_CODE, OTHER_CODE, UNKNOWN_CODE, RoutingVector

__all__ = [
    "map_unmapped_states",
    "fold_micro_catchments",
    "drop_networks",
    "interpolate_series",
    "nearest_viable_hop",
]


def map_unmapped_states(series: VectorSeries, known_sites: set[str]) -> VectorSeries:
    """Fold states outside ``known_sites`` (and specials) into ``other``.

    Mirrors the identifier-mapping step: a CHAOS/NSID reply whose server
    identifier maps to no known site is real data but not a usable
    catchment, so it is kept as ``other`` rather than dropped.
    """
    catalog = series.catalog
    remap = np.arange(len(catalog), dtype=np.int32)
    for code in range(3, len(catalog)):  # specials occupy 0..2
        if catalog.label(code) not in known_sites:
            remap[code] = OTHER_CODE
    cleaned = VectorSeries(series.networks, catalog)
    for vector in series:
        cleaned.append(vector.replace_codes(remap[vector.codes]))
    return cleaned


def fold_micro_catchments(
    series: VectorSeries,
    min_networks: int = 0,
    min_fraction: float = 0.0,
    weights: Optional[np.ndarray] = None,
) -> tuple[VectorSeries, list[str]]:
    """Fold sites that never serve a meaningful share into ``other``.

    A site is micro when its *peak* (weighted) share over the whole
    series stays below both thresholds. Returns the cleaned series and
    the list of folded site labels.
    """
    totals = series.aggregate_over_time(weights)
    if weights is None:
        denominator = float(len(series.networks))
    else:
        denominator = float(np.asarray(weights, dtype=np.float64).sum())
    micro: list[str] = []
    for site in series.catalog.site_labels:
        peak = float(np.max(totals[site])) if site in totals else 0.0
        if peak < min_networks or (denominator and peak / denominator < min_fraction):
            micro.append(site)
    if not micro:
        return series.copy(), []
    catalog = series.catalog
    remap = np.arange(len(catalog), dtype=np.int32)
    for site in micro:
        code = catalog.lookup(site)
        assert code is not None
        remap[code] = OTHER_CODE
    cleaned = VectorSeries(series.networks, catalog)
    for vector in series:
        cleaned.append(vector.replace_codes(remap[vector.codes]))
    return cleaned, micro


def drop_networks(
    series: VectorSeries, predicate: Callable[[str], bool]
) -> VectorSeries:
    """Remove networks for which ``predicate`` is true (e.g. internal prefixes)."""
    keep = [network for network in series.networks if not predicate(network)]
    return series.select_networks(keep)


def interpolate_series(
    series: VectorSeries, limit: int = 3, repair_errors: bool = False
) -> VectorSeries:
    """Nearest-neighbour interpolation of unknown runs (§2.4).

    Each unknown cell copies the nearer of the previous/next known
    observation of the same network, provided that neighbour is at most
    ``limit`` steps away; ties go to the earlier observation, matching
    the paper's first-half/second-half rule. Cells with no known
    neighbour within reach stay unknown.

    ``repair_errors`` treats ``err`` observations (query loss, the
    other face of "missing data") as gaps too. At full VP volume a
    one-round err blip is sub-threshold noise and the default leaves
    it alone; at reduced volume (``repro vps``), where one VP carries
    the weight of its whole catchment, repairing these blips is what
    keeps loss noise from masquerading as routing change. Err runs
    longer than ``limit`` — a genuinely unreachable service — stay
    err either way.
    """
    if limit < 0:
        raise ValueError("limit must be non-negative")
    codes = series.matrix.copy()
    num_times, num_networks = codes.shape
    if num_times == 0 or limit == 0:
        return series.copy()

    known = codes != UNKNOWN_CODE
    if repair_errors:
        known &= codes != ERROR_CODE
    time_index = np.arange(num_times)[:, None]

    # Forward pass: index of the most recent known observation at or
    # before each cell (-1 when none).
    forward_source = np.where(known, time_index, -1)
    forward_source = np.maximum.accumulate(forward_source, axis=0)
    # Backward pass, mirrored.
    backward_source = np.where(known, time_index, num_times)
    backward_source = np.flip(
        np.minimum.accumulate(np.flip(backward_source, axis=0), axis=0), axis=0
    )

    forward_distance = np.where(
        forward_source >= 0, time_index - forward_source, np.iinfo(np.int64).max
    )
    backward_distance = np.where(
        backward_source < num_times, backward_source - time_index, np.iinfo(np.int64).max
    )

    use_forward = (
        ~known
        & (forward_distance <= limit)
        & (forward_distance <= backward_distance)
    )
    use_backward = (
        ~known
        & ~use_forward
        & (backward_distance <= limit)
    )

    columns = np.broadcast_to(np.arange(num_networks), codes.shape)
    filled = codes.copy()
    filled[use_forward] = codes[
        forward_source[use_forward], columns[use_forward]
    ]
    filled[use_backward] = codes[
        np.clip(backward_source[use_backward], 0, num_times - 1),
        columns[use_backward],
    ]

    cleaned = VectorSeries(series.networks, series.catalog)
    for index, time in enumerate(series.times):
        cleaned.append(
            RoutingVector(series.networks, filled[index], series.catalog, time)
        )
    return cleaned


def nearest_viable_hop(
    hop_states: Sequence[Optional[str]],
    focus: int,
    max_offset: int = 2,
) -> Optional[str]:
    """Spatial gap filling for traceroutes (§2.4).

    When the hop of interest did not answer (private address, filtered
    ICMP), the paper propagates the nearest responsive hop. ``focus`` is
    a zero-based hop index; hops up to ``max_offset`` away are
    considered, nearer first, with the earlier (closer to the source)
    hop winning ties.
    """
    if not 0 <= focus < len(hop_states):
        raise IndexError(f"focus hop {focus} outside 0..{len(hop_states) - 1}")
    if hop_states[focus] is not None:
        return hop_states[focus]
    for offset in range(1, max_offset + 1):
        before = focus - offset
        if before >= 0 and hop_states[before] is not None:
            return hop_states[before]
        after = focus + offset
        if after < len(hop_states) and hop_states[after] is not None:
            return hop_states[after]
    return None
