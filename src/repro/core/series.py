"""Time series of routing vectors.

A :class:`VectorSeries` stacks the vectors of one study into a single
T×N code matrix over a shared network list and state catalog. All of
Fenrir's analyses (similarity matrices, clustering, mode discovery,
transition matrices) operate on this container.
"""

from __future__ import annotations

from datetime import datetime
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .vector import RoutingVector, StateCatalog

__all__ = ["VectorSeries"]


class VectorSeries:
    """An ordered, time-indexed collection of routing vectors."""

    def __init__(
        self,
        networks: Sequence[str],
        catalog: Optional[StateCatalog] = None,
    ) -> None:
        self.networks: tuple[str, ...] = tuple(networks)
        self.catalog = catalog or StateCatalog()
        self._rows: list[np.ndarray] = []
        self.times: list[datetime] = []
        self._matrix: Optional[np.ndarray] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_vectors(cls, vectors: Sequence[RoutingVector]) -> "VectorSeries":
        """Stack pre-built vectors; they must share networks and catalog."""
        if not vectors:
            raise ValueError("cannot build a series from zero vectors")
        first = vectors[0]
        series = cls(first.networks, first.catalog)
        for vector in vectors:
            series.append(vector)
        return series

    def append(self, vector: RoutingVector) -> None:
        if vector.networks != self.networks:
            raise ValueError("vector networks do not match series networks")
        if vector.catalog is not self.catalog:
            raise ValueError("vector catalog is not the series catalog")
        if vector.time is None:
            raise ValueError("series vectors need a timestamp")
        if self.times and vector.time <= self.times[-1]:
            raise ValueError(
                f"timestamps must increase: {vector.time} after {self.times[-1]}"
            )
        self._rows.append(np.asarray(vector.codes, dtype=np.int32))
        self.times.append(vector.time)
        self._matrix = None

    def append_mapping(self, assignment: dict[str, str], time: datetime) -> None:
        """Append from a ``{network: state}`` mapping (unlisted → unknown)."""
        vector = RoutingVector.from_mapping(
            assignment, catalog=self.catalog, networks=self.networks, time=time
        )
        self.append(vector)

    # -- views ---------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """T×N int32 matrix of state codes (cached)."""
        if self._matrix is None:
            if not self._rows:
                self._matrix = np.empty((0, len(self.networks)), dtype=np.int32)
            else:
                self._matrix = np.vstack(self._rows)
        return self._matrix

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int) -> RoutingVector:
        return RoutingVector(
            self.networks, self._rows[index], self.catalog, self.times[index]
        )

    def __iter__(self) -> Iterator[RoutingVector]:
        for index in range(len(self)):
            yield self[index]

    def index_at(self, when: datetime) -> int:
        """Index of the last vector at or before ``when``."""
        candidates = [i for i, t in enumerate(self.times) if t <= when]
        if not candidates:
            raise KeyError(f"no vector at or before {when}")
        return candidates[-1]

    def between(self, start: datetime, end: datetime) -> "VectorSeries":
        """Sub-series of vectors with ``start <= time < end``."""
        subset = VectorSeries(self.networks, self.catalog)
        for index, time in enumerate(self.times):
            if start <= time < end:
                subset._rows.append(self._rows[index])
                subset.times.append(time)
        return subset

    def select_networks(self, keep: Iterable[str]) -> "VectorSeries":
        """Sub-series restricted to the given networks (order preserved)."""
        keep_set = set(keep)
        indices = [i for i, network in enumerate(self.networks) if network in keep_set]
        subset = VectorSeries(
            tuple(self.networks[i] for i in indices), self.catalog
        )
        for row, time in zip(self._rows, self.times):
            subset._rows.append(row[indices])
            subset.times.append(time)
        return subset

    def aggregate_over_time(
        self, weights: Optional[np.ndarray] = None
    ) -> dict[str, np.ndarray]:
        """Per-state totals for every time step: the stack-plot data.

        Returns ``{state_label: array of length T}`` including only
        states that ever occur.
        """
        matrix = self.matrix
        num_states = len(self.catalog)
        if weights is None:
            totals = np.stack(
                [np.bincount(row, minlength=num_states) for row in matrix]
            ).astype(np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            totals = np.stack(
                [
                    np.bincount(row, weights=weights, minlength=num_states)
                    for row in matrix
                ]
            )
        return {
            self.catalog.label(code): totals[:, code]
            for code in range(num_states)
            if totals[:, code].any()
        }

    def copy(self) -> "VectorSeries":
        clone = VectorSeries(self.networks, self.catalog)
        clone._rows = [row.copy() for row in self._rows]
        clone.times = list(self.times)
        return clone
