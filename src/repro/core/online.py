"""Online Fenrir: streaming event detection and mode matching.

The batch pipeline answers "what happened over the last five years";
operators also need the stream form of the paper's question: *as each
measurement round arrives*, did routing just change, and is the new
routing a mode I have seen before?

:class:`OnlineFenrir` ingests one observation at a time and reports,
per round: the step change ``1 - Φ`` against the previous round,
whether that crosses the event threshold, and which known mode the new
vector matches (a new mode is opened when none matches). Mode
exemplars are fixed at mode birth so that slow drift cannot chain two
genuinely different routing results into one mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Optional, Sequence

import numpy as np

from .compare import UnknownPolicy, phi
from .vector import SPECIAL_STATES, RoutingVector, StateCatalog

__all__ = ["OnlineUpdate", "OnlineFenrir"]

STATE_VERSION = 1


@dataclass(frozen=True)
class OnlineUpdate:
    """What one ingested observation told us."""

    time: datetime
    step_change: float  # 1 - Φ vs the previous observation (0 for the first)
    is_event: bool
    mode_id: int
    is_new_mode: bool
    mode_similarity: float  # Φ against the matched mode's exemplar
    recurred: bool  # matched a mode that was not the previous one


@dataclass
class OnlineFenrir:
    """Streaming mode tracker over a fixed network universe.

    * ``event_threshold`` — step change above which a round is an event;
    * ``mode_threshold`` — minimum Φ against a mode's exemplar to join
      that mode (the online analogue of the HAC distance threshold).
    """

    networks: Sequence[str]
    event_threshold: float = 0.1
    mode_threshold: float = 0.7
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC
    weights: Optional[np.ndarray] = None
    catalog: StateCatalog = field(default_factory=StateCatalog)

    def __post_init__(self) -> None:
        self.networks = tuple(self.networks)
        if not 0.0 <= self.event_threshold <= 1.0:
            raise ValueError("event_threshold must be in [0, 1]")
        if not 0.0 <= self.mode_threshold <= 1.0:
            raise ValueError("mode_threshold must be in [0, 1]")
        self._exemplars: list[RoutingVector] = []
        self._previous: Optional[RoutingVector] = None
        self._previous_mode: Optional[int] = None
        self._last_time: Optional[datetime] = None
        self.updates: list[OnlineUpdate] = []

    # -- properties ---------------------------------------------------------

    @property
    def num_modes(self) -> int:
        return len(self._exemplars)

    def events(self) -> list[OnlineUpdate]:
        return [update for update in self.updates if update.is_event]

    def recurrences(self) -> list[OnlineUpdate]:
        """Rounds where routing returned to an older known mode."""
        return [update for update in self.updates if update.recurred]

    # -- ingestion ------------------------------------------------------------

    def ingest(self, assignment: Mapping[str, str], when: datetime) -> OnlineUpdate:
        """Process one measurement round and classify it."""
        if self._last_time is not None and when <= self._last_time:
            raise ValueError(f"observations must move forward in time: {when}")
        vector = RoutingVector.from_mapping(
            dict(assignment), catalog=self.catalog, networks=self.networks, time=when
        )

        if self._previous is None:
            step_change = 0.0
        else:
            step_change = 1.0 - phi(
                self._previous, vector, weights=self.weights, policy=self.policy
            )
        is_event = step_change > self.event_threshold

        mode_id, similarity = self._match_mode(vector)
        is_new_mode = mode_id is None
        if mode_id is None:
            self._exemplars.append(vector)
            mode_id = len(self._exemplars) - 1
            similarity = 1.0
        recurred = (
            self._previous_mode is not None
            and mode_id != self._previous_mode
            and not is_new_mode
        )

        update = OnlineUpdate(
            time=when,
            step_change=float(step_change),
            is_event=is_event,
            mode_id=mode_id,
            is_new_mode=is_new_mode,
            mode_similarity=float(similarity),
            recurred=recurred,
        )
        self.updates.append(update)
        self._previous = vector
        self._previous_mode = mode_id
        self._last_time = when
        return update

    @property
    def last_time(self) -> Optional[datetime]:
        """Timestamp of the most recent ingested observation, if any."""
        return self._last_time

    def match(self, assignment: Mapping[str, str]) -> tuple[Optional[int], float]:
        """Which known mode would ``assignment`` join? Non-mutating.

        Returns ``(mode_id, similarity)``; ``mode_id`` is None when the
        assignment would open a new mode. Unlike :meth:`ingest` this
        does not advance the tracker (no mode is opened, no update is
        recorded), so servers can answer "have we seen this routing
        before?" without committing the observation. Unseen site labels
        are still registered in the shared catalog; that is only an
        identifier assignment and cannot change any Φ value.
        """
        vector = RoutingVector.from_mapping(
            dict(assignment), catalog=self.catalog, networks=self.networks
        )
        return self._match_mode(vector)

    def _match_mode(self, vector: RoutingVector) -> tuple[Optional[int], float]:
        best_mode: Optional[int] = None
        best_similarity = -1.0
        for mode_id, exemplar in enumerate(self._exemplars):
            similarity = phi(
                exemplar, vector, weights=self.weights, policy=self.policy
            )
            if similarity > best_similarity:
                best_mode, best_similarity = mode_id, similarity
        if best_mode is not None and best_similarity >= self.mode_threshold:
            return best_mode, best_similarity
        return None, best_similarity

    # -- checkpointing --------------------------------------------------------

    def to_state(self) -> dict:
        """A JSON-serializable snapshot of the full tracker state.

        The snapshot is *exact*: ``from_state(to_state())`` yields a
        tracker whose every subsequent :meth:`ingest` returns the same
        updates (bit-identical floats — JSON round-trips Python floats
        losslessly via their shortest repr) as the original would have.
        """

        def vector_state(vector: RoutingVector) -> dict:
            return {
                "time": vector.time.isoformat() if vector.time else None,
                "codes": [int(code) for code in vector.codes],
            }

        return {
            "version": STATE_VERSION,
            "networks": list(self.networks),
            "event_threshold": self.event_threshold,
            "mode_threshold": self.mode_threshold,
            "policy": self.policy.value,
            "weights": None if self.weights is None else [float(w) for w in self.weights],
            "catalog": list(self.catalog.labels),
            "exemplars": [vector_state(exemplar) for exemplar in self._exemplars],
            "previous": None if self._previous is None else vector_state(self._previous),
            "previous_mode": self._previous_mode,
            "last_time": self._last_time.isoformat() if self._last_time else None,
            "updates": [
                {
                    "time": update.time.isoformat(),
                    "step_change": update.step_change,
                    "is_event": update.is_event,
                    "mode_id": update.mode_id,
                    "is_new_mode": update.is_new_mode,
                    "mode_similarity": update.mode_similarity,
                    "recurred": update.recurred,
                }
                for update in self.updates
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "OnlineFenrir":
        """Rebuild a tracker from :meth:`to_state` output."""
        version = state.get("version")
        if version != STATE_VERSION:
            raise ValueError(f"unsupported OnlineFenrir state version: {version!r}")
        labels = list(state["catalog"])
        if tuple(labels[: len(SPECIAL_STATES)]) != SPECIAL_STATES:
            raise ValueError("state catalog does not start with the special states")
        catalog = StateCatalog(labels[len(SPECIAL_STATES):])
        weights = state.get("weights")
        tracker = cls(
            networks=state["networks"],
            event_threshold=state["event_threshold"],
            mode_threshold=state["mode_threshold"],
            policy=UnknownPolicy(state["policy"]),
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
            catalog=catalog,
        )

        def restore_vector(doc: Mapping) -> RoutingVector:
            return RoutingVector(
                tracker.networks,
                np.asarray(doc["codes"], dtype=np.int32),
                catalog,
                datetime.fromisoformat(doc["time"]) if doc["time"] else None,
            )

        tracker._exemplars = [restore_vector(doc) for doc in state["exemplars"]]
        previous = state.get("previous")
        tracker._previous = restore_vector(previous) if previous else None
        tracker._previous_mode = state.get("previous_mode")
        last_time = state.get("last_time")
        tracker._last_time = datetime.fromisoformat(last_time) if last_time else None
        tracker.updates = [
            OnlineUpdate(
                time=datetime.fromisoformat(doc["time"]),
                step_change=doc["step_change"],
                is_event=doc["is_event"],
                mode_id=doc["mode_id"],
                is_new_mode=doc["is_new_mode"],
                mode_similarity=doc["mode_similarity"],
                recurred=doc["recurred"],
            )
            for doc in state["updates"]
        ]
        return tracker

    def mode_timeline(self) -> list[tuple[int, datetime, datetime]]:
        """Contiguous (mode_id, start, end) segments seen so far."""
        segments: list[tuple[int, datetime, datetime]] = []
        for update in self.updates:
            if segments and segments[-1][0] == update.mode_id:
                mode_id, start, _end = segments[-1]
                segments[-1] = (mode_id, start, update.time)
            else:
                segments.append((update.mode_id, update.time, update.time))
        return segments
