"""Online Fenrir: streaming event detection and mode matching.

The batch pipeline answers "what happened over the last five years";
operators also need the stream form of the paper's question: *as each
measurement round arrives*, did routing just change, and is the new
routing a mode I have seen before?

:class:`OnlineFenrir` ingests one observation at a time and reports,
per round: the step change ``1 - Φ`` against the previous round,
whether that crosses the event threshold, and which known mode the new
vector matches (a new mode is opened when none matches). Mode
exemplars are fixed at mode birth so that slow drift cannot chain two
genuinely different routing results into one mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Optional, Sequence

import numpy as np

from .compare import UnknownPolicy, phi
from .vector import RoutingVector, StateCatalog

__all__ = ["OnlineUpdate", "OnlineFenrir"]


@dataclass(frozen=True)
class OnlineUpdate:
    """What one ingested observation told us."""

    time: datetime
    step_change: float  # 1 - Φ vs the previous observation (0 for the first)
    is_event: bool
    mode_id: int
    is_new_mode: bool
    mode_similarity: float  # Φ against the matched mode's exemplar
    recurred: bool  # matched a mode that was not the previous one


@dataclass
class OnlineFenrir:
    """Streaming mode tracker over a fixed network universe.

    * ``event_threshold`` — step change above which a round is an event;
    * ``mode_threshold`` — minimum Φ against a mode's exemplar to join
      that mode (the online analogue of the HAC distance threshold).
    """

    networks: Sequence[str]
    event_threshold: float = 0.1
    mode_threshold: float = 0.7
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC
    weights: Optional[np.ndarray] = None
    catalog: StateCatalog = field(default_factory=StateCatalog)

    def __post_init__(self) -> None:
        self.networks = tuple(self.networks)
        if not 0.0 <= self.event_threshold <= 1.0:
            raise ValueError("event_threshold must be in [0, 1]")
        if not 0.0 <= self.mode_threshold <= 1.0:
            raise ValueError("mode_threshold must be in [0, 1]")
        self._exemplars: list[RoutingVector] = []
        self._previous: Optional[RoutingVector] = None
        self._previous_mode: Optional[int] = None
        self._last_time: Optional[datetime] = None
        self.updates: list[OnlineUpdate] = []

    # -- properties ---------------------------------------------------------

    @property
    def num_modes(self) -> int:
        return len(self._exemplars)

    def events(self) -> list[OnlineUpdate]:
        return [update for update in self.updates if update.is_event]

    def recurrences(self) -> list[OnlineUpdate]:
        """Rounds where routing returned to an older known mode."""
        return [update for update in self.updates if update.recurred]

    # -- ingestion ------------------------------------------------------------

    def ingest(self, assignment: Mapping[str, str], when: datetime) -> OnlineUpdate:
        """Process one measurement round and classify it."""
        if self._last_time is not None and when <= self._last_time:
            raise ValueError(f"observations must move forward in time: {when}")
        vector = RoutingVector.from_mapping(
            dict(assignment), catalog=self.catalog, networks=self.networks, time=when
        )

        if self._previous is None:
            step_change = 0.0
        else:
            step_change = 1.0 - phi(
                self._previous, vector, weights=self.weights, policy=self.policy
            )
        is_event = step_change > self.event_threshold

        mode_id, similarity = self._match_mode(vector)
        is_new_mode = mode_id is None
        if mode_id is None:
            self._exemplars.append(vector)
            mode_id = len(self._exemplars) - 1
            similarity = 1.0
        recurred = (
            self._previous_mode is not None
            and mode_id != self._previous_mode
            and not is_new_mode
        )

        update = OnlineUpdate(
            time=when,
            step_change=float(step_change),
            is_event=is_event,
            mode_id=mode_id,
            is_new_mode=is_new_mode,
            mode_similarity=float(similarity),
            recurred=recurred,
        )
        self.updates.append(update)
        self._previous = vector
        self._previous_mode = mode_id
        self._last_time = when
        return update

    def _match_mode(self, vector: RoutingVector) -> tuple[Optional[int], float]:
        best_mode: Optional[int] = None
        best_similarity = -1.0
        for mode_id, exemplar in enumerate(self._exemplars):
            similarity = phi(
                exemplar, vector, weights=self.weights, policy=self.policy
            )
            if similarity > best_similarity:
                best_mode, best_similarity = mode_id, similarity
        if best_mode is not None and best_similarity >= self.mode_threshold:
            return best_mode, best_similarity
        return None, best_similarity

    def mode_timeline(self) -> list[tuple[int, datetime, datetime]]:
        """Contiguous (mode_id, start, end) segments seen so far."""
        segments: list[tuple[int, datetime, datetime]] = []
        for update in self.updates:
            if segments and segments[-1][0] == update.mode_id:
                mode_id, start, _end = segments[-1]
                segments[-1] = (mode_id, start, update.time)
            else:
                segments.append((update.mode_id, update.time, update.time))
        return segments
