"""Online Fenrir: streaming event detection and mode matching.

The batch pipeline answers "what happened over the last five years";
operators also need the stream form of the paper's question: *as each
measurement round arrives*, did routing just change, and is the new
routing a mode I have seen before?

:class:`OnlineFenrir` ingests one observation at a time and reports,
per round: the step change ``1 - Φ`` against the previous round,
whether that crosses the event threshold, and which known mode the new
vector matches (a new mode is opened when none matches). Mode
exemplars are fixed at mode birth so that slow drift cannot chain two
genuinely different routing results into one mode.

Hot-path layout: exemplar codes live in a geometrically grown ``(M, N)``
int32 matrix so matching an incoming vector against every known mode is
one :func:`~repro.core.compare.phi_one_to_many` pass; weights are
validated and summed once at construction; event/recurrence counts are
maintained incrementally so summaries never rescan ``updates``. The
scalar per-exemplar loop survives as :meth:`_match_mode_scalar`, the
oracle the vectorized kernel is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Optional, Sequence

import numpy as np

from .compare import UnknownPolicy, _check_weights, phi, phi_one_to_many
from .vector import SPECIAL_STATES, UNKNOWN_CODE, RoutingVector, StateCatalog

__all__ = ["OnlineUpdate", "OnlineFenrir", "fold_delta_state"]

STATE_VERSION = 1

#: Initial exemplar-matrix capacity; doubles whenever a new mode would
#: overflow it, so appending M modes costs O(M·N) total copying.
_INITIAL_MODE_CAPACITY = 4


@dataclass(frozen=True)
class OnlineUpdate:
    """What one ingested observation told us."""

    time: datetime
    step_change: float  # 1 - Φ vs the previous observation (0 for the first)
    is_event: bool
    mode_id: int
    is_new_mode: bool
    mode_similarity: float  # Φ against the matched mode's exemplar
    recurred: bool  # matched a mode that was not the previous one


def _update_state(update: OnlineUpdate) -> dict:
    return {
        "time": update.time.isoformat(),
        "step_change": update.step_change,
        "is_event": update.is_event,
        "mode_id": update.mode_id,
        "is_new_mode": update.is_new_mode,
        "mode_similarity": update.mode_similarity,
        "recurred": update.recurred,
    }


def _update_from_state(doc: Mapping) -> OnlineUpdate:
    return OnlineUpdate(
        time=datetime.fromisoformat(doc["time"]),
        step_change=doc["step_change"],
        is_event=doc["is_event"],
        mode_id=doc["mode_id"],
        is_new_mode=doc["is_new_mode"],
        mode_similarity=doc["mode_similarity"],
        recurred=doc["recurred"],
    )


def _vector_state(vector: RoutingVector) -> dict:
    return {
        "time": vector.time.isoformat() if vector.time else None,
        "codes": [int(code) for code in vector.codes],
    }


@dataclass
class OnlineFenrir:
    """Streaming mode tracker over a fixed network universe.

    * ``event_threshold`` — step change above which a round is an event;
    * ``mode_threshold`` — minimum Φ against a mode's exemplar to join
      that mode (the online analogue of the HAC distance threshold).
    """

    networks: Sequence[str]
    event_threshold: float = 0.1
    mode_threshold: float = 0.7
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC
    weights: Optional[np.ndarray] = None
    catalog: StateCatalog = field(default_factory=StateCatalog)

    def __post_init__(self) -> None:
        self.networks = tuple(self.networks)
        if not 0.0 <= self.event_threshold <= 1.0:
            raise ValueError("event_threshold must be in [0, 1]")
        if not 0.0 <= self.mode_threshold <= 1.0:
            raise ValueError("mode_threshold must be in [0, 1]")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
        # Validate once, here, so a bad weight vector fails at
        # construction instead of as a phi shape error on the first
        # ingest — and so the hot path never re-checks or re-sums it.
        self._checked_weights = _check_weights(self.weights, len(self.networks))
        self._weight_sum = float(self._checked_weights.sum())
        self._exemplars: list[RoutingVector] = []
        self._exemplar_codes = np.empty(
            (_INITIAL_MODE_CAPACITY, len(self.networks)), dtype=np.int32
        )
        self._previous: Optional[RoutingVector] = None
        self._previous_mode: Optional[int] = None
        self._last_time: Optional[datetime] = None
        self._num_events = 0
        self._num_recurrences = 0
        self.updates: list[OnlineUpdate] = []
        # Recurring-round fast path (the paper's central observation:
        # routing results recur, so consecutive rounds usually repeat
        # the previous assignment verbatim). When the incoming mapping
        # equals the last one, encoding, the step-change Φ, and — while
        # no mode has been opened since — the mode match are all pure
        # functions of state this tracker already computed. The memos
        # below cache them; every value is produced by the exact same
        # arithmetic as the slow path, so results stay bit-identical.
        self._prev_assignment: Optional[dict] = None
        self._prev_self_step: Optional[float] = None  # 1 - Φ(prev, prev)
        self._memo_match: tuple[Optional[int], float] = (None, -1.0)
        self._memo_match_modes: int = -1  # num_modes the memo was taken at

    # -- properties ---------------------------------------------------------

    @property
    def num_modes(self) -> int:
        return len(self._exemplars)

    @property
    def num_events(self) -> int:
        """Running count of event rounds (no rescan of ``updates``)."""
        return self._num_events

    @property
    def num_recurrences(self) -> int:
        """Running count of recurrence rounds (no rescan of ``updates``)."""
        return self._num_recurrences

    def events(self) -> list[OnlineUpdate]:
        return [update for update in self.updates if update.is_event]

    def recurrences(self) -> list[OnlineUpdate]:
        """Rounds where routing returned to an older known mode."""
        return [update for update in self.updates if update.recurred]

    # -- ingestion ------------------------------------------------------------

    def ingest(self, assignment: Mapping[str, str], when: datetime) -> OnlineUpdate:
        """Process one measurement round and classify it."""
        if self._last_time is not None and when <= self._last_time:
            raise ValueError(f"observations must move forward in time: {when}")
        if self._prev_assignment is not None and assignment == self._prev_assignment:
            # Recurring round: same mapping as last time, so the codes
            # are the previous codes, the step change is Φ(x, x), and
            # the match is unchanged unless a mode opened in between.
            vector = RoutingVector._trusted(
                self.networks, self._previous.codes, self.catalog, when
            )
            if self._prev_self_step is None:
                self._prev_self_step = 1.0 - self._phi_pair(
                    vector.codes, vector.codes
                )
            step_change = self._prev_self_step
            if self._memo_match_modes == len(self._exemplars):
                mode_id, similarity = self._memo_match
            else:
                mode_id, similarity = self._match_mode(vector)
                self._memo_match = (mode_id, similarity)
                self._memo_match_modes = len(self._exemplars)
        else:
            vector = RoutingVector.from_mapping(
                dict(assignment),
                catalog=self.catalog,
                networks=self.networks,
                time=when,
            )
            if self._previous is None:
                step_change = 0.0
            else:
                step_change = 1.0 - self._phi_pair(self._previous.codes, vector.codes)
            mode_id, similarity = self._match_mode(vector)
            self._prev_assignment = dict(assignment)
            self._prev_self_step = None
            self._memo_match = (mode_id, similarity)
            self._memo_match_modes = len(self._exemplars)
        is_event = step_change > self.event_threshold
        is_new_mode = mode_id is None
        if mode_id is None:
            self._append_exemplar(vector)
            mode_id = len(self._exemplars) - 1
            similarity = 1.0
        recurred = (
            self._previous_mode is not None
            and mode_id != self._previous_mode
            and not is_new_mode
        )

        update = OnlineUpdate(
            time=when,
            step_change=float(step_change),
            is_event=is_event,
            mode_id=mode_id,
            is_new_mode=is_new_mode,
            mode_similarity=float(similarity),
            recurred=recurred,
        )
        self.updates.append(update)
        if is_event:
            self._num_events += 1
        if recurred:
            self._num_recurrences += 1
        self._previous = vector
        self._previous_mode = mode_id
        self._last_time = when
        return update

    def ingest_many(
        self, rounds: Sequence[tuple[Mapping[str, str], datetime]]
    ) -> list[OnlineUpdate]:
        """Apply many rounds in order; the batched form of :meth:`ingest`."""
        return [self.ingest(states, when) for states, when in rounds]

    @property
    def last_time(self) -> Optional[datetime]:
        """Timestamp of the most recent ingested observation, if any."""
        return self._last_time

    def match(self, assignment: Mapping[str, str]) -> tuple[Optional[int], float]:
        """Which known mode would ``assignment`` join? Non-mutating.

        Returns ``(mode_id, similarity)``; ``mode_id`` is None when the
        assignment would open a new mode. Unlike :meth:`ingest` this
        does not advance the tracker (no mode is opened, no update is
        recorded), so servers can answer "have we seen this routing
        before?" without committing the observation. Unseen site labels
        are still registered in the shared catalog; that is only an
        identifier assignment and cannot change any Φ value.
        """
        vector = RoutingVector.from_mapping(
            dict(assignment), catalog=self.catalog, networks=self.networks
        )
        return self._match_mode(vector)

    # -- matching kernel -----------------------------------------------------

    def _phi_pair(self, a_codes: np.ndarray, b_codes: np.ndarray) -> float:
        """Scalar Φ on raw codes with the pre-validated weights.

        Same arithmetic (and therefore bit-identical results) as
        :func:`repro.core.compare.phi`, minus the per-call weight
        validation and re-summation.
        """
        w = self._checked_weights
        match = (a_codes == b_codes) & (a_codes != UNKNOWN_CODE)
        if self.policy is UnknownPolicy.PESSIMISTIC:
            denominator = self._weight_sum
        else:
            both_known = (a_codes != UNKNOWN_CODE) & (b_codes != UNKNOWN_CODE)
            denominator = w[both_known].sum()
            match = match & both_known
        if denominator == 0:
            return float("nan")
        return float(w[match].sum() / denominator)

    def _append_exemplar(self, vector: RoutingVector) -> None:
        count = len(self._exemplars)
        if count == len(self._exemplar_codes):
            grown = np.empty(
                (max(_INITIAL_MODE_CAPACITY, 2 * count), len(self.networks)),
                dtype=np.int32,
            )
            grown[:count] = self._exemplar_codes[:count]
            self._exemplar_codes = grown
        self._exemplar_codes[count] = vector.codes
        self._exemplars.append(vector)

    def _match_mode(self, vector: RoutingVector) -> tuple[Optional[int], float]:
        """Best known mode for ``vector`` via one vectorized Φ pass."""
        count = len(self._exemplars)
        if not count:
            return None, -1.0
        similarities = phi_one_to_many(
            vector.codes,
            self._exemplar_codes[:count],
            weights=self._checked_weights,
            policy=self.policy,
            weight_sum=self._weight_sum,
        )
        valid = ~np.isnan(similarities)
        if not valid.any():
            return None, -1.0
        # argmax on the NaN-masked copy picks the *first* best row —
        # the same tie-break as the scalar loop's strict ``>``.
        best = int(np.argmax(np.where(valid, similarities, -np.inf)))
        best_similarity = float(similarities[best])
        if best_similarity >= self.mode_threshold:
            return best, best_similarity
        return None, best_similarity

    def _match_mode_scalar(
        self, vector: RoutingVector
    ) -> tuple[Optional[int], float]:
        """Reference implementation: the per-exemplar scalar Φ loop.

        Kept as the oracle for the vectorized kernel; property tests
        and ``benchmarks/bench_serve.py`` assert the two agree.
        """
        best_mode: Optional[int] = None
        best_similarity = -1.0
        for mode_id, exemplar in enumerate(self._exemplars):
            similarity = phi(
                exemplar, vector, weights=self.weights, policy=self.policy
            )
            if similarity > best_similarity:
                best_mode, best_similarity = mode_id, similarity
        if best_mode is not None and best_similarity >= self.mode_threshold:
            return best_mode, best_similarity
        return None, best_similarity

    # -- checkpointing --------------------------------------------------------

    def to_state(
        self,
        updates_after: Optional[int] = None,
        exemplars_after: Optional[int] = None,
    ) -> dict:
        """A JSON-serializable snapshot of the tracker state.

        With no arguments the snapshot is *full and exact*:
        ``from_state(to_state())`` yields a tracker whose every
        subsequent :meth:`ingest` returns the same updates
        (bit-identical floats — JSON round-trips Python floats
        losslessly via their shortest repr) as the original would have.

        With ``updates_after=k`` the result is a *delta segment*: only
        the updates (and exemplars) recorded after the first ``k``
        plus the small mutable head (previous vector, catalog, last
        time). Folding it onto the state it chains from with
        :func:`fold_delta_state` reproduces the full snapshot, so
        periodic checkpoints write O(delta) bytes instead of
        re-serializing the whole history. ``exemplars_after`` (the
        exemplar count already captured upstream) is derived from the
        update flags when not given.
        """
        if updates_after is None:
            return {
                "version": STATE_VERSION,
                "networks": list(self.networks),
                "event_threshold": self.event_threshold,
                "mode_threshold": self.mode_threshold,
                "policy": self.policy.value,
                "weights": None
                if self.weights is None
                else [float(w) for w in self.weights],
                "catalog": list(self.catalog.labels),
                "exemplars": [_vector_state(e) for e in self._exemplars],
                "previous": None
                if self._previous is None
                else _vector_state(self._previous),
                "previous_mode": self._previous_mode,
                "last_time": self._last_time.isoformat() if self._last_time else None,
                "updates": [_update_state(u) for u in self.updates],
            }
        if not 0 <= updates_after <= len(self.updates):
            raise ValueError(
                f"updates_after={updates_after} outside [0, {len(self.updates)}]"
            )
        if exemplars_after is None:
            exemplars_after = sum(
                1 for update in self.updates[:updates_after] if update.is_new_mode
            )
        if not 0 <= exemplars_after <= len(self._exemplars):
            raise ValueError(
                f"exemplars_after={exemplars_after} outside "
                f"[0, {len(self._exemplars)}]"
            )
        return {
            "version": STATE_VERSION,
            "kind": "delta",
            "updates_after": updates_after,
            "exemplars_after": exemplars_after,
            "catalog": list(self.catalog.labels),
            "exemplars": [_vector_state(e) for e in self._exemplars[exemplars_after:]],
            "previous": None
            if self._previous is None
            else _vector_state(self._previous),
            "previous_mode": self._previous_mode,
            "last_time": self._last_time.isoformat() if self._last_time else None,
            "updates": [_update_state(u) for u in self.updates[updates_after:]],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "OnlineFenrir":
        """Rebuild a tracker from a full :meth:`to_state` snapshot."""
        version = state.get("version")
        if version != STATE_VERSION:
            raise ValueError(f"unsupported OnlineFenrir state version: {version!r}")
        if state.get("kind") == "delta":
            raise ValueError(
                "cannot restore from a delta segment: fold it onto its "
                "base state with fold_delta_state first"
            )
        labels = list(state["catalog"])
        if tuple(labels[: len(SPECIAL_STATES)]) != SPECIAL_STATES:
            raise ValueError("state catalog does not start with the special states")
        catalog = StateCatalog(labels[len(SPECIAL_STATES):])
        weights = state.get("weights")
        tracker = cls(
            networks=state["networks"],
            event_threshold=state["event_threshold"],
            mode_threshold=state["mode_threshold"],
            policy=UnknownPolicy(state["policy"]),
            weights=None if weights is None else np.asarray(weights, dtype=np.float64),
            catalog=catalog,
        )

        def restore_vector(doc: Mapping) -> RoutingVector:
            return RoutingVector(
                tracker.networks,
                np.asarray(doc["codes"], dtype=np.int32),
                catalog,
                datetime.fromisoformat(doc["time"]) if doc["time"] else None,
            )

        for doc in state["exemplars"]:
            tracker._append_exemplar(restore_vector(doc))
        previous = state.get("previous")
        tracker._previous = restore_vector(previous) if previous else None
        tracker._previous_mode = state.get("previous_mode")
        last_time = state.get("last_time")
        tracker._last_time = datetime.fromisoformat(last_time) if last_time else None
        tracker.updates = [_update_from_state(doc) for doc in state["updates"]]
        tracker._num_events = sum(1 for u in tracker.updates if u.is_event)
        tracker._num_recurrences = sum(1 for u in tracker.updates if u.recurred)
        return tracker

    def apply_delta(self, delta: Mapping) -> None:
        """Apply a ``to_state(updates_after=...)`` delta to this live tracker.

        The in-memory analogue of :func:`fold_delta_state`: the delta
        must chain exactly from this tracker's current counts (its
        ``updates_after``/``exemplars_after`` equal the live list
        lengths and its catalog extends the live catalog), and applying
        it costs O(delta) — this is how a replication follower keeps up
        with a primary without re-serializing or re-ingesting history.
        Raises :class:`ValueError` on any chain mismatch, *before*
        mutating anything.
        """
        if delta.get("version") != STATE_VERSION or delta.get("kind") != "delta":
            raise ValueError("not a delta segment")
        if delta["updates_after"] != len(self.updates):
            raise ValueError(
                f"delta chains from {delta['updates_after']} updates, "
                f"tracker has {len(self.updates)}"
            )
        if delta["exemplars_after"] != len(self._exemplars):
            raise ValueError(
                f"delta chains from {delta['exemplars_after']} exemplars, "
                f"tracker has {len(self._exemplars)}"
            )
        live_labels = list(self.catalog.labels)
        new_labels = list(delta["catalog"])
        if new_labels[: len(live_labels)] != live_labels:
            raise ValueError("delta catalog does not extend the tracker's catalog")
        for label in new_labels[len(live_labels):]:
            self.catalog.code(label)

        def restore_vector(doc: Mapping) -> RoutingVector:
            return RoutingVector(
                self.networks,
                np.asarray(doc["codes"], dtype=np.int32),
                self.catalog,
                datetime.fromisoformat(doc["time"]) if doc["time"] else None,
            )

        for doc in delta["exemplars"]:
            self._append_exemplar(restore_vector(doc))
        previous = delta.get("previous")
        self._previous = restore_vector(previous) if previous else None
        self._previous_mode = delta.get("previous_mode")
        last_time = delta.get("last_time")
        self._last_time = datetime.fromisoformat(last_time) if last_time else None
        new_updates = [_update_from_state(doc) for doc in delta["updates"]]
        self.updates.extend(new_updates)
        self._num_events += sum(1 for u in new_updates if u.is_event)
        self._num_recurrences += sum(1 for u in new_updates if u.recurred)
        # The recurring-round memos cache state the delta just replaced.
        self._prev_assignment = None
        self._prev_self_step = None
        self._memo_match = (None, -1.0)
        self._memo_match_modes = -1

    def mode_timeline(self) -> list[tuple[int, datetime, datetime]]:
        """Contiguous (mode_id, start, end) segments seen so far."""
        segments: list[tuple[int, datetime, datetime]] = []
        for update in self.updates:
            if segments and segments[-1][0] == update.mode_id:
                mode_id, start, _end = segments[-1]
                segments[-1] = (mode_id, start, update.time)
            else:
                segments.append((update.mode_id, update.time, update.time))
        return segments


def fold_delta_state(state: Mapping, delta: Mapping) -> dict:
    """Fold one ``to_state(updates_after=...)`` delta onto its base.

    ``state`` is a full snapshot document; ``delta`` must chain exactly
    from it (its ``updates_after``/``exemplars_after`` counts equal the
    base's list lengths, and its catalog extends the base's — the
    catalog is append-only). Returns a new full snapshot document.
    Raises :class:`ValueError` on any chain mismatch.
    """
    if delta.get("version") != STATE_VERSION or delta.get("kind") != "delta":
        raise ValueError("not a delta segment")
    base_updates = list(state["updates"])
    if delta["updates_after"] != len(base_updates):
        raise ValueError(
            f"delta chains from {delta['updates_after']} updates, "
            f"base has {len(base_updates)}"
        )
    base_exemplars = list(state["exemplars"])
    if delta["exemplars_after"] != len(base_exemplars):
        raise ValueError(
            f"delta chains from {delta['exemplars_after']} exemplars, "
            f"base has {len(base_exemplars)}"
        )
    base_catalog = list(state["catalog"])
    new_catalog = list(delta["catalog"])
    if new_catalog[: len(base_catalog)] != base_catalog:
        raise ValueError("delta catalog does not extend the base catalog")
    folded = dict(state)
    folded["catalog"] = new_catalog
    folded["exemplars"] = base_exemplars + list(delta["exemplars"])
    folded["updates"] = base_updates + list(delta["updates"])
    folded["previous"] = delta["previous"]
    folded["previous_mode"] = delta["previous_mode"]
    folded["last_time"] = delta["last_time"]
    return folded
