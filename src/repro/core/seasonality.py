"""Seasonality: periodic structure in similarity matrices.

Figure 5's Google heatmap shows a *scheduled* pattern — strong
similarity within each week, weak across weeks. This module makes that
observation quantitative: the mean of the similarity matrix's k-th
diagonal is the average Φ between observations k steps apart, and a
scheduled reshuffle shows up as a flat-then-cliff profile whose cliff
spacing is the schedule period.

:func:`lag_profile` computes the mean-Φ-by-lag curve and
:func:`estimate_period` finds the dominant cliff spacing, if any.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["lag_profile", "estimate_period", "SeasonalityReport", "analyze_seasonality"]


def lag_profile(similarity: np.ndarray, max_lag: Optional[int] = None) -> np.ndarray:
    """Mean Φ between observations ``k`` apart, for k = 0..max_lag."""
    similarity = np.asarray(similarity, dtype=np.float64)
    if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
        raise ValueError("similarity must be a square matrix")
    size = similarity.shape[0]
    if max_lag is None:
        max_lag = size - 1
    max_lag = min(max_lag, size - 1)
    profile = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        profile[lag] = float(np.nanmean(np.diag(similarity, k=lag)))
    return profile


def estimate_period(
    similarity: np.ndarray,
    min_period: int = 2,
    max_period: Optional[int] = None,
    min_contrast: float = 0.05,
) -> Optional[int]:
    """The schedule period, or None when routing is unscheduled.

    A scheduled reshuffle of period p makes the lag profile fall
    linearly until lag p (the probability two observations share a
    schedule block is ``1 - k/p``) and then sit flat at the cross-block
    floor. The estimator therefore finds the *knee*: the first lag at
    which the profile reaches the long-lag floor — and only accepts it
    when the profile genuinely stays at the floor afterwards, which
    separates schedules from slow drift and from mode structure (whose
    long-lag similarities are non-flat: old modes recur).
    """
    profile = lag_profile(similarity)
    size = len(profile)
    if max_period is None:
        max_period = max(min_period, size // 3)
    if size < 3 * min_period:
        return None

    peak = float(profile[1]) if size > 1 else float(profile[0])
    floor = float(np.median(profile[size // 2 :]))
    contrast = peak - floor
    if contrast < min_contrast:
        return None  # no structure: stable or noisy-flat routing

    knee_threshold = floor + 0.1 * contrast
    period: Optional[int] = None
    for lag in range(min_period, max_period + 1):
        if profile[lag] <= knee_threshold:
            period = lag
            break
    if period is None:
        return None

    # Flatness beyond the knee: a true schedule never climbs back up.
    tail = profile[period:]
    if float(tail.max()) - floor > 0.3 * contrast:
        return None
    return period


@dataclass(frozen=True)
class SeasonalityReport:
    """Summary of periodic structure in one similarity matrix."""

    period: Optional[int]
    profile: np.ndarray
    phi_within_period: float
    phi_across_period: float

    @property
    def scheduled(self) -> bool:
        return self.period is not None


def analyze_seasonality(similarity: np.ndarray) -> SeasonalityReport:
    """Full seasonality analysis: period plus within/across Φ levels."""
    profile = lag_profile(similarity)
    period = estimate_period(similarity)
    within = float(profile[1]) if len(profile) > 1 else float(profile[0])
    if period is None:
        across = within
    else:
        across_lags = [
            lag for lag in range(period, len(profile)) if lag % period == 0
        ]
        across = float(np.mean([profile[lag] for lag in across_lags]))
    return SeasonalityReport(period, profile, within, across)
