"""From similarity to performance: latency analysis of vectors (§2.8).

Routing changes matter to operators because they move users onto
faster or slower paths. This module joins per-network RTT observations
(from any source — Atlas built-ins, Trinocular, the simulator) with
routing vectors to report per-catchment latency distributions, the p90
series of Figure 4, and weighted mean latency differences between two
vectors or modes.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from .series import VectorSeries
from .vector import SPECIAL_STATES, RoutingVector

__all__ = [
    "latency_by_catchment",
    "percentile_by_catchment",
    "mean_latency",
    "latency_timeseries",
    "compare_latency",
]

RttTable = Mapping[str, float]  # network -> RTT in ms


def latency_by_catchment(
    vector: RoutingVector,
    rtts: RttTable,
    include_special: bool = False,
) -> dict[str, np.ndarray]:
    """Group known per-network RTTs by the catchment the vector assigns.

    Networks without an RTT observation are skipped. Special states
    (unknown/err/other) are excluded unless requested.
    """
    groups: dict[str, list[float]] = {}
    for network, code in zip(vector.networks, vector.codes):
        rtt = rtts.get(network)
        if rtt is None:
            continue
        label = vector.catalog.label(int(code))
        if not include_special and label in SPECIAL_STATES:
            continue
        groups.setdefault(label, []).append(float(rtt))
    return {label: np.asarray(values) for label, values in groups.items()}


def percentile_by_catchment(
    vector: RoutingVector,
    rtts: RttTable,
    q: float = 90.0,
) -> dict[str, float]:
    """Per-catchment RTT percentile (Figure 4 uses p90)."""
    return {
        label: float(np.percentile(values, q))
        for label, values in latency_by_catchment(vector, rtts).items()
    }


def mean_latency(
    vector: RoutingVector,
    rtts: RttTable,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Weighted mean RTT over networks with both an RTT and a catchment.

    This is the paper's "mean overall latency": each network's RTT
    weighted by the operational-importance weight Dw (§2.5).
    """
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(vector),):
            raise ValueError("weights length does not match networks")
    total = 0.0
    total_weight = 0.0
    for index, (network, code) in enumerate(zip(vector.networks, vector.codes)):
        rtt = rtts.get(network)
        if rtt is None:
            continue
        label = vector.catalog.label(int(code))
        if label in SPECIAL_STATES:
            continue
        weight = float(weights[index]) if weights is not None else 1.0
        total += float(rtt) * weight
        total_weight += weight
    return total / total_weight if total_weight else float("nan")


def latency_timeseries(
    series: VectorSeries,
    rtt_provider: Callable[[int], RttTable],
    q: float = 90.0,
) -> dict[str, np.ndarray]:
    """Per-catchment latency percentile over time (Figure 4).

    ``rtt_provider(index)`` returns the RTT table in effect for the
    series' ``index``-th observation; sites absent at a step get NaN
    (e.g. ARI after its shutdown).
    """
    sites = series.catalog.site_labels
    result = {site: np.full(len(series), np.nan) for site in sites}
    for index in range(len(series)):
        percentiles = percentile_by_catchment(series[index], rtt_provider(index), q)
        for site, value in percentiles.items():
            if site in result:
                result[site][index] = value
    return {site: values for site, values in result.items() if not np.isnan(values).all()}


def compare_latency(
    before: RoutingVector,
    after: RoutingVector,
    rtts_before: RttTable,
    rtts_after: Optional[RttTable] = None,
    weights: Optional[np.ndarray] = None,
) -> dict[str, float]:
    """Mean-latency impact of a routing change.

    Returns the weighted mean RTT before and after, the delta, and the
    delta restricted to networks that changed catchment — the question
    an operator asks right after Fenrir flags an event.
    """
    rtts_after = rtts_after if rtts_after is not None else rtts_before
    mean_before = mean_latency(before, rtts_before, weights)
    mean_after = mean_latency(after, rtts_after, weights)

    moved = before.codes != after.codes
    moved_networks = [
        network for network, did_move in zip(before.networks, moved) if did_move
    ]
    moved_set = set(moved_networks)
    rtts_moved_before = {n: rtts_before[n] for n in moved_set if n in rtts_before}
    rtts_moved_after = {n: rtts_after[n] for n in moved_set if n in rtts_after}
    moved_before = mean_latency(before, rtts_moved_before, weights)
    moved_after = mean_latency(after, rtts_moved_after, weights)

    return {
        "mean_before_ms": mean_before,
        "mean_after_ms": mean_after,
        "delta_ms": mean_after - mean_before,
        "moved_networks": float(len(moved_networks)),
        "moved_mean_before_ms": moved_before,
        "moved_mean_after_ms": moved_after,
        "moved_delta_ms": moved_after - moved_before,
    }
