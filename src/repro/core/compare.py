"""Pairwise vector comparison: weighted Gower similarity (§2.6.1).

The similarity of two routing vectors is the weighted fraction of
networks whose catchment is the same and known:

    Φ(t,t') = Σ_n M(t,t',n)·Dw(n) / Σ_n Dw(n)
    M(t,t',n) = 1  iff  D(t,n) == D(t',n) and D(t,n) != unknown

The paper's rule counts unknowns as *changed* (pessimistic); its stated
ongoing work excludes unknown networks from consideration instead. Both
policies are implemented; the pessimistic one is the default everywhere.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from .series import VectorSeries
from .vector import RoutingVector, UNKNOWN_CODE

__all__ = [
    "UnknownPolicy",
    "phi",
    "phi_one_to_many",
    "similarity_matrix",
    "similarity_to_reference",
    "distance_matrix",
]


class UnknownPolicy(enum.Enum):
    """How unknown catchments enter Φ."""

    PESSIMISTIC = "pessimistic"  # unknowns count as changed (paper default)
    EXCLUDE = "exclude"  # unknowns leave both numerator and denominator


def _check_weights(weights: Optional[np.ndarray], length: int) -> np.ndarray:
    if weights is None:
        return np.ones(length, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (length,):
        raise ValueError(f"weights shape {weights.shape} != ({length},)")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    if length and not weights.any():
        raise ValueError(
            "weights are all zero: every Φ would be 0/0; "
            "drop the weighting instead of zeroing every network"
        )
    return weights


def phi(
    a: RoutingVector,
    b: RoutingVector,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> float:
    """Gower similarity Φ between two vectors over the same networks.

    Returns a value in [0, 1]; under :attr:`UnknownPolicy.EXCLUDE` with
    no jointly known network, returns ``nan``.
    """
    if a.networks != b.networks:
        raise ValueError("vectors cover different networks")
    if a.catalog is not b.catalog:
        raise ValueError("vectors use different state catalogs")
    w = _check_weights(weights, len(a))
    match = (a.codes == b.codes) & (a.codes != UNKNOWN_CODE)
    if policy is UnknownPolicy.PESSIMISTIC:
        denominator = w.sum()
    else:
        both_known = (a.codes != UNKNOWN_CODE) & (b.codes != UNKNOWN_CODE)
        denominator = w[both_known].sum()
        match = match & both_known
    if denominator == 0:
        return float("nan")
    return float(w[match].sum() / denominator)


def phi_one_to_many(
    codes: np.ndarray,
    exemplar_matrix: np.ndarray,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    *,
    weight_sum: Optional[float] = None,
) -> np.ndarray:
    """Φ of one code vector against M exemplar rows in one pass.

    The streaming hot path: ``exemplar_matrix`` is ``(M, N)`` int32 (one
    row per known mode exemplar), ``codes`` is the ``(N,)`` incoming
    vector, and the result is the ``(M,)`` vector of similarities — the
    vectorized equivalent of calling :func:`phi` once per exemplar.
    ``weight_sum`` lets callers that validated weights once (e.g.
    :class:`~repro.core.online.OnlineFenrir`) skip the per-call
    re-summation. Under :attr:`UnknownPolicy.EXCLUDE`, rows with no
    jointly known network come back NaN, exactly like the scalar form.
    """
    exemplars = np.asarray(exemplar_matrix)
    if exemplars.ndim != 2:
        raise ValueError(f"exemplar matrix must be 2-D, got shape {exemplars.shape}")
    codes = np.asarray(codes)
    if codes.shape != (exemplars.shape[1],):
        raise ValueError(
            f"codes shape {codes.shape} does not match exemplar row "
            f"length {exemplars.shape[1]}"
        )
    num_modes = exemplars.shape[0]
    w = _check_weights(weights, len(codes))
    known = codes != UNKNOWN_CODE
    match = (exemplars == codes) & known  # equal ⇒ both known or both unknown
    if policy is UnknownPolicy.PESSIMISTIC:
        total = float(w.sum()) if weight_sum is None else weight_sum
        if total == 0:
            return np.full(num_modes, np.nan)
        return (match @ w) / total
    both_known = known & (exemplars != UNKNOWN_CODE)
    denominator = both_known @ w
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denominator > 0, (match @ w) / denominator, np.nan)


def _matches_by_state(codes: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Weighted known-match counts via one matmul per state (few states)."""
    num_times = codes.shape[0]
    matches = np.zeros((num_times, num_times), dtype=np.float64)
    for code in np.unique(codes):
        if code == UNKNOWN_CODE:
            continue
        indicator = (codes == code).astype(np.float64)
        matches += (indicator * w) @ indicator.T
    return matches


def _matches_pairwise(codes: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Weighted known-match counts by direct row comparison (many states)."""
    num_times = codes.shape[0]
    known = codes != UNKNOWN_CODE
    matches = np.zeros((num_times, num_times), dtype=np.float64)
    for i in range(num_times):
        row = codes[i]
        row_known = known[i]
        for j in range(i, num_times):
            value = float(w[(row == codes[j]) & row_known].sum())
            matches[i, j] = value
            matches[j, i] = value
    return matches


def similarity_matrix(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> np.ndarray:
    """All-pairs Φ over a series: the T×T matrix behind the heatmaps.

    With few states, one weighted co-occurrence matmul per state keeps a
    300-step × 20k-network study in BLAS; studies with huge state spaces
    (Google's thousands of front ends) fall back to direct pairwise row
    comparison, which is O(T²·N) but state-count independent.
    """
    codes = series.matrix
    num_times, num_networks = codes.shape
    w = _check_weights(weights, num_networks)
    distinct_states = len(np.unique(codes))
    if distinct_states <= max(32, 2 * num_times):
        matches = _matches_by_state(codes, w)
    else:
        matches = _matches_pairwise(codes, w)
    if policy is UnknownPolicy.PESSIMISTIC:
        total = w.sum()
        if total == 0:
            return np.full((num_times, num_times), np.nan)
        return matches / total
    known = (codes != UNKNOWN_CODE).astype(np.float64)
    denominator = (known * w) @ known.T
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(denominator > 0, matches / denominator, np.nan)
    return result


def similarity_to_reference(
    series: VectorSeries,
    reference: RoutingVector,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> np.ndarray:
    """Φ of every observation against one reference vector.

    The 1-D profile operators actually watch: "how like mode (i)'s
    exemplar is each day?" — a single line instead of the full T×T
    heatmap. The reference must share the series' networks and catalog.
    Computed as one :func:`phi_one_to_many` pass over the series' code
    matrix rather than T scalar Φ calls.
    """
    if tuple(series.networks) != tuple(reference.networks):
        raise ValueError("vectors cover different networks")
    if series.catalog is not reference.catalog:
        raise ValueError("vectors use different state catalogs")
    return phi_one_to_many(
        reference.codes, series.matrix, weights=weights, policy=policy
    )


def distance_matrix(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> np.ndarray:
    """``1 - Φ`` for all pairs; the input to clustering. NaN → 1.0."""
    similarity = similarity_matrix(series, weights, policy)
    distance = 1.0 - similarity
    return np.where(np.isnan(distance), 1.0, distance)
