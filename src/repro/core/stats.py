"""Statistical uncertainty for routing-vector comparisons.

The paper reports Φ point estimates; an operator acting on "routing is
80% like last month" should also know how tight that number is given
the vantage sample. This module provides network-level bootstrap
confidence intervals for Φ and a permutation test for "did routing
change more at t than typical round-to-round churn?".

Both procedures resample *networks* (the measurement units), matching
the sampling structure of VP-based studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .compare import UnknownPolicy
from .vector import RoutingVector, UNKNOWN_CODE

__all__ = ["PhiEstimate", "bootstrap_phi", "permutation_change_test"]


@dataclass(frozen=True)
class PhiEstimate:
    """A Φ point estimate with a bootstrap confidence interval."""

    point: float
    low: float
    high: float
    confidence: float
    samples: int

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def _match_indicator(
    a: RoutingVector, b: RoutingVector, policy: UnknownPolicy
) -> tuple[np.ndarray, np.ndarray]:
    """Per-network (match, in-denominator) indicator arrays."""
    match = (a.codes == b.codes) & (a.codes != UNKNOWN_CODE)
    if policy is UnknownPolicy.PESSIMISTIC:
        denominator = np.ones(len(a), dtype=bool)
    else:
        denominator = (a.codes != UNKNOWN_CODE) & (b.codes != UNKNOWN_CODE)
    return match, denominator


def bootstrap_phi(
    a: RoutingVector,
    b: RoutingVector,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    confidence: float = 0.95,
    samples: int = 2000,
    seed: int = 0,
) -> PhiEstimate:
    """Bootstrap CI for Φ(a, b), resampling networks with replacement."""
    if a.networks != b.networks:
        raise ValueError("vectors cover different networks")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if samples < 10:
        raise ValueError("need at least 10 bootstrap samples")
    match, denominator = _match_indicator(a, b, policy)
    count = len(a)
    w = (
        np.ones(count)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    match_weight = np.where(match, w, 0.0)
    denom_weight = np.where(denominator, w, 0.0)
    total_denominator = denom_weight.sum()
    point = float(match_weight.sum() / total_denominator) if total_denominator else float("nan")

    rng = np.random.default_rng(seed)
    indices = rng.integers(0, count, size=(samples, count))
    numerators = match_weight[indices].sum(axis=1)
    denominators = denom_weight[indices].sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        values = np.where(denominators > 0, numerators / denominators, np.nan)
    alpha = (1.0 - confidence) / 2
    low = float(np.nanquantile(values, alpha))
    high = float(np.nanquantile(values, 1.0 - alpha))
    return PhiEstimate(point, low, high, confidence, samples)


def permutation_change_test(
    changes: np.ndarray,
    index: int,
    samples: int = 5000,
    seed: int = 0,
) -> float:
    """P-value that the step change at ``index`` is ordinary churn.

    Under the null, the step changes are exchangeable: the p-value is
    the fraction of steps (resampled with replacement) at least as
    large as the observed one. Small values mean "this step is not
    routine churn" — the statistical cousin of the detector threshold.
    """
    changes = np.asarray(changes, dtype=np.float64)
    if not 0 <= index < len(changes):
        raise IndexError(f"index {index} outside 0..{len(changes) - 1}")
    observed = changes[index]
    others = np.delete(changes, index)
    if len(others) == 0:
        return 1.0
    rng = np.random.default_rng(seed)
    draws = rng.choice(others, size=samples, replace=True)
    return float((np.count_nonzero(draws >= observed) + 1) / (samples + 1))
