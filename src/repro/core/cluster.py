"""Hierarchical agglomerative clustering over routing vectors (§2.6.2).

Fenrir finds routing "modes" by clustering the vectors of a series
under the Gower distance. This module implements HAC from scratch
(single, complete and average linkage via Lance–Williams updates) on a
precomputed distance matrix, plus the paper's adaptive threshold rule:
sweep thresholds from 0 to 1 in steps of 0.01 and keep the first model
with fewer than 15 clusters, each backed by at least 2 observations.

The linkage output matches :func:`scipy.cluster.hierarchy.linkage`
conventions, which the test suite uses as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

__all__ = ["Linkage", "hac_linkage", "cut_linkage", "AdaptiveResult", "adaptive_clusters"]

LinkageMethod = Literal["single", "complete", "average"]


@dataclass(frozen=True)
class Linkage:
    """A dendrogram: rows of (cluster_a, cluster_b, height, size)."""

    merges: np.ndarray  # (T-1, 4) float64, scipy linkage convention
    num_points: int


def hac_linkage(distance: np.ndarray, method: LinkageMethod = "average") -> Linkage:
    """Agglomerate a full distance matrix into a dendrogram.

    ``distance`` must be a square symmetric matrix with zero diagonal.
    """
    distance = np.asarray(distance, dtype=np.float64)
    if distance.ndim != 2 or distance.shape[0] != distance.shape[1]:
        raise ValueError(f"distance matrix must be square, got {distance.shape}")
    if not np.allclose(distance, distance.T, atol=1e-12):
        raise ValueError("distance matrix must be symmetric")
    num_points = distance.shape[0]
    if num_points == 0:
        raise ValueError("cannot cluster zero points")

    working = distance.copy()
    np.fill_diagonal(working, np.inf)
    active = np.ones(num_points * 2 - 1, dtype=bool)
    active[num_points:] = False
    sizes = np.ones(num_points * 2 - 1, dtype=np.int64)
    # Map matrix row index -> current cluster id.
    cluster_id = np.arange(num_points, dtype=np.int64)
    merges = np.zeros((max(num_points - 1, 0), 4), dtype=np.float64)

    # The matrix stays num_points wide; merged-away rows are disabled with inf.
    alive = np.ones(num_points, dtype=bool)

    for step in range(num_points - 1):
        flat = np.argmin(working)
        i, j = divmod(int(flat), num_points)
        height = working[i, j]
        if not np.isfinite(height):
            raise RuntimeError("ran out of finite distances before full merge")
        if i > j:
            i, j = j, i
        id_i, id_j = cluster_id[i], cluster_id[j]
        new_id = num_points + step
        size_i, size_j = sizes[id_i], sizes[id_j]
        merges[step] = (min(id_i, id_j), max(id_i, id_j), height, size_i + size_j)

        # Lance-Williams update into row/column i; retire row/column j.
        row_i, row_j = working[i].copy(), working[j].copy()
        if method == "single":
            updated = np.minimum(row_i, row_j)
        elif method == "complete":
            updated = np.maximum(row_i, row_j)
        elif method == "average":
            updated = (size_i * row_i + size_j * row_j) / (size_i + size_j)
        else:
            raise ValueError(f"unknown linkage method: {method}")
        updated[i] = np.inf
        updated[j] = np.inf
        updated[~alive] = np.inf
        working[i, :] = updated
        working[:, i] = updated
        working[j, :] = np.inf
        working[:, j] = np.inf
        alive[j] = False
        cluster_id[i] = new_id
        sizes[new_id] = size_i + size_j

    return Linkage(merges, num_points)


def cut_linkage(linkage: Linkage, threshold: float) -> np.ndarray:
    """Flat cluster labels from merges with height <= threshold.

    Labels are renumbered 0..k-1 in order of first appearance, so label
    0 is always the cluster of the first observation.
    """
    num_points = linkage.num_points
    parent = np.arange(num_points * 2 - 1, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for step, (a, b, height, _size) in enumerate(linkage.merges):
        if height <= threshold:
            new_id = num_points + step
            parent[find(int(a))] = new_id
            parent[find(int(b))] = new_id

    raw = np.array([find(i) for i in range(num_points)])
    labels = np.empty(num_points, dtype=np.int64)
    relabel: dict[int, int] = {}
    for index, root in enumerate(raw):
        if root not in relabel:
            relabel[root] = len(relabel)
        labels[index] = relabel[root]
    return labels


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of the adaptive threshold sweep."""

    labels: np.ndarray
    threshold: float
    num_clusters: int
    linkage: Linkage


def adaptive_clusters(
    distance: np.ndarray,
    method: LinkageMethod = "single",
    max_clusters: int = 15,
    min_cluster_size: int = 2,
    step: float = 0.01,
    linkage: Optional[Linkage] = None,
) -> AdaptiveResult:
    """The paper's adaptive distance-threshold selection (§2.6.2).

    Sweeps thresholds ``0, step, 2*step, ... 1`` and returns the first
    clustering with fewer than ``max_clusters`` clusters where every
    cluster holds at least ``min_cluster_size`` observations. A single
    all-encompassing cluster always satisfies the rule, so the sweep
    terminates.
    """
    if linkage is None:
        linkage = hac_linkage(distance, method)
    num_points = linkage.num_points
    thresholds = np.arange(0.0, 1.0 + step / 2, step)
    for threshold in thresholds:
        labels = cut_linkage(linkage, float(threshold))
        counts = np.bincount(labels)
        num_clusters = len(counts)
        if num_clusters < max_clusters and (
            num_points < min_cluster_size or counts.min() >= min_cluster_size
        ):
            return AdaptiveResult(labels, float(threshold), num_clusters, linkage)
    # Unreachable for threshold=1.0 with >=2 points, but keep a safe fallback.
    labels = np.zeros(num_points, dtype=np.int64)
    return AdaptiveResult(labels, 1.0, 1, linkage)
