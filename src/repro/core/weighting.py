"""Observation weighting (§2.5).

Raw observations count vantage points; operators care about what each
vantage point *represents* — addresses, users or traffic. A weight
vector ``Dw`` parallels the routing vector, and every comparison and
aggregate in the library accepts one.

Schemes:

* :func:`uniform_weights` — every observation equal (the default).
* :func:`address_weights` — each network weighted by the number of /24
  blocks its prefix spans (one Atlas VP in a /16 counts as 256 blocks).
* :func:`table_weights` — weights from an explicit per-network table of
  traffic volumes or user counts, with a default for absentees.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..net.addr import AddressError, IPv4Prefix

__all__ = [
    "uniform_weights",
    "address_weights",
    "representation_weights",
    "table_weights",
    "normalized",
]


def uniform_weights(networks: Sequence[str]) -> np.ndarray:
    """All-ones weights: each observation counts the same."""
    return np.ones(len(networks), dtype=np.float64)


def address_weights(networks: Sequence[str]) -> np.ndarray:
    """Weight each network by the /24 blocks its prefix covers.

    Network identifiers that parse as prefixes get ``2**(24 - length)``
    (minimum 1); non-prefix identifiers (e.g. Atlas probe ids) get 1.
    """
    weights = np.ones(len(networks), dtype=np.float64)
    for index, network in enumerate(networks):
        try:
            prefix = IPv4Prefix.from_string(network)
        except AddressError:
            continue
        weights[index] = float(prefix.num_blocks24)
    return weights


def representation_weights(
    networks: Sequence[str],
    represented: Mapping[str, IPv4Prefix],
) -> np.ndarray:
    """Weight each observer by the address space it *represents* (§2.5).

    Atlas VPs are not uniformly spread: when one VP is the only
    observer inside a /16, its observation stands for 256 /24 blocks,
    not one. ``represented`` maps an observer id to the prefix it is
    the sole representative of; observers absent from the map weigh 1.
    """
    weights = np.ones(len(networks), dtype=np.float64)
    for index, network in enumerate(networks):
        prefix = represented.get(network)
        if prefix is not None:
            weights[index] = float(prefix.num_blocks24)
    return weights


def table_weights(
    networks: Sequence[str],
    table: Mapping[str, float],
    default: float = 0.0,
) -> np.ndarray:
    """Weights from a per-network table (historical traffic, users).

    Negative table entries are rejected; networks absent from the table
    receive ``default``.
    """
    weights = np.empty(len(networks), dtype=np.float64)
    for index, network in enumerate(networks):
        value = float(table.get(network, default))
        if value < 0:
            raise ValueError(f"negative weight for {network!r}: {value}")
        weights[index] = value
    return weights


def normalized(weights: np.ndarray) -> np.ndarray:
    """Scale weights to sum to 1 (Φ is scale-invariant; plots are not)."""
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive total")
    return weights / total
