"""Text renderings of Fenrir's visualizations.

The paper communicates through four pictures: all-pairs similarity
heatmaps, per-catchment stack plots, transition-matrix tables and
Sankey flow diagrams. This module renders each as terminal-friendly
text (and exposes the underlying data extraction, which the benchmark
harness prints as the paper-shaped rows).
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Optional, Sequence

import numpy as np

from .modes import ModeSet
from .transition import TransitionMatrix

__all__ = [
    "render_heatmap",
    "render_stackplot",
    "render_transition_table",
    "render_mode_timeline",
    "sankey_flows",
    "render_sankey",
]

_SHADES = " .:-=+*#%@"


def _shade(value: float) -> str:
    if np.isnan(value):
        return "?"
    index = int(np.clip(value, 0.0, 1.0) * (len(_SHADES) - 1))
    return _SHADES[index]


def render_heatmap(
    similarity: np.ndarray,
    labels: Optional[Sequence[str]] = None,
    max_size: int = 60,
) -> str:
    """ASCII all-pairs similarity heatmap, darker = more similar.

    Matrices larger than ``max_size`` are downsampled by block mean so
    five-year series still fit a terminal.
    """
    matrix = np.asarray(similarity, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("similarity must be a square matrix")
    size = matrix.shape[0]
    stride = max(1, -(-size // max_size))  # ceil division
    if stride > 1:
        trimmed = matrix[: size - size % stride or size, : size - size % stride or size]
        blocks = trimmed.reshape(
            trimmed.shape[0] // stride, stride, trimmed.shape[1] // stride, stride
        )
        with np.errstate(invalid="ignore"):
            matrix = np.nanmean(blocks, axis=(1, 3))
    lines = []
    for row_index in range(matrix.shape[0]):
        row = "".join(_shade(matrix[row_index, col]) for col in range(matrix.shape[1]))
        prefix = ""
        if labels is not None:
            source = row_index * stride
            prefix = f"{labels[min(source, len(labels) - 1)]:>12} "
        lines.append(prefix + row)
    legend = f"scale: '{_SHADES[0]}'=0.0 .. '{_SHADES[-1]}'=1.0, stride={stride}"
    return "\n".join(lines + [legend])


def render_stackplot(
    aggregates: Mapping[str, np.ndarray],
    width: int = 50,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Per-time horizontal stacked bars of catchment shares (Figures 1/2a/3a).

    Each row is one observation; each site gets a letter, with the
    legend printed first. Rows are proportional, so a site draining to
    zero visibly vanishes.
    """
    sites = list(aggregates)
    if not sites:
        return "(empty)"
    length = len(next(iter(aggregates.values())))
    letters = [chr(ord("A") + i % 26) for i in range(len(sites))]
    legend = "  ".join(f"{letter}={site}" for letter, site in zip(letters, sites))
    lines = [legend]
    for step in range(length):
        values = np.array([max(float(aggregates[site][step]), 0.0) for site in sites])
        total = values.sum()
        bar = ""
        if total > 0:
            widths = np.floor(values / total * width).astype(int)
            while widths.sum() < width:
                widths[int(np.argmax(values / total * width - widths))] += 1
            bar = "".join(letter * w for letter, w in zip(letters, widths))
        prefix = f"{labels[step]:>12} " if labels is not None else f"{step:>4} "
        lines.append(prefix + bar)
    return "\n".join(lines)


def render_transition_table(matrix: TransitionMatrix, min_total: float = 0.0) -> str:
    """Table 3-style rendering: initial states as rows, subsequent as columns."""
    catalog = matrix.catalog
    size = len(catalog)
    keep = [
        code
        for code in range(size)
        if matrix.counts[code, :].sum() > min_total
        or matrix.counts[:, code].sum() > min_total
    ]
    header_labels = [catalog.label(code) for code in keep]
    width = max((len(label) for label in header_labels), default=4) + 2
    width = max(width, 8)
    header = " " * width + "".join(f"{label:>{width}}" for label in header_labels)
    lines = [header]
    for row_code in keep:
        cells = "".join(
            f"{matrix.counts[row_code, col_code]:>{width}.0f}" for col_code in keep
        )
        lines.append(f"{catalog.label(row_code):>{width}}" + cells)
    return "\n".join(lines)


def render_mode_timeline(modes: ModeSet) -> str:
    """Chronological mode segments with within/between Φ ranges."""
    roman = ["i", "ii", "iii", "iv", "v", "vi", "vii", "viii", "ix", "x",
             "xi", "xii", "xiii", "xiv", "xv"]
    lines = []
    previous_mode: Optional[int] = None
    for mode_id, start, end in modes.timeline():
        name = roman[mode_id] if mode_id < len(roman) else str(mode_id)
        lo, hi = modes.phi_within(mode_id)
        line = (
            f"mode ({name}): {start:%Y-%m-%d} .. {end:%Y-%m-%d}  "
            f"within-Φ [{lo:.2f}, {hi:.2f}]"
        )
        if previous_mode is not None and previous_mode != mode_id:
            blo, bhi = modes.phi_between(previous_mode, mode_id)
            prev_name = roman[previous_mode] if previous_mode < len(roman) else str(previous_mode)
            line += f"  Φ(M{prev_name},M{name}) [{blo:.2f}, {bhi:.2f}]"
        lines.append(line)
        previous_mode = mode_id
    return "\n".join(lines)


def sankey_flows(
    paths: Sequence[Sequence[str]],
    max_hops: int,
    weights: Optional[Sequence[float]] = None,
) -> list[tuple[int, str, str, float]]:
    """Extract Sankey links from per-network hop sequences (Figures 7/8).

    Returns ``(hop_level, from_node, to_node, weight)`` tuples, where
    hop_level h links hop h to hop h+1. Paths shorter than the window
    contribute up to their length.
    """
    flows: Counter[tuple[int, str, str]] = Counter()
    for index, path in enumerate(paths):
        weight = float(weights[index]) if weights is not None else 1.0
        for level in range(min(len(path) - 1, max_hops - 1)):
            flows[(level, str(path[level]), str(path[level + 1]))] += weight
    return sorted(
        ((level, src, dst, count) for (level, src, dst), count in flows.items()),
        key=lambda item: (item[0], -item[3]),
    )


def render_sankey(
    flows: Sequence[tuple[int, str, str, float]],
    top_per_level: int = 8,
) -> str:
    """Text rendering of Sankey links, share-annotated per hop level."""
    if not flows:
        return "(no flows)"
    lines = []
    levels = sorted({level for level, _src, _dst, _w in flows})
    for level in levels:
        level_flows = [f for f in flows if f[0] == level]
        total = sum(f[3] for f in level_flows)
        lines.append(f"hop {level + 1} -> hop {level + 2}  (total {total:.0f})")
        for _level, src, dst, weight in level_flows[:top_per_level]:
            share = weight / total if total else 0.0
            lines.append(f"    {src:>16} -> {dst:<16} {weight:>10.0f}  ({share:5.1%})")
    return "\n".join(lines)
