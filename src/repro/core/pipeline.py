"""The end-to-end Fenrir pipeline (Table 1).

``Fenrir.run(series)`` chains the paper's steps — cleaning, weighting,
pairwise comparison, clustering into modes, event detection — and
returns a :class:`FenrirReport` holding every intermediate product an
operator would inspect (the similarity matrix for heatmaps, the mode
set, detected events, aggregates for stack plots).

>>> from repro.core import Fenrir, VectorSeries
>>> fenrir = Fenrir()
>>> report = fenrir.run(series)              # doctest: +SKIP
>>> report.modes.timeline()                  # doctest: +SKIP
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional, Sequence

import numpy as np

from ..obs import get_registry, span
from .cleaning import fold_micro_catchments, interpolate_series, map_unmapped_states
from .cluster import LinkageMethod
from .compare import UnknownPolicy, similarity_matrix
from .detect import DetectedEvent, detect_events
from .modes import ModeSet, find_modes
from .series import VectorSeries
from .viz import render_heatmap, render_mode_timeline, render_stackplot

__all__ = ["FenrirConfig", "FenrirReport", "Fenrir"]


@dataclass(frozen=True)
class FenrirConfig:
    """Tunable knobs of the pipeline, with the paper's defaults."""

    # Cleaning (§2.4)
    interpolation_limit: int = 3
    known_sites: Optional[frozenset[str]] = None  # None = keep all states
    micro_catchment_min_networks: int = 0
    micro_catchment_min_fraction: float = 0.0
    # Comparison (§2.6.1)
    unknown_policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC
    # Similarity engine (docs/performance.md)
    n_jobs: int = 1  # 1 = serial reference; >1 = tiled process pool; <=0 = all cores
    tile_size: int = 64
    cache_dir: Optional[str] = None  # None = no on-disk similarity cache
    # Clustering (§2.6.2)
    linkage: LinkageMethod = "single"  # the paper cites SLINK (Sibson 1973)
    max_clusters: int = 15
    min_cluster_size: int = 2
    # Detection (§3)
    detection_threshold: Optional[float] = None  # None = adaptive
    detection_sensitivity: float = 8.0


@dataclass
class FenrirReport:
    """Everything Fenrir derives from one series."""

    raw: VectorSeries
    cleaned: VectorSeries
    weights: Optional[np.ndarray]
    similarity: np.ndarray
    modes: ModeSet
    events: list[DetectedEvent]
    folded_micro_catchments: list[str] = field(default_factory=list)

    def heatmap(self, max_size: int = 60) -> str:
        labels = [f"{t:%Y-%m-%d}" for t in self.cleaned.times]
        return render_heatmap(self.similarity, labels, max_size)

    def stackplot(self, width: int = 50) -> str:
        aggregates = self.cleaned.aggregate_over_time(self.weights)
        labels = [f"{t:%Y-%m-%d}" for t in self.cleaned.times]
        return render_stackplot(aggregates, width, labels)

    def mode_timeline(self) -> str:
        return render_mode_timeline(self.modes)

    def export_svg(self, directory) -> dict[str, str]:
        """Write heatmap.svg and stackplot.svg into ``directory``."""
        from pathlib import Path

        from ..viz_svg import heatmap_svg, stackplot_svg

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = {}
        heatmap = heatmap_svg(self.similarity, self.cleaned.times)
        heatmap_path = directory / "heatmap.svg"
        heatmap.save(heatmap_path)
        written["heatmap"] = str(heatmap_path)
        stack = stackplot_svg(
            self.cleaned.aggregate_over_time(self.weights), self.cleaned.times
        )
        stack_path = directory / "stackplot.svg"
        stack.save(stack_path)
        written["stackplot"] = str(stack_path)
        return written

    def summary(self) -> str:
        lines = [
            f"observations: {len(self.cleaned)}  networks: {len(self.cleaned.networks)}",
            f"modes: {len(self.modes)} (threshold {self.modes.threshold:.2f})",
            f"events detected: {len(self.events)}",
        ]
        if self.folded_micro_catchments:
            lines.append(
                "micro-catchments folded: " + ", ".join(self.folded_micro_catchments)
            )
        recurring = self.modes.recurring_modes()
        if recurring:
            ids = ", ".join(str(mode.mode_id) for mode in recurring)
            lines.append(f"recurring modes: {ids}")
        return "\n".join(lines)


class Fenrir:
    """The Fenrir analysis engine.

    ``weight_fn`` maps the series' network list to a weight vector
    (§2.5); by default all observations weigh 1.
    """

    def __init__(
        self,
        config: FenrirConfig = FenrirConfig(),
        weight_fn: Optional[Callable[[Sequence[str]], np.ndarray]] = None,
    ) -> None:
        self.config = config
        self.weight_fn = weight_fn

    @contextmanager
    def _stage(self, name: str, observations: int):
        """One pipeline stage: a trace span plus a stage-time histogram."""
        histogram = get_registry().histogram(
            "pipeline_stage_seconds",
            labels={"stage": name},
            help="Wall time of each Fenrir pipeline stage",
        )
        started = perf_counter()
        try:
            with span(name, observations=observations):
                yield
        finally:
            histogram.observe(perf_counter() - started)

    def clean(self, series: VectorSeries) -> tuple[VectorSeries, list[str]]:
        """§2.4: incorrect-data mapping, micro-catchment fold, gap fill."""
        cleaned = series
        if self.config.known_sites is not None:
            cleaned = map_unmapped_states(cleaned, set(self.config.known_sites))
        folded: list[str] = []
        if (
            self.config.micro_catchment_min_networks
            or self.config.micro_catchment_min_fraction
        ):
            cleaned, folded = fold_micro_catchments(
                cleaned,
                min_networks=self.config.micro_catchment_min_networks,
                min_fraction=self.config.micro_catchment_min_fraction,
            )
        if self.config.interpolation_limit:
            cleaned = interpolate_series(cleaned, self.config.interpolation_limit)
        return cleaned, folded

    def _similarity(
        self, cleaned: VectorSeries, weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """All-pairs Φ via the configured engine.

        ``n_jobs == 1`` with no cache stays on the serial reference
        path; anything else routes through the tiled engine in
        :mod:`repro.parallel` (imported lazily — the pools and shared
        memory are only worth setting up when asked for).
        """
        config = self.config
        if config.n_jobs == 1 and config.cache_dir is None:
            return similarity_matrix(cleaned, weights, config.unknown_policy)
        from ..parallel.engine import SimilarityEngine

        engine = SimilarityEngine(
            n_jobs=config.n_jobs,
            tile_size=config.tile_size,
            cache_dir=config.cache_dir,
        )
        return engine.similarity_matrix(cleaned, weights, config.unknown_policy)

    def run(self, series: VectorSeries) -> FenrirReport:
        """Run the full pipeline and return the report.

        Each of the five stages — clean → weight → compare → cluster →
        transition — runs inside a :func:`repro.obs.span` (a no-op
        unless tracing is enabled) and reports its wall time to the
        process registry's ``pipeline_stage_seconds{stage=...}``
        histogram, so a ``--trace`` dump and the Prometheus exposition
        tell the same story about where a run spent its time.
        """
        if len(series) < 2:
            raise ValueError("Fenrir needs at least two observations")
        with span("pipeline", observations=len(series)):
            with self._stage("clean", len(series)):
                cleaned, folded = self.clean(series)
            with self._stage("weight", len(cleaned)):
                weights = (
                    self.weight_fn(cleaned.networks) if self.weight_fn else None
                )
            with self._stage("compare", len(cleaned)):
                similarity = self._similarity(cleaned, weights)
            with self._stage("cluster", len(cleaned)):
                modes = find_modes(
                    cleaned,
                    weights=weights,
                    policy=self.config.unknown_policy,
                    method=self.config.linkage,
                    max_clusters=self.config.max_clusters,
                    min_cluster_size=self.config.min_cluster_size,
                    similarity=similarity,
                )
            with self._stage("transition", len(cleaned)):
                events = detect_events(
                    cleaned,
                    weights=weights,
                    policy=self.config.unknown_policy,
                    threshold=self.config.detection_threshold,
                    sensitivity=self.config.detection_sensitivity,
                )
        get_registry().counter(
            "pipeline_runs_total", help="Completed Fenrir.run invocations"
        ).inc()
        return FenrirReport(
            raw=series,
            cleaned=cleaned,
            weights=weights,
            similarity=similarity,
            modes=modes,
            events=events,
            folded_micro_catchments=folded,
        )
