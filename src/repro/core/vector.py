"""Routing vectors: the paper's central data structure (§2.2).

A routing vector ``D(t)`` has one element per observed *network*, each
taking one of the service's catchment states (a site label) or one of
three special states:

* ``unknown`` — the measurement did not determine a catchment;
* ``err``     — the network answered but reached no site;
* ``other``   — an unmapped or filtered-out site (micro-catchments).

Internally a vector is a numpy array of state codes over a shared
:class:`StateCatalog`, so five-year series over millions of networks
stay cheap to compare. ``D*(t)`` (one-hot) and ``A(t)`` (per-site
aggregate counts) follow the paper's definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = ["UNKNOWN", "ERROR", "OTHER", "SPECIAL_STATES", "StateCatalog", "RoutingVector"]

UNKNOWN = "unknown"
ERROR = "err"
OTHER = "other"
SPECIAL_STATES = (UNKNOWN, ERROR, OTHER)

UNKNOWN_CODE = 0
ERROR_CODE = 1
OTHER_CODE = 2


class StateCatalog:
    """Bidirectional mapping between state labels and integer codes.

    Codes 0..2 are reserved for the special states so every vector in a
    study shares them; site labels get codes in arrival order.
    """

    def __init__(self, sites: Iterable[str] = ()) -> None:
        self._labels: list[str] = list(SPECIAL_STATES)
        self._codes: dict[str, int] = {label: i for i, label in enumerate(self._labels)}
        for site in sites:
            self.code(site)

    def code(self, label: str) -> int:
        """The code for ``label``, assigning a new one if unseen."""
        existing = self._codes.get(label)
        if existing is not None:
            return existing
        code = len(self._labels)
        self._labels.append(label)
        self._codes[label] = code
        return code

    def lookup(self, label: str) -> Optional[int]:
        """The code for ``label`` if known, else None (no assignment)."""
        return self._codes.get(label)

    def label(self, code: int) -> str:
        return self._labels[code]

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self._labels)

    @property
    def site_labels(self) -> tuple[str, ...]:
        """All non-special state labels."""
        return tuple(self._labels[len(SPECIAL_STATES):])

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._codes


@dataclass
class RoutingVector:
    """One routing result ``D(t)``: networks → states at a single time."""

    networks: tuple[str, ...]
    codes: np.ndarray  # int32, length == len(networks)
    catalog: StateCatalog
    time: Optional[datetime] = None

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.int32)
        if self.codes.ndim != 1 or len(self.codes) != len(self.networks):
            raise ValueError(
                f"codes shape {self.codes.shape} does not match "
                f"{len(self.networks)} networks"
            )
        if len(self.codes) and (
            self.codes.min() < 0 or self.codes.max() >= len(self.catalog)
        ):
            raise ValueError("state code outside catalog range")

    # -- construction ------------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        networks: tuple[str, ...],
        codes: np.ndarray,
        catalog: StateCatalog,
        time: Optional[datetime] = None,
    ) -> "RoutingVector":
        """Construct without re-validating ``codes``.

        For hot paths that rebuild a vector from codes this class
        already validated (e.g. re-stamping the previous round's codes
        when an identical assignment recurs); ``codes`` must be an
        int32 array of the right length with in-catalog values.
        """
        vector = cls.__new__(cls)
        vector.networks = networks
        vector.codes = codes
        vector.catalog = catalog
        vector.time = time
        return vector

    @classmethod
    def from_mapping(
        cls,
        assignment: Mapping[str, str],
        catalog: Optional[StateCatalog] = None,
        networks: Optional[Sequence[str]] = None,
        time: Optional[datetime] = None,
    ) -> "RoutingVector":
        """Build a vector from a ``{network: state_label}`` mapping.

        Networks absent from ``assignment`` (when an explicit network
        list is given) are recorded as ``unknown``.
        """
        catalog = catalog or StateCatalog()
        nets = tuple(networks) if networks is not None else tuple(sorted(assignment))
        codes = np.empty(len(nets), dtype=np.int32)
        for i, network in enumerate(nets):
            label = assignment.get(network, UNKNOWN)
            codes[i] = catalog.code(label)
        return cls(nets, codes, catalog, time)

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.networks)

    def state_of(self, network: str) -> str:
        index = self.networks.index(network)
        return self.catalog.label(int(self.codes[index]))

    def to_mapping(self) -> dict[str, str]:
        return {
            network: self.catalog.label(int(code))
            for network, code in zip(self.networks, self.codes)
        }

    @property
    def known_mask(self) -> np.ndarray:
        """Boolean mask of networks whose catchment is known."""
        return self.codes != UNKNOWN_CODE

    def one_hot(self) -> np.ndarray:
        """``D*(t)``: the N×|S| one-hot matrix from §2.2."""
        matrix = np.zeros((len(self.networks), len(self.catalog)), dtype=np.int8)
        matrix[np.arange(len(self.codes)), self.codes] = 1
        return matrix

    def aggregate(self, weights: Optional[np.ndarray] = None) -> dict[str, float]:
        """``A(t)``: per-state totals, optionally weighted (§2.2, §2.5)."""
        if weights is None:
            counts = np.bincount(self.codes, minlength=len(self.catalog))
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.codes.shape:
                raise ValueError("weights length does not match networks")
            counts = np.bincount(
                self.codes, weights=weights, minlength=len(self.catalog)
            )
        return {
            self.catalog.label(code): float(counts[code])
            for code in range(len(self.catalog))
            if counts[code]
        }

    def fraction_unknown(self) -> float:
        if not len(self.codes):
            return 0.0
        return float(np.count_nonzero(self.codes == UNKNOWN_CODE)) / len(self.codes)

    def replace_codes(self, codes: np.ndarray) -> "RoutingVector":
        """A copy of this vector with different state codes."""
        return RoutingVector(self.networks, codes, self.catalog, self.time)

    def concentration(self, weights: Optional[np.ndarray] = None) -> float:
        """Herfindahl concentration of the catchments, in (0, 1].

        1.0 means a single site serves every known network (the
        polarization/DDoS-fragility extreme); 1/|S| means a perfectly
        even split across |S| sites. Special states are excluded.
        """
        aggregate = self.aggregate(weights)
        shares = [
            value
            for label, value in aggregate.items()
            if label not in SPECIAL_STATES
        ]
        total = sum(shares)
        if total <= 0:
            return float("nan")
        return float(sum((value / total) ** 2 for value in shares))

    def effective_sites(self, weights: Optional[np.ndarray] = None) -> float:
        """Inverse-Herfindahl: the equivalent number of equal sites."""
        concentration = self.concentration(weights)
        return 1.0 / concentration if concentration > 0 else float("nan")
